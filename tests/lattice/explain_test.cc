// EXPLAIN / EXPLAIN ANALYZE over the Figure 8 retail lattice.
//
// Two properties are load-bearing:
//   1. Determinism — the default text/DOT/JSON renderings are
//      byte-identical across num_threads 1, 2, and 8 and across runs
//      (wall times and thread counts are excluded by default).
//   2. Estimator exactness — on a *saturated* retail config (every
//      group combination present in the data, change set large enough
//      to touch every group) the §5.5 estimates equal the actual
//      summary-delta cardinalities step for step.
#include "lattice/explain.h"

#include <gtest/gtest.h>

#include <string>

#include "warehouse/retail_schema.h"
#include "warehouse/warehouse.h"
#include "warehouse/workload.h"

namespace sdelta::lattice {
namespace {

/// Small but saturated: 4x6x3 = 72 fact-group combinations over 4000
/// pos rows, so every combination occurs and per-attribute distinct
/// counts multiply out to exact group counts.
warehouse::RetailConfig SaturatedConfig() {
  warehouse::RetailConfig config;
  config.num_stores = 4;
  config.num_cities = 2;
  config.num_regions = 2;
  config.num_items = 6;
  config.num_categories = 2;
  config.num_dates = 3;
  config.num_pos_rows = 4000;
  config.seed = 321;
  return config;
}

warehouse::Warehouse MakeWarehouse(size_t num_threads) {
  warehouse::Warehouse::Options options;
  options.num_threads = num_threads;
  warehouse::Warehouse wh(
      warehouse::MakeRetailCatalog(SaturatedConfig()), options);
  wh.DefineSummaryTables(warehouse::RetailSummaryTables());
  return wh;
}

/// A change set touching (with overwhelming probability at this fixed
/// seed) every group of every retail view.
core::ChangeSet SaturatingChanges(warehouse::Warehouse& wh) {
  return warehouse::MakeUpdateGeneratingChanges(wh.catalog(), 1500, 77);
}

TEST(ExplainTest, EstimateOnlyTreeHasNoActuals) {
  warehouse::Warehouse wh = MakeWarehouse(1);
  const ExplainResult explain = wh.Explain(SaturatingChanges(wh));
  EXPECT_FALSE(explain.analyzed);
  EXPECT_EQ(explain.plan_source, "lattice");
  ASSERT_EQ(explain.steps.size(), wh.plan().steps.size());
  size_t from_base = 0;
  for (const ExplainStep& step : explain.steps) {
    EXPECT_FALSE(step.has_actuals);
    EXPECT_FALSE(step.has_refresh);
    EXPECT_GT(step.estimated_groups, 0);
    EXPECT_GT(step.estimated_input_rows, 0);
    if (step.source == "base") {
      ++from_base;
      EXPECT_EQ(step.wave, 0u);
    } else {
      EXPECT_GE(step.wave, 1u);
    }
  }
  EXPECT_GE(from_base, 1u);
  const std::string text = explain.ToText();
  EXPECT_EQ(text.rfind("EXPLAIN plan=lattice", 0), 0u) << text;
  EXPECT_EQ(text.find(" act "), std::string::npos);
}

TEST(ExplainTest, AnalyzeAttachesActualsAndRefreshOutcomes) {
  warehouse::Warehouse wh = MakeWarehouse(1);
  const core::ChangeSet changes = SaturatingChanges(wh);
  warehouse::BatchReport report;
  const ExplainResult explain = wh.ExplainAnalyze(changes, &report);
  EXPECT_TRUE(explain.analyzed);
  ASSERT_EQ(explain.steps.size(), wh.plan().steps.size());

  size_t total_updates = 0;
  for (const ExplainStep& step : explain.steps) {
    EXPECT_TRUE(step.has_actuals) << step.view;
    EXPECT_TRUE(step.has_refresh) << step.view;
    EXPECT_GT(step.actual_delta_rows, 0u) << step.view;
    EXPECT_GT(step.ops.total_calls(), 0u) << step.view;
    total_updates += step.refresh.updated;
  }
  EXPECT_EQ(total_updates, report.TotalRefresh().updated);
  EXPECT_GT(total_updates, 0u);

  const std::string text = explain.ToText();
  EXPECT_EQ(text.rfind("EXPLAIN ANALYZE plan=lattice", 0), 0u);
  EXPECT_NE(text.find("refresh insert="), std::string::npos);
  // Wall-clock fields appear only with include_timings.
  EXPECT_EQ(text.find("seconds="), std::string::npos);
  ExplainRenderOptions timed;
  timed.include_timings = true;
  EXPECT_NE(explain.ToText(timed).find("seconds="), std::string::npos);
}

TEST(ExplainTest, EstimatesAreExactOnSaturatedRetailLattice) {
  warehouse::Warehouse wh = MakeWarehouse(1);
  const ExplainResult explain = wh.ExplainAnalyze(SaturatingChanges(wh));
  for (const ExplainStep& step : explain.steps) {
    SCOPED_TRACE(step.view + " <- " + step.source);
    // The §5.5 estimator (FD/FK-aware product of distinct counts) hits
    // the actual summary-delta cardinality exactly on saturated data,
    // and the input estimate matches the actual rows fed to each step.
    EXPECT_EQ(step.estimated_delta_rows,
              static_cast<double>(step.actual_delta_rows));
    EXPECT_EQ(step.estimated_input_rows,
              static_cast<double>(step.actual_input_rows));
  }
}

TEST(ExplainTest, RenderingsAreByteIdenticalAcrossThreadCounts) {
  struct Rendered {
    std::string text;
    std::string dot;
    std::string json;
  };
  auto run = [](size_t num_threads) {
    warehouse::Warehouse wh = MakeWarehouse(num_threads);
    const ExplainResult explain = wh.ExplainAnalyze(SaturatingChanges(wh));
    return Rendered{explain.ToText(), explain.ToDot(),
                    explain.ToJson().Dump(1)};
  };
  const Rendered serial = run(1);
  const Rendered two = run(2);
  const Rendered eight = run(8);
  EXPECT_EQ(serial.text, two.text);
  EXPECT_EQ(serial.text, eight.text);
  EXPECT_EQ(serial.dot, two.dot);
  EXPECT_EQ(serial.dot, eight.dot);
  EXPECT_EQ(serial.json, two.json);
  EXPECT_EQ(serial.json, eight.json);
  // And across repeated runs at the same thread count.
  EXPECT_EQ(serial.text, run(1).text);
}

TEST(ExplainTest, JsonCarriesVersionedSchema) {
  warehouse::Warehouse wh = MakeWarehouse(1);
  const ExplainResult explain = wh.ExplainAnalyze(SaturatingChanges(wh));
  const obs::Json doc = explain.ToJson();
  ASSERT_NE(doc.Find("schema"), nullptr);
  EXPECT_EQ(doc.Find("schema")->as_string(), "sdelta.explain.v1");
  EXPECT_TRUE(doc.Find("analyzed")->as_bool());
  const obs::Json* steps = doc.Find("steps");
  ASSERT_NE(steps, nullptr);
  ASSERT_EQ(steps->items().size(), explain.steps.size());
  const obs::Json& first = steps->items()[0];
  ASSERT_NE(first.Find("estimated"), nullptr);
  ASSERT_NE(first.Find("actual"), nullptr);
  ASSERT_NE(first.Find("refresh"), nullptr);
  // Timings are excluded from the default JSON rendering too.
  EXPECT_EQ(first.Find("actual")->Find("seconds"), nullptr);
}

TEST(ExplainTest, DotRendersOneNodePerViewPlusBase) {
  warehouse::Warehouse wh = MakeWarehouse(1);
  const ExplainResult explain = wh.Explain(SaturatingChanges(wh));
  const std::string dot = explain.ToDot();
  EXPECT_EQ(dot.rfind("digraph explain {", 0), 0u);
  EXPECT_NE(dot.find("base [label=\"base changes\"]"), std::string::npos);
  for (const ExplainStep& step : explain.steps) {
    EXPECT_NE(dot.find("\"" + step.view + "\""), std::string::npos);
  }
}

TEST(ExplainTest, DimensionDeltaDisablesEdgesInTheTree) {
  warehouse::Warehouse wh = MakeWarehouse(1);
  // Item recategorization produces a delta on `items`; edges re-joining
  // items must fall back to base.
  const core::ChangeSet changes =
      warehouse::MakeItemRecategorization(wh.catalog(), 2, 5);
  const ExplainResult explain = wh.Explain(changes);
  bool any_disabled = false;
  for (const ExplainStep& step : explain.steps) {
    if (step.edge_disabled) {
      any_disabled = true;
      EXPECT_EQ(step.source, "base");
      EXPECT_EQ(step.wave, 0u);
    }
  }
  // The retail plan derives iC_sales via a join with items; the
  // recategorization must disable at least that edge.
  EXPECT_TRUE(any_disabled);
}

}  // namespace
}  // namespace sdelta::lattice
