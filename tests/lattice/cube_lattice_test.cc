#include "lattice/cube_lattice.h"

#include <gtest/gtest.h>

namespace sdelta::lattice {
namespace {

TEST(CubeLatticeTest, Figure4Structure) {
  // The paper's Figure 4: the 2^3 cube lattice over
  // (storeID, itemID, date).
  AttributeLattice l = BuildCubeLattice({"storeID", "itemID", "date"});
  EXPECT_EQ(l.nodes.size(), 8u);
  // One edge per (node, dropped attribute): 3*4 + ... = sum over subsets
  // of |subset| = 3 * 2^(3-1) = 12.
  EXPECT_EQ(l.edges.size(), 12u);

  const auto top = l.Find({"storeID", "itemID", "date"});
  const auto si = l.Find({"storeID", "itemID"});
  const auto sd = l.Find({"storeID", "date"});
  const auto id = l.Find({"itemID", "date"});
  const auto s = l.Find({"storeID"});
  const auto empty = l.Find({});
  ASSERT_TRUE(top && si && sd && id && s && empty);

  // Figure 4's edges.
  EXPECT_TRUE(l.HasEdge(*top, *si));
  EXPECT_TRUE(l.HasEdge(*top, *sd));
  EXPECT_TRUE(l.HasEdge(*top, *id));
  EXPECT_TRUE(l.HasEdge(*si, *s));
  EXPECT_TRUE(l.HasEdge(*s, *empty));
  // Non-edges: can't skip levels or go sideways.
  EXPECT_FALSE(l.HasEdge(*top, *s));
  EXPECT_FALSE(l.HasEdge(*si, *id));
  EXPECT_FALSE(l.HasEdge(*s, *si));
}

TEST(CubeLatticeTest, TopIsFirstNode) {
  AttributeLattice l = BuildCubeLattice({"a", "b"});
  EXPECT_EQ(l.nodes[0].size(), 2u);  // finest subset first
  EXPECT_EQ(l.nodes.back().size(), 0u);
}

TEST(CubeLatticeTest, SingleDimension) {
  AttributeLattice l = BuildCubeLattice({"x"});
  EXPECT_EQ(l.nodes.size(), 2u);
  EXPECT_EQ(l.edges.size(), 1u);
}

TEST(CubeLatticeTest, FindIsOrderInsensitive) {
  AttributeLattice l = BuildCubeLattice({"a", "b", "c"});
  EXPECT_EQ(l.Find({"c", "a"}), l.Find({"a", "c"}));
  EXPECT_FALSE(l.Find({"a", "z"}).has_value());
}

TEST(CubeLatticeTest, RemoveNodesReroutesEdges) {
  // Removing (storeID) must connect (storeID, itemID) -> () via the
  // spliced edge (paper §3.4).
  AttributeLattice l = BuildCubeLattice({"storeID", "itemID"});
  const auto removed = l.Find({"storeID"});
  ASSERT_TRUE(removed.has_value());
  AttributeLattice pruned = RemoveNodes(l, {*removed});
  EXPECT_EQ(pruned.nodes.size(), 3u);
  const auto si = pruned.Find({"storeID", "itemID"});
  const auto i = pruned.Find({"itemID"});
  const auto empty = pruned.Find({});
  ASSERT_TRUE(si && i && empty);
  EXPECT_TRUE(pruned.HasEdge(*si, *empty));  // spliced through (storeID)
  EXPECT_TRUE(pruned.HasEdge(*si, *i));
  EXPECT_TRUE(pruned.HasEdge(*i, *empty));
}

TEST(CubeLatticeTest, RemoveTopLeavesPartialOrder) {
  AttributeLattice l = BuildCubeLattice({"a", "b"});
  AttributeLattice pruned = RemoveNodes(l, {0});
  EXPECT_EQ(pruned.nodes.size(), 3u);
  EXPECT_FALSE(pruned.Find({"a", "b"}).has_value());
}

TEST(CubeLatticeTest, ToStringListsEdges) {
  AttributeLattice l = BuildCubeLattice({"a"});
  EXPECT_NE(l.ToString().find("(a) -> ()"), std::string::npos);
}

}  // namespace
}  // namespace sdelta::lattice
