// Multi-query optimization across one batch's maintenance plans
// (lattice/mqo.h): canonical fingerprinting of join subtrees, the
// rewrite-rule catalog, and the execute-once shared-result cache.
//
// The load-bearing properties mirror the EXPLAIN suite:
//   1. Correctness — summary tables are byte-identical with MQO on and
//      off, serial and pooled alike, including when the push-agg rule
//      rewrites the shared subplan.
//   2. Exactness — on a high-sharing view family, EXPLAIN ANALYZE
//      actuals show every shared subplan executing exactly once per
//      batch while being read by >= 2 consumers.
//   3. Determinism — renderings and every mqo.* counter are identical
//      across num_threads 1, 2, and 8.
#include "lattice/mqo.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <map>
#include <string>
#include <utility>
#include <vector>

#include "obs/metrics.h"
#include "relational/csv.h"
#include "warehouse/retail_schema.h"
#include "warehouse/warehouse.h"
#include "warehouse/workload.h"

namespace sdelta::lattice {
namespace {

warehouse::RetailConfig SmallConfig() {
  warehouse::RetailConfig config;
  config.num_stores = 15;
  config.num_cities = 6;
  config.num_regions = 3;
  config.num_items = 80;
  config.num_categories = 8;
  config.num_dates = 30;
  config.num_pos_rows = 2500;
  config.seed = 913;
  return config;
}

core::ViewDef View(const std::string& name,
                   std::vector<core::DimensionJoin> joins,
                   std::vector<std::string> group_by) {
  core::ViewDef v;
  v.name = name;
  v.fact_table = "pos";
  v.joins = std::move(joins);
  v.group_by = std::move(group_by);
  v.aggregates = {rel::CountStar("TotalCount"),
                  rel::Sum(rel::Expression::Column("qty"), "TotalQuantity")};
  return v;
}

const core::DimensionJoin kStores{"stores", "storeID", "storeID"};
const core::DimensionJoin kItems{"items", "itemID", "itemID"};

/// Three pairwise-incomparable children of SID_sales, each re-joining
/// stores: the chooser derives all three from sd_SID_sales, so the
/// [join stores] prefix occurs in three plans.
std::vector<core::ViewDef> HighSharingViews() {
  return {View("SID_sales", {}, {"storeID", "itemID", "date"}),
          View("vCityItem", {kStores}, {"city", "itemID"}),
          View("vRegionDate", {kStores}, {"region", "date"}),
          View("vCityDate", {kStores}, {"city", "date"})};
}

/// Consumers whose only parent-side key is the storeID join column, so
/// the push-agg-below-shared-join key product (num_stores) is far under
/// the parent's delta estimate.
std::vector<core::ViewDef> PushdownViews() {
  return {View("SID_sales", {}, {"storeID", "itemID", "date"}),
          View("vCity", {kStores}, {"city"}),
          View("vRegion", {kStores}, {"region"})};
}

/// Chains [items]+agg, [items,stores]+agg, [items,stores]+agg: the
/// two-join prefix is kept for the city/region views and the one-join
/// prefix is kept as its base (read by vCatDate plus the nested
/// subplan).
std::vector<core::ViewDef> NestedViews() {
  return {View("SID_sales", {}, {"storeID", "itemID", "date"}),
          View("vCatDate", {kItems}, {"category", "date"}),
          View("vCityCat", {kItems, kStores}, {"city", "category"}),
          View("vRegionCat", {kItems, kStores}, {"region", "category"})};
}

/// Neither consumer reads itemID, so the prune rule projects it out of
/// the shared join input; the {storeID, date} key product (450) exceeds
/// half the 300-row delta estimate, so push-agg stays off and the chain
/// still starts with the join prune requires.
std::vector<core::ViewDef> PruneViews() {
  return {View("SID_sales", {}, {"storeID", "itemID", "date"}),
          View("vCityDate", {kStores}, {"city", "date"}),
          View("vRegionDate", {kStores}, {"region", "date"})};
}

warehouse::Warehouse MakeWh(const std::vector<core::ViewDef>& views,
                            size_t num_threads, bool mqo_enabled,
                            obs::MetricsRegistry* metrics = nullptr) {
  warehouse::Warehouse::Options options;
  // Hand-built families: no FD extension, so the sharing structure is
  // exactly what each test constructs.
  options.lattice_friendly = false;
  options.num_threads = num_threads;
  options.propagate.mqo_enabled = mqo_enabled;
  options.metrics = metrics;
  warehouse::Warehouse wh(warehouse::MakeRetailCatalog(SmallConfig()),
                          options);
  wh.DefineSummaryTables(views);
  return wh;
}

std::map<std::string, std::string> Snapshot(const warehouse::Warehouse& wh) {
  std::map<std::string, std::string> out;
  for (const core::AugmentedView& av : wh.vlattice().views) {
    out[av.name()] = rel::ToCsvString(wh.summary(av.name()).ToTable());
  }
  return out;
}

TEST(MqoTest, DetectsSharedJoinAcrossSiblingPlans) {
  warehouse::Warehouse wh = MakeWh(HighSharingViews(), 1, true);
  const core::ChangeSet changes =
      warehouse::MakeUpdateGeneratingChanges(wh.catalog(), 800, 7);
  const MqoPlan mqo =
      BuildMqoPlan(wh.catalog(), wh.vlattice(), wh.plan(), changes);

  EXPECT_EQ(mqo.stats.subplans_detected, 1u);
  ASSERT_EQ(mqo.shared.size(), 1u);
  const MqoSharedSubplan& sp = mqo.shared[0];
  EXPECT_EQ(sp.id, 0u);
  EXPECT_EQ(sp.refs, 3u);
  EXPECT_EQ(sp.consumer_slots.size(), 3u);
  EXPECT_FALSE(sp.shared_input.has_value());
  EXPECT_EQ(sp.level, 0u);
  EXPECT_EQ(sp.canonical.rfind("scan(sd_SID_sales)", 0), 0u) << sp.canonical;
  EXPECT_NE(sp.canonical.find("join(stores"), std::string::npos);
  EXPECT_EQ(sp.Description(wh.vlattice()), "sd_SID_sales join stores");

  // Every consumer program ends in its own final aggregate; the shared
  // prefix covers the single join, so that aggregate is the whole
  // residual chain.
  size_t rewritten = 0;
  for (const MqoProgram& prog : mqo.programs) {
    if (!prog.rewritten) continue;
    ++rewritten;
    ASSERT_EQ(prog.shared_input, std::optional<size_t>(0));
    ASSERT_FALSE(prog.ops.empty());
    EXPECT_EQ(prog.ops.back().kind, MqoOp::Kind::kAggregate);
  }
  EXPECT_EQ(rewritten, 3u);
  EXPECT_EQ(mqo.stats.subplans_materialized, 1u);
  EXPECT_LE(mqo.stats.subplans_materialized, mqo.stats.subplans_detected);
  EXPECT_EQ(mqo.stats.rules.extract_common_subplan, 1u);
}

TEST(MqoTest, NestedPrefixesShareTheirBase) {
  warehouse::Warehouse wh = MakeWh(NestedViews(), 1, true);
  const core::ChangeSet changes =
      warehouse::MakeUpdateGeneratingChanges(wh.catalog(), 800, 11);
  const MqoPlan mqo =
      BuildMqoPlan(wh.catalog(), wh.vlattice(), wh.plan(), changes);

  // [items] (read by vCatDate + the nested subplan) and [items, stores]
  // (read by vCityCat + vRegionCat).
  EXPECT_EQ(mqo.stats.subplans_detected, 2u);
  ASSERT_EQ(mqo.shared.size(), 2u);
  const MqoSharedSubplan& base = mqo.shared[0];
  const MqoSharedSubplan& nested = mqo.shared[1];
  EXPECT_FALSE(base.shared_input.has_value());
  EXPECT_EQ(base.level, 0u);
  EXPECT_EQ(base.refs, 2u);  // vCatDate + the nested subplan
  ASSERT_TRUE(nested.shared_input.has_value());
  EXPECT_EQ(*nested.shared_input, 0u);
  EXPECT_EQ(nested.level, 1u);
  EXPECT_EQ(nested.refs, 2u);  // vCityCat + vRegionCat
  EXPECT_EQ(nested.Description(wh.vlattice()), "shared#0 join stores");
  // The nested chain holds only the uncovered join.
  ASSERT_EQ(nested.ops.size(), 1u);
  EXPECT_EQ(nested.ops[0].kind, MqoOp::Kind::kJoin);
  EXPECT_EQ(nested.ops[0].join.dim_table, "stores");
}

TEST(MqoTest, StockRetailPlanHasNoSharing) {
  // The four paper views re-join distinct dimensions (sCD_sales joins
  // stores, SiC_sales joins items, sR_sales derives join-free), so MQO
  // on by default leaves the stock plan untouched.
  warehouse::Warehouse::Options options;
  warehouse::Warehouse wh(warehouse::MakeRetailCatalog(SmallConfig()),
                          options);
  wh.DefineSummaryTables(warehouse::RetailSummaryTables());
  const core::ChangeSet changes =
      warehouse::MakeUpdateGeneratingChanges(wh.catalog(), 800, 3);
  const MqoPlan mqo =
      BuildMqoPlan(wh.catalog(), wh.vlattice(), wh.plan(), changes);
  EXPECT_FALSE(mqo.any_sharing());
  EXPECT_EQ(mqo.stats.subplans_detected, 0u);
  for (const MqoProgram& prog : mqo.programs) {
    EXPECT_FALSE(prog.rewritten);
  }
  // And the whole batch runs unchanged: EXPLAIN shows no shared steps.
  EXPECT_TRUE(wh.Explain(changes).shared.empty());
}

TEST(MqoTest, PushAggBelowSharedJoinFiresWhenKeysAreSmall) {
  warehouse::Warehouse wh = MakeWh(PushdownViews(), 1, true);
  const core::ChangeSet changes =
      warehouse::MakeUpdateGeneratingChanges(wh.catalog(), 800, 13);
  const MqoPlan mqo =
      BuildMqoPlan(wh.catalog(), wh.vlattice(), wh.plan(), changes);

  ASSERT_EQ(mqo.shared.size(), 1u);
  const MqoSharedSubplan& sp = mqo.shared[0];
  EXPECT_EQ(mqo.stats.rules.push_agg_below_shared_join, 1u);
  EXPECT_TRUE(sp.preaggregated);
  ASSERT_EQ(sp.preagg_keys.size(), 1u);
  EXPECT_EQ(sp.preagg_keys[0], "storeID");
  ASSERT_GE(sp.ops.size(), 2u);
  EXPECT_EQ(sp.ops[0].kind, MqoOp::Kind::kAggregate);
  EXPECT_EQ(sp.ops[1].kind, MqoOp::Kind::kJoin);
  // The pre-aggregation caps the shared result at the key space.
  EXPECT_LE(sp.estimated_rows, 15.0);
  // Consumers re-aggregate the partials by output column name.
  for (size_t slot : sp.consumer_slots) {
    for (const rel::AggregateSpec& a :
         mqo.programs[slot].ops.back().aggregates) {
      ASSERT_TRUE(a.argument.has_value());
      EXPECT_EQ(a.argument->kind(), rel::Expression::Kind::kColumn);
      EXPECT_EQ(a.argument->column_name(), a.output_name);
    }
  }
}

TEST(MqoTest, PruneDropsColumnsNoReaderReferences) {
  warehouse::Warehouse wh = MakeWh(PruneViews(), 1, true);
  // 300 fact rows keep the {storeID, date} key product (450) above the
  // push-agg benefit gate, leaving the join-first chain prune needs.
  const core::ChangeSet changes =
      warehouse::MakeUpdateGeneratingChanges(wh.catalog(), 300, 17);
  const MqoPlan mqo =
      BuildMqoPlan(wh.catalog(), wh.vlattice(), wh.plan(), changes);

  ASSERT_EQ(mqo.shared.size(), 1u);
  const MqoSharedSubplan& sp = mqo.shared[0];
  EXPECT_FALSE(sp.preaggregated);
  EXPECT_EQ(mqo.stats.rules.push_agg_below_shared_join, 0u);
  EXPECT_EQ(mqo.stats.rules.prune_shared_columns, 1u);
  ASSERT_GE(sp.ops.size(), 2u);
  ASSERT_EQ(sp.ops[0].kind, MqoOp::Kind::kProject);
  const std::vector<std::string>& keep = sp.ops[0].columns;
  // itemID feeds neither consumer; the taint column always survives.
  EXPECT_EQ(std::count(keep.begin(), keep.end(), "itemID"), 0);
  EXPECT_EQ(std::count(keep.begin(), keep.end(), "storeID"), 1);
  EXPECT_EQ(std::count(keep.begin(), keep.end(), "date"), 1);
  EXPECT_EQ(std::count(keep.begin(), keep.end(), core::kTaintedColumn), 1);
}

TEST(MqoTest, SummariesByteIdenticalWithMqoOnAndOff) {
  for (const auto& [label, views] :
       {std::pair<std::string, std::vector<core::ViewDef>>{
            "high_sharing", HighSharingViews()},
        {"pushdown", PushdownViews()},
        {"nested", NestedViews()}}) {
    SCOPED_TRACE(label);
    warehouse::Warehouse on = MakeWh(views, 1, true);
    warehouse::Warehouse off = MakeWh(views, 1, false);
    warehouse::Warehouse pooled_on = MakeWh(views, 4, true);
    for (uint64_t seed : {101u, 202u, 303u}) {
      for (warehouse::Warehouse* wh : {&on, &off, &pooled_on}) {
        const core::ChangeSet changes =
            seed == 202u
                ? warehouse::MakeInsertionGeneratingChanges(wh->catalog(),
                                                           300, seed)
                : warehouse::MakeUpdateGeneratingChanges(wh->catalog(), 400,
                                                         seed);
        const warehouse::BatchReport report = wh->RunBatch(changes);
        if (wh == &on) {
          EXPECT_GT(report.mqo.subplans_materialized, 0u);
        } else if (wh == &off) {
          EXPECT_EQ(report.mqo.subplans_materialized, 0u);
          EXPECT_TRUE(report.shared_execs.empty());
        }
      }
      const auto expected = Snapshot(on);
      EXPECT_EQ(expected, Snapshot(off));
      EXPECT_EQ(expected, Snapshot(pooled_on));
    }
  }
}

TEST(MqoTest, SharedSubplansExecuteOncePerBatch) {
  warehouse::Warehouse wh = MakeWh(HighSharingViews(), 2, true);
  const core::ChangeSet changes =
      warehouse::MakeUpdateGeneratingChanges(wh.catalog(), 800, 19);
  warehouse::BatchReport report;
  const ExplainResult explain = wh.ExplainAnalyze(changes, &report);

  ASSERT_FALSE(explain.shared.empty());
  for (const ExplainShared& sh : explain.shared) {
    SCOPED_TRACE(sh.description);
    EXPECT_TRUE(sh.has_actuals);
    // The MQO contract: one materialization per batch, >= 2 readers.
    EXPECT_EQ(sh.executions, 1u);
    EXPECT_GE(sh.refs, 2u);
    EXPECT_GT(sh.rows, 0u);
    EXPECT_GT(sh.bytes, 0u);
  }
  EXPECT_GT(report.mqo.rows_reused, 0u);
  EXPECT_GT(report.mqo.bytes_cached, 0u);

  // All three renderings carry the sharing annotations.
  const std::string text = explain.ToText();
  EXPECT_NE(text.find("shared(#0, refs=3)"), std::string::npos) << text;
  EXPECT_NE(text.find("SharedScan(#0)"), std::string::npos);
  EXPECT_NE(text.find("act executions=1"), std::string::npos);
  const std::string dot = explain.ToDot();
  EXPECT_NE(dot.find("\"shared#0\""), std::string::npos);
  const obs::Json doc = explain.ToJson();
  const obs::Json* shared = doc.Find("shared");
  ASSERT_NE(shared, nullptr);
  ASSERT_EQ(shared->items().size(), explain.shared.size());
  const obs::Json& first = shared->items()[0];
  EXPECT_EQ(first.Find("refs")->as_int(), 3);
  ASSERT_NE(first.Find("actual"), nullptr);
  EXPECT_EQ(first.Find("actual")->Find("executions")->as_int(), 1);
  // Consumer steps carry the shared_scan reference.
  size_t consumers = 0;
  for (const obs::Json& step : doc.Find("steps")->items()) {
    if (step.Find("shared_scan") != nullptr) ++consumers;
  }
  EXPECT_EQ(consumers, 3u);
}

TEST(MqoTest, RenderingsAndCountersAreThreadInvariant) {
  struct Run {
    std::string text;
    std::string dot;
    std::string json;
    std::map<std::string, uint64_t> mqo_counters;
  };
  auto run = [](size_t num_threads) {
    obs::MetricsRegistry metrics;
    warehouse::Warehouse wh =
        MakeWh(HighSharingViews(), num_threads, true, &metrics);
    const core::ChangeSet changes =
        warehouse::MakeUpdateGeneratingChanges(wh.catalog(), 600, 23);
    const ExplainResult explain = wh.ExplainAnalyze(changes);
    Run out{explain.ToText(), explain.ToDot(), explain.ToJson().Dump(1), {}};
    for (const auto& [name, value] : metrics.Snapshot().counters) {
      if (name.rfind("mqo.", 0) == 0) out.mqo_counters[name] = value;
    }
    return out;
  };
  const Run serial = run(1);
  const Run two = run(2);
  const Run eight = run(8);
  EXPECT_FALSE(serial.mqo_counters.empty());
  EXPECT_GT(serial.mqo_counters.at("mqo.rows_reused"), 0u);
  EXPECT_EQ(serial.mqo_counters, two.mqo_counters);
  EXPECT_EQ(serial.mqo_counters, eight.mqo_counters);
  EXPECT_EQ(serial.text, two.text);
  EXPECT_EQ(serial.text, eight.text);
  EXPECT_EQ(serial.dot, two.dot);
  EXPECT_EQ(serial.dot, eight.dot);
  EXPECT_EQ(serial.json, two.json);
  EXPECT_EQ(serial.json, eight.json);
}

TEST(MqoTest, MqoMetricSeriesExistEvenWithoutSharing) {
  obs::MetricsRegistry metrics;
  warehouse::Warehouse::Options options;
  options.metrics = &metrics;
  warehouse::Warehouse wh(warehouse::MakeRetailCatalog(SmallConfig()),
                          options);
  wh.DefineSummaryTables(warehouse::RetailSummaryTables());
  wh.RunBatch(warehouse::MakeUpdateGeneratingChanges(wh.catalog(), 200, 29));
  const auto counters = metrics.Snapshot().counters;
  EXPECT_EQ(counters.at("mqo.subplans_detected"), 0u);
  EXPECT_EQ(counters.at("mqo.subplans_materialized"), 0u);
  EXPECT_EQ(counters.at("mqo.rows_reused"), 0u);
  EXPECT_EQ(counters.at("mqo.rule_fires"), 0u);
}

MqoOp Project(std::vector<std::string> columns) {
  MqoOp op;
  op.kind = MqoOp::Kind::kProject;
  op.columns = std::move(columns);
  return op;
}

TEST(MqoTest, CollapseChainMergesStackedProjects) {
  MqoChain chain = {Project({"a", "b", "c"}), Project({"a", "b"})};
  EXPECT_EQ(CollapseChain(&chain), 1u);
  ASSERT_EQ(chain.size(), 1u);
  EXPECT_EQ(chain[0].columns, (std::vector<std::string>{"a", "b"}));

  // The inner project stays when the outer one needs a column it drops.
  MqoChain keep = {Project({"a"}), Project({"a", "b"})};
  EXPECT_EQ(CollapseChain(&keep), 0u);
  EXPECT_EQ(keep.size(), 2u);
}

TEST(MqoTest, CollapseChainDropsProjectCoveringAggregate) {
  MqoOp agg;
  agg.kind = MqoOp::Kind::kAggregate;
  agg.group_by = {rel::GroupByColumn{"a", ""}};
  agg.aggregates = {rel::Sum(rel::Expression::Column("b"), "s")};
  MqoChain chain = {Project({"a", "b"}), agg};
  EXPECT_EQ(CollapseChain(&chain), 1u);
  ASSERT_EQ(chain.size(), 1u);
  EXPECT_EQ(chain[0].kind, MqoOp::Kind::kAggregate);

  // A project the aggregate actually narrows through must stay... but a
  // keep-list missing a referenced column is kept as-is.
  MqoChain narrow = {Project({"a"}), agg};
  EXPECT_EQ(CollapseChain(&narrow), 0u);
  EXPECT_EQ(narrow.size(), 2u);
}

TEST(MqoTest, CollapseChainDeduplicatesIdenticalSelects) {
  MqoOp sel;
  sel.kind = MqoOp::Kind::kSelect;
  sel.predicate =
      rel::Expression::Eq(rel::Expression::Column("a"),
                          rel::Expression::Literal(rel::Value::Int64(1)));
  MqoChain chain = {sel, sel};
  EXPECT_EQ(CollapseChain(&chain), 1u);
  EXPECT_EQ(chain.size(), 1u);
}

}  // namespace
}  // namespace sdelta::lattice
