#include "lattice/answer.h"

#include <gtest/gtest.h>

#include "core/sql_parser.h"
#include "test_util.h"
#include "warehouse/retail_schema.h"
#include "warehouse/warehouse.h"
#include "warehouse/workload.h"

namespace sdelta::lattice {
namespace {

using core::ViewDef;
using rel::Expression;
using sdelta::testing::ExpectBagEq;

warehouse::Warehouse MakeWarehouse() {
  warehouse::RetailConfig config;
  config.num_stores = 15;
  config.num_items = 80;
  config.num_pos_rows = 3000;
  config.seed = 77;
  warehouse::Warehouse wh(warehouse::MakeRetailCatalog(config));
  wh.DefineSummaryTables(warehouse::RetailSummaryTables());
  return wh;
}

ViewDef RegionQuery() {
  ViewDef q;
  q.name = "q";
  q.fact_table = "pos";
  q.joins = {core::DimensionJoin{"stores", "storeID", "storeID"}};
  q.group_by = {"region"};
  q.aggregates = {rel::Sum(Expression::Column("qty"), "total")};
  return q;
}

TEST(AnswerTest, RegionQueryServedFromSmallestView) {
  warehouse::Warehouse wh = MakeWarehouse();
  AnswerResult r = wh.Query(RegionQuery());
  EXPECT_FALSE(r.from_base);
  // sR_sales (5 rows) is the cheapest source for a region rollup.
  EXPECT_EQ(r.source_view, "sR_sales");
  EXPECT_EQ(r.rows.NumRows(), 5u);

  // The answer equals base-table evaluation.
  ViewDef q = RegionQuery();
  rel::Table expected = core::EvaluateView(wh.catalog(), q);
  // expected carries COUNT-free logical columns in the same layout.
  ExpectBagEq(expected, r.rows);
}

TEST(AnswerTest, CityQueryServedFromSomeSummaryTable) {
  warehouse::Warehouse wh = MakeWarehouse();
  ViewDef q;
  q.name = "q";
  q.fact_table = "pos";
  q.joins = {core::DimensionJoin{"stores", "storeID", "storeID"}};
  q.group_by = {"city"};
  q.aggregates = {rel::CountStar("n")};
  AnswerResult r = wh.Query(q);
  // Both sCD_sales (direct) and SiC_sales (via the stores FK on its
  // storeID group-by) can serve this; the chooser picks by cost.
  EXPECT_FALSE(r.from_base);
  EXPECT_FALSE(r.source_view.empty());
  ExpectBagEq(core::EvaluateView(wh.catalog(), q), r.rows);
}

TEST(AnswerTest, MinAggregateServedFromSic) {
  warehouse::Warehouse wh = MakeWarehouse();
  ViewDef q;
  q.name = "q";
  q.fact_table = "pos";
  q.joins = {core::DimensionJoin{"items", "itemID", "itemID"}};
  q.group_by = {"category"};
  q.aggregates = {rel::Min(Expression::Column("date"), "first_sale")};
  AnswerResult r = wh.Query(q);
  EXPECT_FALSE(r.from_base);
  EXPECT_EQ(r.source_view, "SiC_sales");
  ExpectBagEq(core::EvaluateView(wh.catalog(), q), r.rows);
}

TEST(AnswerTest, UnservableQueryFallsBackToBase) {
  warehouse::Warehouse wh = MakeWarehouse();
  // MAX(price) is not computed by any summary table and price is not a
  // group-by attribute anywhere.
  ViewDef q;
  q.name = "q";
  q.fact_table = "pos";
  q.group_by = {"storeID"};
  q.aggregates = {rel::Max(Expression::Column("price"), "top_price")};
  AnswerResult r = wh.Query(q);
  EXPECT_TRUE(r.from_base);
  EXPECT_TRUE(r.source_view.empty());
  ExpectBagEq(core::EvaluateView(wh.catalog(), q), r.rows);
}

TEST(AnswerTest, AvgReconstructedFromSumAndCount) {
  warehouse::Warehouse wh = MakeWarehouse();
  ViewDef q;
  q.name = "q";
  q.fact_table = "pos";
  q.joins = {core::DimensionJoin{"stores", "storeID", "storeID"}};
  q.group_by = {"region"};
  q.aggregates = {rel::Avg(Expression::Column("qty"), "avg_qty")};
  AnswerResult r = wh.Query(q);
  EXPECT_FALSE(r.from_base);
  // Answer equals base evaluation of the logical view (AVG division).
  rel::Table expected = core::EvaluateView(wh.catalog(), q);
  sdelta::testing::ExpectBagApproxEq(expected, r.rows);
}

TEST(AnswerTest, SqlTextQueries) {
  warehouse::Warehouse wh = MakeWarehouse();
  AnswerResult r = wh.Query(
      "SELECT region, SUM(qty) AS total FROM pos, stores "
      "WHERE pos.storeID = stores.storeID GROUP BY region");
  EXPECT_EQ(r.source_view, "sR_sales");
  EXPECT_EQ(r.rows.NumRows(), 5u);
  EXPECT_EQ(r.rows.schema().column(1).name, "total");
}

TEST(AnswerTest, AnswersStayCorrectAcrossBatches) {
  warehouse::Warehouse wh = MakeWarehouse();
  wh.RunBatch(warehouse::MakeUpdateGeneratingChanges(wh.catalog(), 300, 1));
  wh.RunBatch(
      warehouse::MakeInsertionGeneratingChanges(wh.catalog(), 200, 2));
  ViewDef q = RegionQuery();
  AnswerResult r = wh.Query(q);
  EXPECT_FALSE(r.from_base);
  ExpectBagEq(core::EvaluateView(wh.catalog(), q), r.rows);
}

TEST(AnswerTest, QueryReadsFewerRowsThanBase) {
  warehouse::Warehouse wh = MakeWarehouse();
  AnswerResult from_view = wh.Query(RegionQuery());
  EXPECT_LT(from_view.rows_read,
            wh.catalog().GetTable("pos").NumRows() / 10);
}

TEST(AnswerTest, MismatchedSummariesThrow) {
  warehouse::Warehouse wh = MakeWarehouse();
  std::vector<const core::SummaryTable*> wrong;  // empty, not parallel
  EXPECT_THROW(
      AnswerQuery(wh.catalog(), wh.vlattice(), wrong, RegionQuery()),
      std::invalid_argument);
}

}  // namespace
}  // namespace sdelta::lattice
