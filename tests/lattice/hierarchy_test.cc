#include "lattice/hierarchy.h"

#include <gtest/gtest.h>

#include "tiny_catalog.h"

namespace sdelta::lattice {
namespace {

using sdelta::testing::TinyCatalog;

TEST(HierarchyTest, StoreChainFromFunctionalDependencies) {
  rel::Catalog c = TinyCatalog();
  const rel::ForeignKey* fk = c.FindForeignKey("pos", "storeID");
  ASSERT_NE(fk, nullptr);
  DimensionHierarchy h = HierarchyOf(c, *fk);
  ASSERT_EQ(h.levels.size(), 3u);
  EXPECT_EQ(h.levels[0], "storeID");
  EXPECT_EQ(h.levels[1], "city");
  EXPECT_EQ(h.levels[2], "region");
}

TEST(HierarchyTest, ItemChain) {
  rel::Catalog c = TinyCatalog();
  DimensionHierarchy h = HierarchyOf(c, *c.FindForeignKey("pos", "itemID"));
  ASSERT_EQ(h.levels.size(), 2u);
  EXPECT_EQ(h.levels[0], "itemID");
  EXPECT_EQ(h.levels[1], "category");
}

TEST(HierarchyTest, FactHierarchiesIncludePlainAttributes) {
  rel::Catalog c = TinyCatalog();
  std::vector<DimensionHierarchy> hs = FactHierarchies(c, "pos", {"date"});
  ASSERT_EQ(hs.size(), 3u);  // stores, items, date
  EXPECT_EQ(hs[2].levels, std::vector<std::string>{"date"});
}

TEST(HierarchyTest, Figure5CombinedLattice) {
  // The paper's Figure 5: the direct product of
  // store {storeID, city, region, -} x item {itemID, category, -} x
  // date {date, -} = 4 * 3 * 2 = 24 nodes.
  rel::Catalog c = TinyCatalog();
  AttributeLattice l =
      CombineHierarchies(FactHierarchies(c, "pos", {"date"}));
  EXPECT_EQ(l.nodes.size(), 24u);

  // Spot-check nodes named in the figure.
  ASSERT_TRUE(l.Find({"storeID", "itemID", "date"}).has_value());
  ASSERT_TRUE(l.Find({"city", "itemID", "date"}).has_value());
  ASSERT_TRUE(l.Find({"region", "category", "date"}).has_value());
  ASSERT_TRUE(l.Find({"city", "category"}).has_value());
  ASSERT_TRUE(l.Find({"region"}).has_value());
  ASSERT_TRUE(l.Find({}).has_value());
  // Nonsensical combos (two levels of one dimension) do not exist.
  EXPECT_FALSE(l.Find({"storeID", "city"}).has_value());
  EXPECT_FALSE(l.Find({"city", "region", "date"}).has_value());

  // Edges coarsen one dimension one step.
  const auto top = l.Find({"storeID", "itemID", "date"});
  EXPECT_TRUE(l.HasEdge(*top, *l.Find({"city", "itemID", "date"})));
  EXPECT_TRUE(l.HasEdge(*top, *l.Find({"storeID", "category", "date"})));
  EXPECT_TRUE(l.HasEdge(*top, *l.Find({"storeID", "itemID"})));
  // Not two steps at once.
  EXPECT_FALSE(l.HasEdge(*top, *l.Find({"region", "itemID", "date"})));
  EXPECT_FALSE(l.HasEdge(*top, *l.Find({"city", "category", "date"})));
  // Chain down to the bottom.
  EXPECT_TRUE(l.HasEdge(*l.Find({"region"}), *l.Find({})));
  EXPECT_TRUE(l.HasEdge(*l.Find({"city"}), *l.Find({"region"})));
}

TEST(HierarchyTest, Figure5EdgeCount) {
  rel::Catalog c = TinyCatalog();
  AttributeLattice l =
      CombineHierarchies(FactHierarchies(c, "pos", {"date"}));
  // Each node has one outgoing edge per dimension not yet exhausted:
  // sum over nodes of coarsenable dimensions. For chains of lengths
  // (3,2,1) with the "none" level: digits (0..3)x(0..2)x(0..1); an edge
  // exists per digit below its max: total = sum over nodes of
  // #dims with digit < max = 3*(3*2) + 2*(4*2)... compute directly: for
  // store: digit<3 in 3 of 4 choices -> 3*3*2=18; item: digit<2 in 2 of
  // 3 -> 4*2*2=16; date: digit<1 in 1 of 2 -> 4*3*1=12; total 46.
  EXPECT_EQ(l.edges.size(), 46u);
}

TEST(HierarchyTest, CombineSingleDimensionIsChain) {
  DimensionHierarchy h{"store", {"storeID", "city", "region"}};
  AttributeLattice l = CombineHierarchies({h});
  EXPECT_EQ(l.nodes.size(), 4u);
  EXPECT_EQ(l.edges.size(), 3u);
  EXPECT_TRUE(l.HasEdge(*l.Find({"storeID"}), *l.Find({"city"})));
  EXPECT_TRUE(l.HasEdge(*l.Find({"region"}), *l.Find({})));
}

}  // namespace
}  // namespace sdelta::lattice
