#include "lattice/plan.h"

#include <gtest/gtest.h>

#include "core/maintenance.h"
#include "tiny_catalog.h"
#include "warehouse/retail_schema.h"
#include "warehouse/workload.h"

namespace sdelta::lattice {
namespace {

using core::ViewDef;
using sdelta::testing::TinyCatalog;

VLattice RetailLattice(const rel::Catalog& c) {
  std::vector<ViewDef> friendly =
      MakeLatticeFriendly(c, warehouse::RetailSummaryTables());
  std::vector<core::AugmentedView> augmented;
  for (const ViewDef& v : friendly) {
    augmented.push_back(core::AugmentForSelfMaintenance(c, v));
  }
  return BuildVLattice(c, std::move(augmented));
}

rel::Catalog SmallRetail() {
  warehouse::RetailConfig config;
  config.num_stores = 10;
  config.num_cities = 4;
  config.num_regions = 2;
  config.num_items = 40;
  config.num_categories = 5;
  config.num_dates = 20;
  config.num_pos_rows = 1000;
  config.seed = 5;
  return warehouse::MakeRetailCatalog(config);
}

TEST(PlanTest, EstimateGroupCountUsesDistinctValues) {
  rel::Catalog c = SmallRetail();
  VLattice l = RetailLattice(c);
  const double sid =
      EstimateGroupCount(c, l.views[*l.IndexOf("SID_sales")]);
  const double sr = EstimateGroupCount(c, l.views[*l.IndexOf("sR_sales")]);
  EXPECT_GT(sid, sr);
  EXPECT_DOUBLE_EQ(sr, 2.0);  // two regions
}

TEST(PlanTest, EstimateSkipsFunctionallyDeterminedAttributes) {
  rel::Catalog c = SmallRetail();
  // (city, region): region is determined by city, so the estimate must
  // equal the city count alone (4), not 4 * 2.
  core::ViewDef v;
  v.name = "cr";
  v.fact_table = "pos";
  v.joins = {core::DimensionJoin{"stores", "storeID", "storeID"}};
  v.group_by = {"city", "stores.region"};
  v.aggregates = {rel::CountStar("n")};
  core::AugmentedView av = core::AugmentForSelfMaintenance(c, v);
  EXPECT_DOUBLE_EQ(EstimateGroupCount(c, av), 4.0);

  // (storeID, city): storeID's FK determines every stores attribute.
  core::ViewDef v2;
  v2.name = "sc";
  v2.fact_table = "pos";
  v2.joins = {core::DimensionJoin{"stores", "storeID", "storeID"}};
  v2.group_by = {"storeID", "city"};
  v2.aggregates = {rel::CountStar("n")};
  core::AugmentedView av2 = core::AugmentForSelfMaintenance(c, v2);
  EXPECT_DOUBLE_EQ(EstimateGroupCount(c, av2), 10.0);  // stores only
}

TEST(PlanTest, LatticePlanDerivesChildrenFromParents) {
  rel::Catalog c = SmallRetail();
  VLattice l = RetailLattice(c);
  MaintenancePlan plan = ChoosePlan(c, l);
  ASSERT_EQ(plan.steps.size(), 4u);

  // First step: the top view, from base changes.
  EXPECT_EQ(l.views[plan.steps[0].view].name(), "SID_sales");
  EXPECT_FALSE(plan.steps[0].edge.has_value());

  // Every other view derives from a parent, and sR derives from sCD (the
  // smallest parent, with no join needed).
  for (size_t i = 1; i < plan.steps.size(); ++i) {
    const PlanStep& step = plan.steps[i];
    ASSERT_TRUE(step.edge.has_value())
        << l.views[step.view].name() << " should use the lattice";
    const VLatticeEdge& e = l.edges[*step.edge];
    EXPECT_EQ(e.child, step.view);
    if (l.views[step.view].name() == "sR_sales") {
      EXPECT_EQ(l.views[e.parent].name(), "sCD_sales");
      EXPECT_TRUE(e.recipe.joins.empty());
    }
  }
}

TEST(PlanTest, NoLatticePlanComputesEverythingFromBase) {
  rel::Catalog c = SmallRetail();
  VLattice l = RetailLattice(c);
  MaintenancePlan plan = ChoosePlan(c, l, PlanOptions{false});
  ASSERT_EQ(plan.steps.size(), 4u);
  for (const PlanStep& step : plan.steps) {
    EXPECT_FALSE(step.edge.has_value());
  }
}

TEST(PlanTest, PlanToStringMentionsParents) {
  rel::Catalog c = SmallRetail();
  VLattice l = RetailLattice(c);
  MaintenancePlan plan = ChoosePlan(c, l);
  const std::string s = plan.ToString(l);
  EXPECT_NE(s.find("SID_sales <- base changes"), std::string::npos);
  EXPECT_NE(s.find("sR_sales <- sd_sCD_sales"), std::string::npos);
}

TEST(PlanTest, PropagateAllLatticeMatchesDirect) {
  rel::Catalog c = SmallRetail();
  VLattice l = RetailLattice(c);
  const core::ChangeSet changes =
      warehouse::MakeUpdateGeneratingChanges(c, 200, 31);

  LatticePropagateResult with_lattice =
      PropagateAll(c, l, ChoosePlan(c, l), changes);
  LatticePropagateResult without =
      PropagateAll(c, l, ChoosePlan(c, l, PlanOptions{false}), changes);

  ASSERT_EQ(with_lattice.deltas.size(), without.deltas.size());
  for (size_t i = 0; i < l.views.size(); ++i) {
    SCOPED_TRACE(l.views[i].name());
    EXPECT_TRUE(rel::Table::BagEquals(without.deltas[i],
                                      with_lattice.deltas[i]))
        << "direct:\n" << without.deltas[i].ToString(20)
        << "lattice:\n" << with_lattice.deltas[i].ToString(20);
  }
}

TEST(PlanTest, OutOfOrderPlanRejected) {
  rel::Catalog c = SmallRetail();
  VLattice l = RetailLattice(c);
  MaintenancePlan plan = ChoosePlan(c, l);
  // Reverse the steps: children before parents must throw.
  std::reverse(plan.steps.begin(), plan.steps.end());
  core::ChangeSet changes =
      warehouse::MakeUpdateGeneratingChanges(c, 10, 32);
  EXPECT_THROW(PropagateAll(c, l, plan, changes), std::logic_error);
}

}  // namespace
}  // namespace sdelta::lattice
