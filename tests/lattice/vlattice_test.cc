#include "lattice/vlattice.h"

#include <gtest/gtest.h>

#include "tiny_catalog.h"
#include "warehouse/retail_schema.h"

namespace sdelta::lattice {
namespace {

using core::ViewDef;
using sdelta::testing::TinyCatalog;

std::vector<core::AugmentedView> AugmentAll(const rel::Catalog& c,
                                            const std::vector<ViewDef>& vs) {
  std::vector<core::AugmentedView> out;
  for (const ViewDef& v : vs) {
    out.push_back(core::AugmentForSelfMaintenance(c, v));
  }
  return out;
}

TEST(MakeLatticeFriendlyTest, ExtendsScdWithRegion) {
  // §5.2/§5.3: sCD_sales(city, date) gains region because sR_sales wants
  // it and city -> region holds in the already-joined stores dimension.
  rel::Catalog c = TinyCatalog();
  std::vector<ViewDef> views =
      MakeLatticeFriendly(c, warehouse::RetailSummaryTables());
  for (const ViewDef& v : views) {
    if (v.name == "sCD_sales") {
      ASSERT_EQ(v.group_by.size(), 3u);
      EXPECT_EQ(v.group_by[2], "stores.region");
    } else if (v.name == "SID_sales") {
      // Joins are pushed down: the top view is NOT extended (it joins no
      // dimensions).
      EXPECT_EQ(v.group_by.size(), 3u);
    } else if (v.name == "SiC_sales") {
      // category determines nothing.
      EXPECT_EQ(v.group_by.size(), 2u);
    }
  }
}

TEST(MakeLatticeFriendlyTest, NoExtensionWhenNobodyWantsIt) {
  rel::Catalog c = TinyCatalog();
  // Without sR_sales, nobody groups by region, so sCD is untouched.
  std::vector<ViewDef> views = warehouse::RetailSummaryTables();
  views.erase(views.begin() + 3);  // drop sR_sales
  std::vector<ViewDef> out = MakeLatticeFriendly(c, views);
  for (const ViewDef& v : out) {
    if (v.name == "sCD_sales") EXPECT_EQ(v.group_by.size(), 2u);
  }
}

TEST(VLatticeTest, Figure8Structure) {
  // After the friendly extension, the retail V-lattice is Figure 8:
  //   SID -> SiC [items],  SID -> sCD [stores],  sCD -> sR [no join],
  // plus the transitive derives pairs SID -> sR and SiC -> sR.
  rel::Catalog c = TinyCatalog();
  std::vector<ViewDef> friendly =
      MakeLatticeFriendly(c, warehouse::RetailSummaryTables());
  VLattice l = BuildVLattice(c, AugmentAll(c, friendly));

  const size_t sid = *l.IndexOf("SID_sales");
  const size_t scd = *l.IndexOf("sCD_sales");
  const size_t sic = *l.IndexOf("SiC_sales");
  const size_t sr = *l.IndexOf("sR_sales");

  auto has_edge = [&](size_t p, size_t ch) {
    for (const VLatticeEdge& e : l.edges) {
      if (e.parent == p && e.child == ch) return true;
    }
    return false;
  };
  EXPECT_TRUE(has_edge(sid, scd));
  EXPECT_TRUE(has_edge(sid, sic));
  EXPECT_TRUE(has_edge(sid, sr));
  EXPECT_TRUE(has_edge(scd, sr));
  EXPECT_TRUE(has_edge(sic, sr));
  EXPECT_FALSE(has_edge(scd, sic));
  EXPECT_FALSE(has_edge(sic, scd));
  EXPECT_FALSE(has_edge(sr, scd));
  EXPECT_EQ(l.edges.size(), 5u);

  // SID is the unique top.
  const std::vector<size_t> tops = l.Tops();
  ASSERT_EQ(tops.size(), 1u);
  EXPECT_EQ(tops[0], sid);

  // Edge annotations match Figure 8.
  for (const VLatticeEdge& e : l.edges) {
    if (e.parent == sid && e.child == sic) {
      ASSERT_EQ(e.recipe.joins.size(), 1u);
      EXPECT_EQ(e.recipe.joins[0].dim_table, "items");
    }
    if (e.parent == sid && e.child == scd) {
      ASSERT_EQ(e.recipe.joins.size(), 1u);
      EXPECT_EQ(e.recipe.joins[0].dim_table, "stores");
    }
    if (e.parent == scd && e.child == sr) {
      EXPECT_TRUE(e.recipe.joins.empty());  // region carried in sCD
    }
  }
}

TEST(VLatticeTest, ParentsOfAndToString) {
  rel::Catalog c = TinyCatalog();
  std::vector<ViewDef> friendly =
      MakeLatticeFriendly(c, warehouse::RetailSummaryTables());
  VLattice l = BuildVLattice(c, AugmentAll(c, friendly));
  const size_t sr = *l.IndexOf("sR_sales");
  EXPECT_EQ(l.ParentsOf(sr).size(), 3u);
  EXPECT_FALSE(l.IndexOf("nope").has_value());
  EXPECT_NE(l.ToString().find("sR_sales <= sCD_sales"), std::string::npos);
}

TEST(VLatticeTest, UnrelatedViewsProduceNoEdges) {
  rel::Catalog c = TinyCatalog();
  ViewDef a;
  a.name = "by_store";
  a.fact_table = "pos";
  a.group_by = {"storeID"};
  a.aggregates = {rel::CountStar("n")};
  ViewDef b;
  b.name = "by_date";
  b.fact_table = "pos";
  b.group_by = {"date"};
  b.aggregates = {rel::CountStar("n")};
  VLattice l = BuildVLattice(c, AugmentAll(c, {a, b}));
  EXPECT_TRUE(l.edges.empty());
  EXPECT_EQ(l.Tops().size(), 2u);
}

}  // namespace
}  // namespace sdelta::lattice
