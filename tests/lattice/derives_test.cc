#include "lattice/derives.h"

#include <gtest/gtest.h>

#include "core/view_def.h"
#include "test_util.h"
#include "tiny_catalog.h"
#include "warehouse/retail_schema.h"

namespace sdelta::lattice {
namespace {

using core::AugmentedView;
using core::DerivationRecipe;
using core::ViewDef;
using rel::Expression;
using sdelta::testing::TinyCatalog;

AugmentedView Aug(const rel::Catalog& c, const ViewDef& v) {
  return core::AugmentForSelfMaintenance(c, v);
}

std::vector<ViewDef> Retail() { return warehouse::RetailSummaryTables(); }

ViewDef Find(const std::vector<ViewDef>& views, const std::string& name) {
  for (const ViewDef& v : views) {
    if (v.name == name) return v;
  }
  throw std::logic_error("no view " + name);
}

TEST(DerivesTest, Example51Relationships) {
  // Paper Example 5.1: sCD ≼ SID via stores, SiC ≼ SID via items,
  // sR ≼ SID via stores, sR ≼ sCD via stores, sR ≼ SiC via stores.
  rel::Catalog c = TinyCatalog();
  const std::vector<ViewDef> views = Retail();
  AugmentedView sid = Aug(c, Find(views, "SID_sales"));
  AugmentedView scd = Aug(c, Find(views, "sCD_sales"));
  AugmentedView sic = Aug(c, Find(views, "SiC_sales"));
  AugmentedView sr = Aug(c, Find(views, "sR_sales"));

  auto scd_from_sid = ComputeDerivation(c, scd, sid);
  ASSERT_TRUE(scd_from_sid.has_value());
  ASSERT_EQ(scd_from_sid->joins.size(), 1u);
  EXPECT_EQ(scd_from_sid->joins[0].dim_table, "stores");

  auto sic_from_sid = ComputeDerivation(c, sic, sid);
  ASSERT_TRUE(sic_from_sid.has_value());
  ASSERT_EQ(sic_from_sid->joins.size(), 1u);
  EXPECT_EQ(sic_from_sid->joins[0].dim_table, "items");

  auto sr_from_sid = ComputeDerivation(c, sr, sid);
  ASSERT_TRUE(sr_from_sid.has_value());
  EXPECT_EQ(sr_from_sid->joins[0].dim_table, "stores");

  auto sr_from_sic = ComputeDerivation(c, sr, sic);
  ASSERT_TRUE(sr_from_sic.has_value());
  EXPECT_EQ(sr_from_sic->joins[0].dim_table, "stores");

  // SID is the top: nothing derives it.
  EXPECT_FALSE(ComputeDerivation(c, sid, scd).has_value());
  EXPECT_FALSE(ComputeDerivation(c, sid, sic).has_value());
  EXPECT_FALSE(ComputeDerivation(c, sid, sr).has_value());
}

TEST(DerivesTest, SrFromScdNeedsRegionExtension) {
  // Without the §5.2 extension, sCD groups by (city, date) only, and
  // region is NOT reachable from city (no FK on city), so sR !≼ sCD.
  rel::Catalog c = TinyCatalog();
  const std::vector<ViewDef> views = Retail();
  AugmentedView scd = Aug(c, Find(views, "sCD_sales"));
  AugmentedView sr = Aug(c, Find(views, "sR_sales"));
  EXPECT_FALSE(ComputeDerivation(c, sr, scd).has_value());

  // With region added to sCD (as the paper's Figure 8 does), it derives
  // with no join at all.
  ViewDef scd_ext = Find(views, "sCD_sales");
  scd_ext.group_by.push_back("region");
  AugmentedView scd_ext_aug = Aug(c, scd_ext);
  auto recipe = ComputeDerivation(c, sr, scd_ext_aug);
  ASSERT_TRUE(recipe.has_value());
  EXPECT_TRUE(recipe->joins.empty());
}

TEST(DerivesTest, RecipeRewritesAggregates) {
  rel::Catalog c = TinyCatalog();
  const std::vector<ViewDef> views = Retail();
  AugmentedView sid = Aug(c, Find(views, "SID_sales"));
  AugmentedView sic = Aug(c, Find(views, "SiC_sales"));
  auto recipe = ComputeDerivation(c, sic, sid);
  ASSERT_TRUE(recipe.has_value());

  // SiC: COUNT(*), MIN(date), SUM(qty) + companions. COUNT/SUM rewrite
  // to SUM over parent columns; MIN(date) rewrites to MIN over the
  // parent's *group-by* attribute date (date is not aggregated in SID).
  bool saw_min_over_date = false;
  for (const rel::AggregateSpec& a : recipe->aggregates) {
    EXPECT_NE(a.kind, rel::AggregateKind::kCount);
    EXPECT_NE(a.kind, rel::AggregateKind::kCountStar);
    if (a.kind == rel::AggregateKind::kMin) {
      saw_min_over_date = true;
      ASSERT_TRUE(a.argument.has_value());
      EXPECT_EQ(a.argument->ToString(), "date");
    }
  }
  EXPECT_TRUE(saw_min_over_date);
}

TEST(DerivesTest, CountOverGroupByAttributeUsesCountStar) {
  // COUNT(date) in a child where date is a parent group-by: rewrite is
  // SUM(CASE WHEN date IS NULL THEN 0 ELSE count_star END).
  rel::Catalog c = TinyCatalog();
  ViewDef parent;
  parent.name = "p";
  parent.fact_table = "pos";
  parent.group_by = {"storeID", "date"};
  parent.aggregates = {rel::CountStar("n")};

  ViewDef child;
  child.name = "ch";
  child.fact_table = "pos";
  child.group_by = {"storeID"};
  child.aggregates = {rel::Count(Expression::Column("date"), "ndate")};

  auto recipe = ComputeDerivation(c, Aug(c, child), Aug(c, parent));
  ASSERT_TRUE(recipe.has_value());
  bool found = false;
  for (const rel::AggregateSpec& a : recipe->aggregates) {
    if (a.output_name == "ndate") {
      found = true;
      EXPECT_EQ(a.kind, rel::AggregateKind::kSum);
      EXPECT_NE(a.argument->ToString().find("CASE WHEN date IS NULL"),
                std::string::npos);
    }
  }
  EXPECT_TRUE(found);
}

TEST(DerivesTest, SumOverGroupByAttributeMultipliesByCount) {
  // §5.1: if parent groups by qty and child computes SUM(qty), the edge
  // query computes SUM(qty * Y) with Y the parent's COUNT(*).
  rel::Catalog c = TinyCatalog();
  ViewDef parent;
  parent.name = "p";
  parent.fact_table = "pos";
  parent.group_by = {"storeID", "qty"};
  parent.aggregates = {rel::CountStar("n")};

  ViewDef child;
  child.name = "ch";
  child.fact_table = "pos";
  child.group_by = {"storeID"};
  child.aggregates = {rel::Sum(Expression::Column("qty"), "total")};

  auto recipe = ComputeDerivation(c, Aug(c, child), Aug(c, parent));
  ASSERT_TRUE(recipe.has_value());
  bool found = false;
  for (const rel::AggregateSpec& a : recipe->aggregates) {
    if (a.output_name == "total") {
      found = true;
      EXPECT_EQ(a.kind, rel::AggregateKind::kSum);
      EXPECT_EQ(a.argument->ToString(), "(qty * n)");
    }
  }
  EXPECT_TRUE(found);
}

TEST(DerivesTest, RejectsDifferentFactTables) {
  rel::Catalog c = TinyCatalog();
  ViewDef a;
  a.name = "a";
  a.fact_table = "pos";
  a.group_by = {"storeID"};
  a.aggregates = {rel::CountStar("n")};
  ViewDef b = a;
  b.name = "b";
  b.fact_table = "items";
  b.group_by = {"itemID"};
  EXPECT_FALSE(ComputeDerivation(c, Aug(c, b), Aug(c, a)).has_value());
}

TEST(DerivesTest, RejectsDifferentPredicates) {
  rel::Catalog c = TinyCatalog();
  ViewDef a;
  a.name = "a";
  a.fact_table = "pos";
  a.group_by = {"storeID", "itemID"};
  a.aggregates = {rel::CountStar("n")};
  ViewDef b;
  b.name = "b";
  b.fact_table = "pos";
  b.group_by = {"storeID"};
  b.aggregates = {rel::CountStar("n")};
  b.where = Expression::Gt(Expression::Column("qty"),
                           Expression::Literal(rel::Value::Int64(1)));
  EXPECT_FALSE(ComputeDerivation(c, Aug(c, b), Aug(c, a)).has_value());

  // Equal predicates are fine.
  ViewDef a2 = a;
  a2.where = b.where;
  EXPECT_TRUE(ComputeDerivation(c, Aug(c, b), Aug(c, a2)).has_value());
}

TEST(DerivesTest, RejectsUnavailableAggregateArgument) {
  // Child aggregates qty but the parent neither computes SUM(qty) nor
  // groups by qty.
  rel::Catalog c = TinyCatalog();
  ViewDef parent;
  parent.name = "p";
  parent.fact_table = "pos";
  parent.group_by = {"storeID", "itemID", "date"};
  parent.aggregates = {rel::CountStar("n")};

  ViewDef child;
  child.name = "ch";
  child.fact_table = "pos";
  child.group_by = {"storeID"};
  child.aggregates = {rel::Sum(Expression::Column("qty"), "total")};
  EXPECT_FALSE(ComputeDerivation(c, Aug(c, child), Aug(c, parent))
                   .has_value());
}

TEST(DerivesTest, SelfDerivationRejected) {
  rel::Catalog c = TinyCatalog();
  AugmentedView sid = Aug(c, Find(Retail(), "SID_sales"));
  EXPECT_FALSE(ComputeDerivation(c, sid, sid).has_value());
}

TEST(DerivesTest, QualifiedAndBareArgumentsMatch) {
  // One view writes SUM(qty), another SUM(pos.qty): they must unify.
  rel::Catalog c = TinyCatalog();
  ViewDef parent;
  parent.name = "p";
  parent.fact_table = "pos";
  parent.group_by = {"storeID", "itemID"};
  parent.aggregates = {rel::Sum(Expression::Column("pos.qty"), "total")};

  ViewDef child;
  child.name = "ch";
  child.fact_table = "pos";
  child.group_by = {"storeID"};
  child.aggregates = {rel::Sum(Expression::Column("qty"), "total")};

  auto recipe = ComputeDerivation(c, Aug(c, child), Aug(c, parent));
  ASSERT_TRUE(recipe.has_value());
}

}  // namespace
}  // namespace sdelta::lattice
