#include <gtest/gtest.h>

#include "core/maintenance.h"
#include "core/rematerialize.h"
#include "lattice/plan.h"
#include "lattice/vlattice.h"
#include "test_util.h"
#include "warehouse/retail_schema.h"
#include "warehouse/workload.h"

namespace sdelta::lattice {
namespace {

using core::ViewDef;
using sdelta::testing::ExpectBagEq;

rel::Catalog SmallRetail(uint64_t seed = 17) {
  warehouse::RetailConfig config;
  config.num_stores = 12;
  config.num_cities = 5;
  config.num_regions = 2;
  config.num_items = 60;
  config.num_categories = 6;
  config.num_dates = 25;
  config.num_pos_rows = 1500;
  config.seed = seed;
  return warehouse::MakeRetailCatalog(config);
}

VLattice RetailLattice(const rel::Catalog& c) {
  std::vector<ViewDef> friendly =
      MakeLatticeFriendly(c, warehouse::RetailSummaryTables());
  std::vector<core::AugmentedView> augmented;
  for (const ViewDef& v : friendly) {
    augmented.push_back(core::AugmentForSelfMaintenance(c, v));
  }
  return BuildVLattice(c, std::move(augmented));
}

/// Theorem 5.1, V-side: applying an edge recipe to the parent's
/// *materialized rows* must reproduce the child view exactly.
TEST(Theorem51Test, EdgeQueriesComputeChildViewsFromParentViews) {
  rel::Catalog c = SmallRetail();
  VLattice l = RetailLattice(c);
  std::vector<rel::Table> views;
  for (const core::AugmentedView& av : l.views) {
    views.push_back(core::EvaluateView(c, av.physical));
  }
  ASSERT_FALSE(l.edges.empty());
  for (const VLatticeEdge& e : l.edges) {
    SCOPED_TRACE(e.recipe.ToString());
    rel::Table derived = core::ApplyDerivation(c, e.recipe, views[e.parent]);
    ExpectBagEq(views[e.child], derived);
  }
}

/// Theorem 5.1, D-side: applying the SAME recipe to the parent's
/// summary-delta must reproduce the child's summary-delta. (The paper's
/// central theorem: the D-lattice is the V-lattice modulo renaming.)
TEST(Theorem51Test, EdgeQueriesComputeChildDeltasFromParentDeltas) {
  rel::Catalog c = SmallRetail();
  VLattice l = RetailLattice(c);
  const core::ChangeSet changes =
      warehouse::MakeUpdateGeneratingChanges(c, 300, 41);

  std::vector<rel::Table> direct_deltas;
  for (const core::AugmentedView& av : l.views) {
    direct_deltas.push_back(core::ComputeSummaryDelta(c, av, changes));
  }
  for (const VLatticeEdge& e : l.edges) {
    SCOPED_TRACE(e.recipe.ToString());
    rel::Table derived =
        core::ApplyDerivation(c, e.recipe, direct_deltas[e.parent]);
    ExpectBagEq(direct_deltas[e.child], derived);
  }
}

TEST(Theorem51Test, HoldsForInsertionGeneratingChanges) {
  rel::Catalog c = SmallRetail(23);
  VLattice l = RetailLattice(c);
  const core::ChangeSet changes =
      warehouse::MakeInsertionGeneratingChanges(c, 300, 42);
  std::vector<rel::Table> direct_deltas;
  for (const core::AugmentedView& av : l.views) {
    direct_deltas.push_back(core::ComputeSummaryDelta(c, av, changes));
  }
  for (const VLatticeEdge& e : l.edges) {
    SCOPED_TRACE(e.recipe.ToString());
    ExpectBagEq(direct_deltas[e.child],
                core::ApplyDerivation(c, e.recipe, direct_deltas[e.parent]));
  }
}

/// Full pipeline through the lattice: propagate via the plan, refresh,
/// and compare against recomputation.
TEST(LatticeMaintenanceTest, LatticeRefreshMatchesOracle) {
  rel::Catalog c = SmallRetail(29);
  VLattice l = RetailLattice(c);
  MaintenancePlan plan = ChoosePlan(c, l);

  std::vector<core::SummaryTable> summaries;
  for (const core::AugmentedView& av : l.views) {
    summaries.emplace_back(av, c);
    summaries.back().MaterializeFrom(c);
  }
  const core::ChangeSet changes =
      warehouse::MakeUpdateGeneratingChanges(c, 250, 43);
  LatticePropagateResult deltas = PropagateAll(c, l, plan, changes);
  core::ApplyChangeSet(c, changes);
  for (size_t i = 0; i < summaries.size(); ++i) {
    core::Refresh(c, summaries[i], deltas.deltas[i]);
  }
  for (size_t i = 0; i < summaries.size(); ++i) {
    SCOPED_TRACE(l.views[i].name());
    ExpectBagEq(core::EvaluateView(c, l.views[i].physical),
                summaries[i].ToTable());
  }
}

/// Rematerializing children from parents (the lattice-exploiting
/// rematerialization baseline of §6) matches evaluating from base data.
TEST(LatticeMaintenanceTest, RematerializeViaLatticeMatchesDirect) {
  rel::Catalog c = SmallRetail(31);
  VLattice l = RetailLattice(c);
  MaintenancePlan plan = ChoosePlan(c, l);

  std::vector<core::SummaryTable> summaries;
  for (const core::AugmentedView& av : l.views) {
    summaries.emplace_back(av, c);
  }
  for (const PlanStep& step : plan.steps) {
    if (step.edge.has_value()) {
      const VLatticeEdge& e = l.edges[*step.edge];
      core::RematerializeFromParent(c, e.recipe,
                                    summaries[e.parent].ToTable(),
                                    summaries[step.view]);
    } else {
      core::Rematerialize(c, summaries[step.view]);
    }
  }
  for (size_t i = 0; i < summaries.size(); ++i) {
    SCOPED_TRACE(l.views[i].name());
    ExpectBagEq(core::EvaluateView(c, l.views[i].physical),
                summaries[i].ToTable());
  }
}

}  // namespace
}  // namespace sdelta::lattice
