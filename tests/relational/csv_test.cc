#include "relational/csv.h"

#include <gtest/gtest.h>

#include "test_util.h"

namespace sdelta::rel {
namespace {

using sdelta::testing::ExpectBagEq;

Schema MixedSchema() {
  Schema s;
  s.AddColumn("id", ValueType::kInt64);
  s.AddColumn("name", ValueType::kString);
  s.AddColumn("price", ValueType::kDouble);
  return s;
}

TEST(CsvTest, WriteBasic) {
  Table t(MixedSchema(), "t");
  t.Insert({Value::Int64(1), Value::String("apple"), Value::Double(1.5)});
  t.Insert({Value::Int64(2), Value::String("pear"), Value::Double(2.0)});
  EXPECT_EQ(ToCsvString(t),
            "id,name,price\n1,apple,1.5\n2,pear,2\n");
}

TEST(CsvTest, NullIsEmptyUnquotedEmptyStringIsQuoted) {
  Table t(MixedSchema());
  t.Insert({Value::Null(), Value::String(""), Value::Null()});
  EXPECT_EQ(ToCsvString(t), "id,name,price\n,\"\",\n");
}

TEST(CsvTest, QuotingSpecialCharacters) {
  Table t(MixedSchema());
  t.Insert({Value::Int64(1), Value::String("a,b"), Value::Double(1)});
  t.Insert({Value::Int64(2), Value::String("say \"hi\""), Value::Double(2)});
  t.Insert({Value::Int64(3), Value::String("line1\nline2"), Value::Double(3)});
  const std::string csv = ToCsvString(t);
  EXPECT_NE(csv.find("\"a,b\""), std::string::npos);
  EXPECT_NE(csv.find("\"say \"\"hi\"\"\""), std::string::npos);
  EXPECT_NE(csv.find("\"line1\nline2\""), std::string::npos);
}

TEST(CsvTest, RoundTripPreservesBag) {
  Table t(MixedSchema(), "orig");
  t.Insert({Value::Int64(1), Value::String("plain"), Value::Double(0.25)});
  t.Insert({Value::Int64(-7), Value::String("a,b\"c\nd"), Value::Null()});
  t.Insert({Value::Null(), Value::String(""), Value::Double(-1e10)});
  Table back = FromCsvString(MixedSchema(), ToCsvString(t), "back");
  ExpectBagEq(t, back);
}

TEST(CsvTest, ReadBasic) {
  Table t = FromCsvString(MixedSchema(),
                          "id,name,price\n10,widget,9.99\n11,gadget,\n");
  ASSERT_EQ(t.NumRows(), 2u);
  EXPECT_EQ(t.RowAt(0)[0].as_int64(), 10);
  EXPECT_EQ(t.RowAt(0)[1].as_string(), "widget");
  EXPECT_DOUBLE_EQ(t.RowAt(0)[2].as_double(), 9.99);
  EXPECT_TRUE(t.RowAt(1)[2].is_null());
}

TEST(CsvTest, ReadCrLfAndTrailingBlankLines) {
  Table t = FromCsvString(MixedSchema(),
                          "id,name,price\r\n1,x,2.5\r\n\r\n");
  ASSERT_EQ(t.NumRows(), 1u);
  EXPECT_EQ(t.RowAt(0)[1].as_string(), "x");
}

TEST(CsvTest, HeaderMismatchThrows) {
  EXPECT_THROW(FromCsvString(MixedSchema(), "id,nom,price\n1,x,2\n"),
               std::invalid_argument);
  EXPECT_THROW(FromCsvString(MixedSchema(), "id,name\n"),
               std::invalid_argument);
  EXPECT_THROW(FromCsvString(MixedSchema(), ""), std::invalid_argument);
}

TEST(CsvTest, BadDataThrowsWithLineNumber) {
  try {
    FromCsvString(MixedSchema(), "id,name,price\n1,x,2.5\nnope,y,1\n");
    FAIL() << "expected throw";
  } catch (const std::invalid_argument& e) {
    EXPECT_NE(std::string(e.what()).find("line 3"), std::string::npos);
    EXPECT_NE(std::string(e.what()).find("int64"), std::string::npos);
  }
  EXPECT_THROW(FromCsvString(MixedSchema(), "id,name,price\n1,x\n"),
               std::invalid_argument);
  EXPECT_THROW(FromCsvString(MixedSchema(), "id,name,price\n1,x,abc\n"),
               std::invalid_argument);
}

TEST(CsvTest, QuotedFieldWithEmbeddedNewlineReads) {
  Table t = FromCsvString(MixedSchema(),
                          "id,name,price\n1,\"two\nlines\",3.5\n");
  ASSERT_EQ(t.NumRows(), 1u);
  EXPECT_EQ(t.RowAt(0)[1].as_string(), "two\nlines");
}

TEST(CsvTest, LastLineWithoutNewline) {
  Table t = FromCsvString(MixedSchema(), "id,name,price\n5,last,1.25");
  ASSERT_EQ(t.NumRows(), 1u);
  EXPECT_EQ(t.RowAt(0)[0].as_int64(), 5);
}

// ISSUE 5 satellite: exact (ordered, value-for-value) round-trips of
// string data a warehouse dimension could legally hold — commas,
// quotes in every position, embedded LF and CRLF, fields that look like
// numbers or like the CSV syntax itself, and NULL vs empty-string.
TEST(CsvTest, HardenedRoundTripPreservesAdversarialStringsExactly) {
  Schema s;
  s.AddColumn("k", ValueType::kInt64);
  s.AddColumn("v", ValueType::kString);
  const std::vector<std::string> nasty = {
      "plain",
      "comma,inside",
      ",leading",
      "trailing,",
      ",",
      "\"",
      "\"\"",
      "say \"hi\"",
      "\"quoted at both ends\"",
      "line1\nline2",
      "crlf\r\nline",
      "lone\rcarriage",
      "\n",
      "mix\",\nof,\"everything\r\n",
      "  padded  ",
      "123",
      "-4.5e3",
      "NULL",
      "a,b\"c\nd\"e,,\"\"f",
  };
  Table t(s, "nasty");
  for (size_t i = 0; i < nasty.size(); ++i) {
    t.Insert({Value::Int64(static_cast<int64_t>(i)), Value::String(nasty[i])});
  }
  // One NULL and one empty string — these must stay distinct.
  t.Insert({Value::Int64(100), Value::Null()});
  t.Insert({Value::Int64(101), Value::String("")});

  const Table back = FromCsvString(s, ToCsvString(t), "back");
  ASSERT_EQ(back.NumRows(), t.NumRows());
  for (size_t i = 0; i < nasty.size(); ++i) {
    SCOPED_TRACE("row " + std::to_string(i));
    EXPECT_EQ(back.RowAt(i)[0].as_int64(), static_cast<int64_t>(i));
    EXPECT_EQ(back.RowAt(i)[1].as_string(), nasty[i]);
  }
  EXPECT_TRUE(back.RowAt(nasty.size())[1].is_null());
  EXPECT_FALSE(back.RowAt(nasty.size() + 1)[1].is_null());
  EXPECT_EQ(back.RowAt(nasty.size() + 1)[1].as_string(), "");

  // A second trip is byte-stable: writing the parsed table reproduces
  // the same CSV text.
  EXPECT_EQ(ToCsvString(back), ToCsvString(t));
}

TEST(CsvTest, HardenedRoundTripSurvivesStreamingThroughAFile) {
  Schema s;
  s.AddColumn("name", ValueType::kString);
  s.AddColumn("note", ValueType::kString);
  Table t(s, "dim");
  t.Insert({Value::String("Acme, Inc."), Value::String("said \"ok\"\nthen left")});
  t.Insert({Value::String(""), Value::Null()});
  t.Insert({Value::String("O'Brien \"The\r\nQuote\","), Value::String(",")});

  std::stringstream file;
  WriteCsv(t, file);
  const Table back = ReadCsv(s, file, "back");
  ASSERT_EQ(back.NumRows(), 3u);
  EXPECT_EQ(back.RowAt(0)[0].as_string(), "Acme, Inc.");
  EXPECT_EQ(back.RowAt(0)[1].as_string(), "said \"ok\"\nthen left");
  EXPECT_EQ(back.RowAt(1)[0].as_string(), "");
  EXPECT_TRUE(back.RowAt(1)[1].is_null());
  EXPECT_EQ(back.RowAt(2)[0].as_string(), "O'Brien \"The\r\nQuote\",");
  EXPECT_EQ(back.RowAt(2)[1].as_string(), ",");
}

}  // namespace
}  // namespace sdelta::rel
