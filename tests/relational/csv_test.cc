#include "relational/csv.h"

#include <gtest/gtest.h>

#include "test_util.h"

namespace sdelta::rel {
namespace {

using sdelta::testing::ExpectBagEq;

Schema MixedSchema() {
  Schema s;
  s.AddColumn("id", ValueType::kInt64);
  s.AddColumn("name", ValueType::kString);
  s.AddColumn("price", ValueType::kDouble);
  return s;
}

TEST(CsvTest, WriteBasic) {
  Table t(MixedSchema(), "t");
  t.Insert({Value::Int64(1), Value::String("apple"), Value::Double(1.5)});
  t.Insert({Value::Int64(2), Value::String("pear"), Value::Double(2.0)});
  EXPECT_EQ(ToCsvString(t),
            "id,name,price\n1,apple,1.5\n2,pear,2\n");
}

TEST(CsvTest, NullIsEmptyUnquotedEmptyStringIsQuoted) {
  Table t(MixedSchema());
  t.Insert({Value::Null(), Value::String(""), Value::Null()});
  EXPECT_EQ(ToCsvString(t), "id,name,price\n,\"\",\n");
}

TEST(CsvTest, QuotingSpecialCharacters) {
  Table t(MixedSchema());
  t.Insert({Value::Int64(1), Value::String("a,b"), Value::Double(1)});
  t.Insert({Value::Int64(2), Value::String("say \"hi\""), Value::Double(2)});
  t.Insert({Value::Int64(3), Value::String("line1\nline2"), Value::Double(3)});
  const std::string csv = ToCsvString(t);
  EXPECT_NE(csv.find("\"a,b\""), std::string::npos);
  EXPECT_NE(csv.find("\"say \"\"hi\"\"\""), std::string::npos);
  EXPECT_NE(csv.find("\"line1\nline2\""), std::string::npos);
}

TEST(CsvTest, RoundTripPreservesBag) {
  Table t(MixedSchema(), "orig");
  t.Insert({Value::Int64(1), Value::String("plain"), Value::Double(0.25)});
  t.Insert({Value::Int64(-7), Value::String("a,b\"c\nd"), Value::Null()});
  t.Insert({Value::Null(), Value::String(""), Value::Double(-1e10)});
  Table back = FromCsvString(MixedSchema(), ToCsvString(t), "back");
  ExpectBagEq(t, back);
}

TEST(CsvTest, ReadBasic) {
  Table t = FromCsvString(MixedSchema(),
                          "id,name,price\n10,widget,9.99\n11,gadget,\n");
  ASSERT_EQ(t.NumRows(), 2u);
  EXPECT_EQ(t.row(0)[0].as_int64(), 10);
  EXPECT_EQ(t.row(0)[1].as_string(), "widget");
  EXPECT_DOUBLE_EQ(t.row(0)[2].as_double(), 9.99);
  EXPECT_TRUE(t.row(1)[2].is_null());
}

TEST(CsvTest, ReadCrLfAndTrailingBlankLines) {
  Table t = FromCsvString(MixedSchema(),
                          "id,name,price\r\n1,x,2.5\r\n\r\n");
  ASSERT_EQ(t.NumRows(), 1u);
  EXPECT_EQ(t.row(0)[1].as_string(), "x");
}

TEST(CsvTest, HeaderMismatchThrows) {
  EXPECT_THROW(FromCsvString(MixedSchema(), "id,nom,price\n1,x,2\n"),
               std::invalid_argument);
  EXPECT_THROW(FromCsvString(MixedSchema(), "id,name\n"),
               std::invalid_argument);
  EXPECT_THROW(FromCsvString(MixedSchema(), ""), std::invalid_argument);
}

TEST(CsvTest, BadDataThrowsWithLineNumber) {
  try {
    FromCsvString(MixedSchema(), "id,name,price\n1,x,2.5\nnope,y,1\n");
    FAIL() << "expected throw";
  } catch (const std::invalid_argument& e) {
    EXPECT_NE(std::string(e.what()).find("line 3"), std::string::npos);
    EXPECT_NE(std::string(e.what()).find("int64"), std::string::npos);
  }
  EXPECT_THROW(FromCsvString(MixedSchema(), "id,name,price\n1,x\n"),
               std::invalid_argument);
  EXPECT_THROW(FromCsvString(MixedSchema(), "id,name,price\n1,x,abc\n"),
               std::invalid_argument);
}

TEST(CsvTest, QuotedFieldWithEmbeddedNewlineReads) {
  Table t = FromCsvString(MixedSchema(),
                          "id,name,price\n1,\"two\nlines\",3.5\n");
  ASSERT_EQ(t.NumRows(), 1u);
  EXPECT_EQ(t.row(0)[1].as_string(), "two\nlines");
}

TEST(CsvTest, LastLineWithoutNewline) {
  Table t = FromCsvString(MixedSchema(), "id,name,price\n5,last,1.25");
  ASSERT_EQ(t.NumRows(), 1u);
  EXPECT_EQ(t.row(0)[0].as_int64(), 5);
}

}  // namespace
}  // namespace sdelta::rel
