// Tests for the per-column string dictionaries that back packed keys:
// codes must round-trip, stay stable across batches (propagate in batch
// k probes summary entries encoded in batch 1), and be shared per
// column through the catalog pool.
#include "relational/dictionary.h"

#include <gtest/gtest.h>

#include <cstdint>
#include <set>
#include <string>
#include <thread>
#include <vector>

namespace sdelta::rel {
namespace {

TEST(DictionaryTest, InternRoundTripsThroughValueOf) {
  Dictionary d;
  const uint32_t boston = d.Intern("Boston");
  const uint32_t seattle = d.Intern("Seattle");
  EXPECT_NE(boston, seattle);
  EXPECT_EQ(d.ValueOf(boston), "Boston");
  EXPECT_EQ(d.ValueOf(seattle), "Seattle");
  EXPECT_EQ(d.size(), 2u);
}

TEST(DictionaryTest, DuplicateInternReturnsSameCode) {
  Dictionary d;
  const uint32_t first = d.Intern("Boston");
  EXPECT_EQ(d.Intern("Boston"), first);
  EXPECT_EQ(d.Intern("Boston"), first);
  EXPECT_EQ(d.size(), 1u);
}

TEST(DictionaryTest, LookupNeverInterns) {
  Dictionary d;
  EXPECT_FALSE(d.Lookup("Boston").has_value());
  EXPECT_EQ(d.size(), 0u);
  const uint32_t code = d.Intern("Boston");
  ASSERT_TRUE(d.Lookup("Boston").has_value());
  EXPECT_EQ(*d.Lookup("Boston"), code);
  EXPECT_FALSE(d.Lookup("Seattle").has_value());
}

TEST(DictionaryTest, CodesAreDenseAndStableAcrossBatches) {
  // Simulates two batch windows interning overlapping key sets: codes
  // assigned in "batch 1" must be unchanged after "batch 2" interns a
  // superset, or summary-table probes would miss their own entries.
  Dictionary d;
  std::vector<uint32_t> batch1;
  for (int i = 0; i < 100; ++i) {
    batch1.push_back(d.Intern("store" + std::to_string(i)));
    EXPECT_EQ(batch1.back(), static_cast<uint32_t>(i));  // dense, in order
  }
  for (int i = 0; i < 200; ++i) d.Intern("store" + std::to_string(i));
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(d.Intern("store" + std::to_string(i)), batch1[i]);
  }
  EXPECT_EQ(d.size(), 200u);
}

TEST(DictionaryTest, ValueOfOutOfRangeThrows) {
  Dictionary d;
  d.Intern("only");
  EXPECT_THROW(d.ValueOf(1), std::out_of_range);
  EXPECT_THROW(d.ValueOf(Dictionary::kMaxCode), std::out_of_range);
}

TEST(DictionaryTest, EmptyStringIsAnOrdinaryKey) {
  Dictionary d;
  const uint32_t code = d.Intern("");
  EXPECT_EQ(d.ValueOf(code), "");
  EXPECT_EQ(d.Intern(""), code);
}

TEST(DictionaryTest, ConcurrentInternAgreesOnCodes) {
  // Parallel GroupBy morsels intern through a shared dictionary; every
  // thread must observe one code per distinct string, with the full code
  // range dense afterwards.
  Dictionary d;
  constexpr int kThreads = 8;
  constexpr int kStrings = 256;
  std::vector<std::vector<uint32_t>> codes(kThreads,
                                           std::vector<uint32_t>(kStrings));
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&d, &codes, t] {
      for (int i = 0; i < kStrings; ++i) {
        codes[t][i] = d.Intern("k" + std::to_string(i));
      }
    });
  }
  for (std::thread& t : threads) t.join();
  EXPECT_EQ(d.size(), static_cast<size_t>(kStrings));
  std::set<uint32_t> distinct;
  for (int i = 0; i < kStrings; ++i) {
    for (int t = 1; t < kThreads; ++t) EXPECT_EQ(codes[t][i], codes[0][i]);
    distinct.insert(codes[0][i]);
    EXPECT_EQ(d.ValueOf(codes[0][i]), "k" + std::to_string(i));
  }
  EXPECT_EQ(distinct.size(), static_cast<size_t>(kStrings));
}

TEST(DictionaryPoolTest, SameColumnSharesOneDictionary) {
  DictionaryPool pool;
  Dictionary& city1 = pool.ForColumn("city");
  Dictionary& city2 = pool.ForColumn("city");
  EXPECT_EQ(&city1, &city2);
  Dictionary& state = pool.ForColumn("state");
  EXPECT_NE(&city1, &state);
}

TEST(DictionaryPoolTest, EntriesReportPerColumnSizesSorted) {
  DictionaryPool pool;
  pool.ForColumn("city").Intern("Boston");
  pool.ForColumn("city").Intern("Seattle");
  pool.ForColumn("state").Intern("WA");
  const auto entries = pool.Entries();
  ASSERT_EQ(entries.size(), 2u);
  EXPECT_EQ(entries[0].first, "city");
  EXPECT_EQ(entries[0].second, 2u);
  EXPECT_EQ(entries[1].first, "state");
  EXPECT_EQ(entries[1].second, 1u);
  EXPECT_EQ(pool.TotalEntries(), 3u);
}

TEST(DictionaryArenaTest, ArenaAddressesAreStableAcrossAdds) {
  DictionaryArena arena;
  Dictionary& first = arena.Add();
  const uint32_t code = first.Intern("pinned");
  for (int i = 0; i < 64; ++i) arena.Add();
  EXPECT_EQ(first.ValueOf(code), "pinned");
  EXPECT_EQ(arena.size(), 65u);
}

}  // namespace
}  // namespace sdelta::rel
