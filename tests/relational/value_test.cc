#include "relational/value.h"

#include <gtest/gtest.h>

#include <stdexcept>

namespace sdelta::rel {
namespace {

TEST(ValueTest, DefaultIsNull) {
  Value v;
  EXPECT_TRUE(v.is_null());
  EXPECT_EQ(v.type(), ValueType::kNull);
  EXPECT_EQ(v.ToString(), "NULL");
}

TEST(ValueTest, FactoriesAndAccessors) {
  EXPECT_EQ(Value::Int64(42).as_int64(), 42);
  EXPECT_DOUBLE_EQ(Value::Double(3.5).as_double(), 3.5);
  EXPECT_EQ(Value::String("abc").as_string(), "abc");
  EXPECT_FALSE(Value::Int64(0).is_null());
}

TEST(ValueTest, DateOrdersLikeCalendar) {
  EXPECT_LT(Value::Compare(Value::Date(1996, 12, 31), Value::Date(1997, 1, 1)),
            0);
  EXPECT_LT(Value::Compare(Value::Date(1997, 1, 31), Value::Date(1997, 2, 1)),
            0);
  EXPECT_EQ(Value::Compare(Value::Date(1997, 5, 5), Value::Date(1997, 5, 5)),
            0);
}

TEST(ValueTest, AddIntInt) {
  Value r = Value::Add(Value::Int64(2), Value::Int64(3));
  EXPECT_EQ(r.type(), ValueType::kInt64);
  EXPECT_EQ(r.as_int64(), 5);
}

TEST(ValueTest, AddWidensToDouble) {
  Value r = Value::Add(Value::Int64(2), Value::Double(0.5));
  EXPECT_EQ(r.type(), ValueType::kDouble);
  EXPECT_DOUBLE_EQ(r.as_double(), 2.5);
}

TEST(ValueTest, ArithmeticPropagatesNull) {
  EXPECT_TRUE(Value::Add(Value::Null(), Value::Int64(1)).is_null());
  EXPECT_TRUE(Value::Subtract(Value::Int64(1), Value::Null()).is_null());
  EXPECT_TRUE(Value::Multiply(Value::Null(), Value::Null()).is_null());
  EXPECT_TRUE(Value::Negate(Value::Null()).is_null());
  EXPECT_TRUE(Value::Divide(Value::Null(), Value::Int64(2)).is_null());
}

TEST(ValueTest, ArithmeticOnStringsThrows) {
  EXPECT_THROW(Value::Add(Value::String("a"), Value::Int64(1)),
               std::invalid_argument);
  EXPECT_THROW(Value::Negate(Value::String("a")), std::invalid_argument);
}

TEST(ValueTest, SubtractMultiply) {
  EXPECT_EQ(Value::Subtract(Value::Int64(5), Value::Int64(7)).as_int64(), -2);
  EXPECT_EQ(Value::Multiply(Value::Int64(4), Value::Int64(6)).as_int64(), 24);
  EXPECT_DOUBLE_EQ(
      Value::Multiply(Value::Double(1.5), Value::Int64(4)).as_double(), 6.0);
}

TEST(ValueTest, DivideAlwaysDouble) {
  Value r = Value::Divide(Value::Int64(7), Value::Int64(2));
  EXPECT_EQ(r.type(), ValueType::kDouble);
  EXPECT_DOUBLE_EQ(r.as_double(), 3.5);
}

TEST(ValueTest, DivideByZeroIsNull) {
  EXPECT_TRUE(Value::Divide(Value::Int64(1), Value::Int64(0)).is_null());
  EXPECT_TRUE(Value::Divide(Value::Double(1.0), Value::Double(0.0)).is_null());
}

TEST(ValueTest, NegateKeepsType) {
  EXPECT_EQ(Value::Negate(Value::Int64(3)).as_int64(), -3);
  EXPECT_DOUBLE_EQ(Value::Negate(Value::Double(2.5)).as_double(), -2.5);
}

TEST(ValueTest, CompareNumeric) {
  EXPECT_LT(Value::Compare(Value::Int64(1), Value::Int64(2)), 0);
  EXPECT_GT(Value::Compare(Value::Int64(2), Value::Int64(1)), 0);
  EXPECT_EQ(Value::Compare(Value::Int64(2), Value::Int64(2)), 0);
  EXPECT_LT(Value::Compare(Value::Int64(1), Value::Double(1.5)), 0);
  EXPECT_EQ(Value::Compare(Value::Int64(2), Value::Double(2.0)), 0);
}

TEST(ValueTest, CompareStrings) {
  EXPECT_LT(Value::Compare(Value::String("abc"), Value::String("abd")), 0);
  EXPECT_EQ(Value::Compare(Value::String("x"), Value::String("x")), 0);
}

TEST(ValueTest, NullSortsFirst) {
  EXPECT_LT(Value::Compare(Value::Null(), Value::Int64(-100)), 0);
  EXPECT_GT(Value::Compare(Value::String(""), Value::Null()), 0);
  EXPECT_EQ(Value::Compare(Value::Null(), Value::Null()), 0);
}

TEST(ValueTest, CompareStringNumericThrows) {
  EXPECT_THROW(Value::Compare(Value::String("1"), Value::Int64(1)),
               std::invalid_argument);
}

TEST(ValueTest, EqualityStructural) {
  EXPECT_TRUE(Value::Int64(5) == Value::Int64(5));
  EXPECT_FALSE(Value::Int64(5) == Value::Int64(6));
  EXPECT_TRUE(Value::Null() == Value::Null());
  EXPECT_FALSE(Value::Null() == Value::Int64(0));
  EXPECT_TRUE(Value::String("a") == Value::String("a"));
  EXPECT_FALSE(Value::String("a") == Value::Int64(1));
}

TEST(ValueTest, NumericCrossTypeEquality) {
  EXPECT_TRUE(Value::Int64(2) == Value::Double(2.0));
  EXPECT_FALSE(Value::Int64(2) == Value::Double(2.5));
}

TEST(ValueTest, HashConsistentWithEquality) {
  EXPECT_EQ(Value::Int64(7).Hash(), Value::Int64(7).Hash());
  EXPECT_EQ(Value::String("xyz").Hash(), Value::String("xyz").Hash());
  // Cross-type numeric equality implies equal hashes.
  EXPECT_EQ(Value::Int64(7).Hash(), Value::Double(7.0).Hash());
}

TEST(ValueTest, RowToString) {
  Row r = {Value::Int64(1), Value::Null(), Value::String("a")};
  EXPECT_EQ(RowToString(r), "(1, NULL, a)");
}

}  // namespace
}  // namespace sdelta::rel
