#include "relational/catalog.h"

#include <gtest/gtest.h>

#include "warehouse/retail_schema.h"

namespace sdelta::rel {
namespace {

Catalog Retail() {
  warehouse::RetailConfig config;
  config.num_pos_rows = 100;
  return warehouse::MakeRetailCatalog(config);
}

TEST(CatalogTest, TablesPresent) {
  Catalog c = Retail();
  EXPECT_TRUE(c.HasTable("pos"));
  EXPECT_TRUE(c.HasTable("stores"));
  EXPECT_TRUE(c.HasTable("items"));
  EXPECT_FALSE(c.HasTable("nope"));
  EXPECT_THROW(c.GetTable("nope"), std::invalid_argument);
}

TEST(CatalogTest, DuplicateTableThrows) {
  Catalog c = Retail();
  Schema s;
  s.AddColumn("x", ValueType::kInt64);
  EXPECT_THROW(c.AddTable(Table(s, "pos")), std::invalid_argument);
  EXPECT_THROW(c.AddTable(Table(s, "")), std::invalid_argument);
}

TEST(CatalogTest, ForeignKeyLookup) {
  Catalog c = Retail();
  const ForeignKey* fk = c.FindForeignKey("pos", "storeID");
  ASSERT_NE(fk, nullptr);
  EXPECT_EQ(fk->dim_table, "stores");
  EXPECT_EQ(fk->dim_column, "storeID");
  EXPECT_EQ(c.FindForeignKey("pos", "qty"), nullptr);
  EXPECT_EQ(c.ForeignKeysOf("pos").size(), 2u);
}

TEST(CatalogTest, DeclareForeignKeyValidatesColumns) {
  Catalog c = Retail();
  EXPECT_THROW(c.DeclareForeignKey("pos", "missing", "stores", "storeID"),
               std::invalid_argument);
  EXPECT_THROW(c.DeclareForeignKey("pos", "storeID", "stores", "missing"),
               std::invalid_argument);
}

TEST(CatalogTest, FunctionalDependencies) {
  Catalog c = Retail();
  EXPECT_EQ(c.DependenciesOf("stores").size(), 2u);
  EXPECT_EQ(c.DependenciesOf("items").size(), 1u);
  EXPECT_THROW(c.DeclareFunctionalDependency("stores", "city", "missing"),
               std::invalid_argument);
}

TEST(CatalogTest, FdClosureTransitive) {
  Catalog c = Retail();
  const std::vector<std::string> from_store = c.FdClosure("stores", "storeID");
  ASSERT_EQ(from_store.size(), 2u);
  EXPECT_EQ(from_store[0], "city");
  EXPECT_EQ(from_store[1], "region");
  const std::vector<std::string> from_city = c.FdClosure("stores", "city");
  ASSERT_EQ(from_city.size(), 1u);
  EXPECT_EQ(from_city[0], "region");
  EXPECT_TRUE(c.FdClosure("stores", "region").empty());
  EXPECT_TRUE(c.FdClosure("items", "category").empty());
}

}  // namespace
}  // namespace sdelta::rel
