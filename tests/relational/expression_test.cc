#include "relational/expression.h"

#include <gtest/gtest.h>

#include <stdexcept>

namespace sdelta::rel {
namespace {

using E = Expression;

Schema PosSchema() {
  Schema s;
  s.AddColumn("qty", ValueType::kInt64);
  s.AddColumn("price", ValueType::kDouble);
  s.AddColumn("note", ValueType::kString);
  return s;
}

Row SampleRow() {
  return {Value::Int64(4), Value::Double(2.5), Value::String("hi")};
}

TEST(ExpressionTest, ColumnAndLiteral) {
  const Schema s = PosSchema();
  EXPECT_EQ(E::Column("qty").Bind(s).Eval(SampleRow()).as_int64(), 4);
  EXPECT_EQ(E::Literal(Value::Int64(7)).Bind(s).Eval(SampleRow()).as_int64(),
            7);
}

TEST(ExpressionTest, Arithmetic) {
  const Schema s = PosSchema();
  Row r = SampleRow();
  EXPECT_EQ(E::Add(E::Column("qty"), E::Literal(Value::Int64(1)))
                .Bind(s).Eval(r).as_int64(),
            5);
  EXPECT_DOUBLE_EQ(E::Multiply(E::Column("qty"), E::Column("price"))
                       .Bind(s).Eval(r).as_double(),
                   10.0);
  EXPECT_EQ(E::Negate(E::Column("qty")).Bind(s).Eval(r).as_int64(), -4);
  EXPECT_DOUBLE_EQ(E::Divide(E::Column("qty"), E::Literal(Value::Int64(2)))
                       .Bind(s).Eval(r).as_double(),
                   2.0);
  EXPECT_EQ(E::Subtract(E::Column("qty"), E::Literal(Value::Int64(6)))
                .Bind(s).Eval(r).as_int64(),
            -2);
}

TEST(ExpressionTest, ComparisonsYieldIntOrNull) {
  const Schema s = PosSchema();
  Row r = SampleRow();
  EXPECT_EQ(E::Lt(E::Column("qty"), E::Literal(Value::Int64(5)))
                .Bind(s).Eval(r).as_int64(),
            1);
  EXPECT_EQ(E::Ge(E::Column("qty"), E::Literal(Value::Int64(5)))
                .Bind(s).Eval(r).as_int64(),
            0);
  EXPECT_EQ(E::Eq(E::Column("note"), E::Literal(Value::String("hi")))
                .Bind(s).Eval(r).as_int64(),
            1);
  EXPECT_EQ(E::Ne(E::Column("qty"), E::Literal(Value::Int64(4)))
                .Bind(s).Eval(r).as_int64(),
            0);
  EXPECT_TRUE(E::Eq(E::Column("qty"), E::Literal(Value::Null()))
                  .Bind(s).Eval(r).is_null());
}

TEST(ExpressionTest, ThreeValuedLogic) {
  const Schema s = PosSchema();
  Row r = SampleRow();
  auto T = E::Literal(Value::Int64(1));
  auto F = E::Literal(Value::Int64(0));
  auto N = E::Literal(Value::Null());
  EXPECT_EQ(E::And(T, F).Bind(s).Eval(r).as_int64(), 0);
  EXPECT_EQ(E::And(N, F).Bind(s).Eval(r).as_int64(), 0);  // NULL AND FALSE
  EXPECT_TRUE(E::And(N, T).Bind(s).Eval(r).is_null());
  EXPECT_EQ(E::Or(N, T).Bind(s).Eval(r).as_int64(), 1);  // NULL OR TRUE
  EXPECT_TRUE(E::Or(N, F).Bind(s).Eval(r).is_null());
  EXPECT_EQ(E::Not(F).Bind(s).Eval(r).as_int64(), 1);
  EXPECT_TRUE(E::Not(N).Bind(s).Eval(r).is_null());
}

TEST(ExpressionTest, IsNullNeverNull) {
  const Schema s = PosSchema();
  Row r = SampleRow();
  EXPECT_EQ(E::IsNull(E::Literal(Value::Null())).Bind(s).Eval(r).as_int64(),
            1);
  EXPECT_EQ(E::IsNull(E::Column("qty")).Bind(s).Eval(r).as_int64(), 0);
}

TEST(ExpressionTest, CaseIsNullMatchesTable1Semantics) {
  const Schema s = PosSchema();
  Row r = SampleRow();
  // CASE WHEN expr IS NULL THEN 0 ELSE -1 END (prepare-deletions COUNT(e))
  auto src = E::CaseIsNull(E::Column("qty"), E::Literal(Value::Int64(0)),
                           E::Literal(Value::Int64(-1)));
  EXPECT_EQ(src.Bind(s).Eval(r).as_int64(), -1);
  Row null_qty = {Value::Null(), Value::Double(1.0), Value::String("")};
  EXPECT_EQ(src.Bind(s).Eval(null_qty).as_int64(), 0);
}

TEST(ExpressionTest, EvalPredicateTruthiness) {
  const Schema s = PosSchema();
  Row r = SampleRow();
  EXPECT_TRUE(E::Gt(E::Column("qty"), E::Literal(Value::Int64(0)))
                  .Bind(s).EvalPredicate(r));
  EXPECT_FALSE(E::Literal(Value::Null()).Bind(s).EvalPredicate(r));
  EXPECT_FALSE(E::Literal(Value::Int64(0)).Bind(s).EvalPredicate(r));
}

TEST(ExpressionTest, BindUnknownColumnThrows) {
  EXPECT_THROW(E::Column("missing").Bind(PosSchema()),
               std::invalid_argument);
}

TEST(ExpressionTest, ReferencedColumnsDistinctInOrder) {
  auto e = E::Add(E::Multiply(E::Column("qty"), E::Column("price")),
                  E::Column("qty"));
  const std::vector<std::string> cols = e.ReferencedColumns();
  ASSERT_EQ(cols.size(), 2u);
  EXPECT_EQ(cols[0], "qty");
  EXPECT_EQ(cols[1], "price");
}

TEST(ExpressionTest, RenameColumns) {
  auto e = E::Multiply(E::Column("qty"), E::Column("price"));
  auto renamed = e.RenameColumns(
      [](const std::string& n) { return "pos." + n; });
  const std::vector<std::string> cols = renamed.ReferencedColumns();
  EXPECT_EQ(cols[0], "pos.qty");
  EXPECT_EQ(cols[1], "pos.price");
}

TEST(ExpressionTest, StructuralEquality) {
  auto a = E::Multiply(E::Column("qty"), E::Literal(Value::Int64(2)));
  auto b = E::Multiply(E::Column("qty"), E::Literal(Value::Int64(2)));
  auto c = E::Multiply(E::Column("qty"), E::Literal(Value::Int64(3)));
  EXPECT_TRUE(a == b);
  EXPECT_FALSE(a == c);
  EXPECT_FALSE(E::Column("qty") == E::Column("price"));
}

TEST(ExpressionTest, ResultTypes) {
  const Schema s = PosSchema();
  EXPECT_EQ(E::Column("qty").ResultType(s), ValueType::kInt64);
  EXPECT_EQ(E::Multiply(E::Column("qty"), E::Column("price")).ResultType(s),
            ValueType::kDouble);
  EXPECT_EQ(E::Divide(E::Column("qty"), E::Column("qty")).ResultType(s),
            ValueType::kDouble);
  EXPECT_EQ(E::Lt(E::Column("qty"), E::Column("qty")).ResultType(s),
            ValueType::kInt64);
}

TEST(ExpressionTest, ToStringReadable) {
  auto e = E::Multiply(E::Column("qty"), E::Column("price"));
  EXPECT_EQ(e.ToString(), "(qty * price)");
}

}  // namespace
}  // namespace sdelta::rel
