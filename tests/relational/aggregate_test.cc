#include "relational/aggregate.h"

#include <gtest/gtest.h>

namespace sdelta::rel {
namespace {

TEST(AccumulatorTest, CountStarCountsEverything) {
  Accumulator acc(AggregateKind::kCountStar);
  acc.Add(Value::Int64(1));
  acc.Add(Value::Null());
  acc.Add(Value::String("x"));
  EXPECT_EQ(acc.Result().as_int64(), 3);
}

TEST(AccumulatorTest, CountSkipsNulls) {
  Accumulator acc(AggregateKind::kCount);
  acc.Add(Value::Int64(1));
  acc.Add(Value::Null());
  acc.Add(Value::Int64(2));
  EXPECT_EQ(acc.Result().as_int64(), 2);
}

TEST(AccumulatorTest, CountOfNothingIsZero) {
  EXPECT_EQ(Accumulator(AggregateKind::kCount).Result().as_int64(), 0);
  EXPECT_EQ(Accumulator(AggregateKind::kCountStar).Result().as_int64(), 0);
}

TEST(AccumulatorTest, SumIntStaysInt) {
  Accumulator acc(AggregateKind::kSum);
  acc.Add(Value::Int64(3));
  acc.Add(Value::Int64(-5));
  Value r = acc.Result();
  EXPECT_EQ(r.type(), ValueType::kInt64);
  EXPECT_EQ(r.as_int64(), -2);
}

TEST(AccumulatorTest, SumWidensOnDouble) {
  Accumulator acc(AggregateKind::kSum);
  acc.Add(Value::Int64(3));
  acc.Add(Value::Double(0.5));
  Value r = acc.Result();
  EXPECT_EQ(r.type(), ValueType::kDouble);
  EXPECT_DOUBLE_EQ(r.as_double(), 3.5);
}

TEST(AccumulatorTest, SumOfEmptyOrAllNullIsNull) {
  Accumulator acc(AggregateKind::kSum);
  EXPECT_TRUE(acc.Result().is_null());
  acc.Add(Value::Null());
  EXPECT_TRUE(acc.Result().is_null());
}

TEST(AccumulatorTest, MinMaxSkipNulls) {
  Accumulator mn(AggregateKind::kMin);
  Accumulator mx(AggregateKind::kMax);
  for (int v : {5, 2, 9}) {
    mn.Add(Value::Int64(v));
    mx.Add(Value::Int64(v));
  }
  mn.Add(Value::Null());
  mx.Add(Value::Null());
  EXPECT_EQ(mn.Result().as_int64(), 2);
  EXPECT_EQ(mx.Result().as_int64(), 9);
}

TEST(AccumulatorTest, MinMaxOfNothingIsNull) {
  EXPECT_TRUE(Accumulator(AggregateKind::kMin).Result().is_null());
  EXPECT_TRUE(Accumulator(AggregateKind::kMax).Result().is_null());
}

TEST(AccumulatorTest, MinMaxOnStrings) {
  Accumulator mn(AggregateKind::kMin);
  mn.Add(Value::String("pear"));
  mn.Add(Value::String("apple"));
  EXPECT_EQ(mn.Result().as_string(), "apple");
}

TEST(AccumulatorTest, AvgIsSumOverCount) {
  Accumulator acc(AggregateKind::kAvg);
  acc.Add(Value::Int64(1));
  acc.Add(Value::Int64(2));
  acc.Add(Value::Null());  // skipped
  acc.Add(Value::Int64(6));
  EXPECT_DOUBLE_EQ(acc.Result().as_double(), 3.0);
}

TEST(AccumulatorTest, AvgOfNothingIsNull) {
  EXPECT_TRUE(Accumulator(AggregateKind::kAvg).Result().is_null());
}

TEST(AggregateSpecTest, Constructors) {
  AggregateSpec s = Sum(Expression::Column("qty"), "total");
  EXPECT_EQ(s.kind, AggregateKind::kSum);
  EXPECT_EQ(s.output_name, "total");
  EXPECT_TRUE(s.argument.has_value());
  EXPECT_EQ(CountStar("n").kind, AggregateKind::kCountStar);
  EXPECT_FALSE(CountStar("n").argument.has_value());
  EXPECT_EQ(Min(Expression::Column("d"), "m").ToString(), "MIN(d) AS m");
  EXPECT_EQ(CountStar("n").ToString(), "COUNT(*) AS n");
}

TEST(AggregateSpecTest, ResultTypes) {
  EXPECT_EQ(AggregateResultType(AggregateKind::kCountStar, ValueType::kNull),
            ValueType::kInt64);
  EXPECT_EQ(AggregateResultType(AggregateKind::kSum, ValueType::kDouble),
            ValueType::kDouble);
  EXPECT_EQ(AggregateResultType(AggregateKind::kMin, ValueType::kString),
            ValueType::kString);
  EXPECT_EQ(AggregateResultType(AggregateKind::kAvg, ValueType::kInt64),
            ValueType::kDouble);
}

}  // namespace
}  // namespace sdelta::rel
