// Serial-vs-parallel equivalence for each morsel-driven operator: on a
// randomized table large enough to split into many morsels, the pooled
// path must produce CSV-byte-identical output to the serial path (same
// rows, same order). Fixed seed; integer data only, so GroupBy merges
// are exact.
#include <gtest/gtest.h>

#include <random>
#include <string>

#include "exec/thread_pool.h"
#include "relational/csv.h"
#include "relational/operators.h"

namespace sdelta::rel {
namespace {

using E = Expression;

constexpr size_t kRows = 20000;

Table MakeBigSales(uint64_t seed) {
  Schema s;
  s.AddColumn("store", ValueType::kInt64);
  s.AddColumn("item", ValueType::kInt64);
  s.AddColumn("qty", ValueType::kInt64);
  s.AddColumn("date", ValueType::kInt64);
  Table t(s, "sales");
  std::mt19937_64 rng(seed);
  std::uniform_int_distribution<int64_t> store(1, 40);
  std::uniform_int_distribution<int64_t> item(1, 500);
  std::uniform_int_distribution<int64_t> qty(-5, 20);
  std::uniform_int_distribution<int64_t> date(1, 90);
  t.Reserve(kRows);
  for (size_t i = 0; i < kRows; ++i) {
    // Sprinkle in NULL items so join/aggregate null paths are exercised.
    Value item_v = (i % 97 == 0) ? Value::Null() : Value::Int64(item(rng));
    t.Insert({Value::Int64(store(rng)), std::move(item_v),
              Value::Int64(qty(rng)), Value::Int64(date(rng))});
  }
  return t;
}

Table MakeItemsDim() {
  Schema s;
  s.AddColumn("item", ValueType::kInt64);
  s.AddColumn("cat", ValueType::kInt64);
  Table t(s, "items");
  for (int64_t i = 1; i <= 500; ++i) {
    t.Insert({Value::Int64(i), Value::Int64(i % 13)});
  }
  return t;
}

class ParallelOperatorsTest : public ::testing::Test {
 protected:
  exec::ThreadPool pool_{3};  // 4 execution contexts with the caller
  Table sales_ = MakeBigSales(20240605);
  Table items_ = MakeItemsDim();
};

TEST_F(ParallelOperatorsTest, SelectMatchesSerial) {
  const Expression pred =
      E::Gt(E::Column("qty"), E::Literal(Value::Int64(4)));
  const Table serial = Select(sales_, pred);
  const Table parallel = Select(sales_, pred, &pool_);
  EXPECT_GT(serial.NumRows(), 0u);
  EXPECT_LT(serial.NumRows(), sales_.NumRows());
  EXPECT_EQ(ToCsvString(serial), ToCsvString(parallel));
}

TEST_F(ParallelOperatorsTest, ProjectMatchesSerial) {
  const std::vector<ProjectColumn> cols = {
      {"store", E::Column("store")},
      {"revenue", E::Multiply(E::Column("qty"), E::Column("date"))}};
  const Table serial = Project(sales_, cols);
  const Table parallel = Project(sales_, cols, &pool_);
  EXPECT_EQ(serial.NumRows(), sales_.NumRows());
  EXPECT_EQ(ToCsvString(serial), ToCsvString(parallel));
}

TEST_F(ParallelOperatorsTest, HashJoinMatchesSerial) {
  const std::vector<std::pair<std::string, std::string>> keys = {
      {"item", "item"}};
  const Table serial =
      HashJoin(sales_, items_, keys, "items", /*drop_right_keys=*/true);
  const Table parallel = HashJoin(sales_, items_, keys, "items",
                                  /*drop_right_keys=*/true, &pool_);
  EXPECT_GT(serial.NumRows(), 0u);
  EXPECT_EQ(ToCsvString(serial), ToCsvString(parallel));
}

TEST_F(ParallelOperatorsTest, GroupByMatchesSerialIncludingGroupOrder) {
  const std::vector<AggregateSpec> aggs = {
      CountStar("n"), Sum(E::Column("qty"), "total_qty"),
      Min(E::Column("date"), "first_date"), Max(E::Column("date"), "last_date"),
      Count(E::Column("item"), "items_non_null")};
  const Table serial = GroupBy(sales_, GroupCols({"store", "item"}), aggs);
  const Table parallel =
      GroupBy(sales_, GroupCols({"store", "item"}), aggs, &pool_);
  EXPECT_GT(serial.NumRows(), 1u);
  // CSV equality covers values AND first-appearance row order.
  EXPECT_EQ(ToCsvString(serial), ToCsvString(parallel));
}

TEST_F(ParallelOperatorsTest, ScalarGroupByMatchesSerial) {
  const std::vector<AggregateSpec> aggs = {CountStar("n"),
                                           Sum(E::Column("qty"), "total")};
  const Table serial = GroupBy(sales_, {}, aggs);
  const Table parallel = GroupBy(sales_, {}, aggs, &pool_);
  ASSERT_EQ(serial.NumRows(), 1u);
  EXPECT_EQ(ToCsvString(serial), ToCsvString(parallel));
}

TEST_F(ParallelOperatorsTest, EmptyInputMatchesSerial) {
  Table empty(sales_.schema(), "empty");
  const Expression pred = E::Gt(E::Column("qty"), E::Literal(Value::Int64(0)));
  EXPECT_EQ(ToCsvString(Select(empty, pred)),
            ToCsvString(Select(empty, pred, &pool_)));
  EXPECT_EQ(ToCsvString(GroupBy(empty, GroupCols({"store"}), {CountStar("n")})),
            ToCsvString(GroupBy(empty, GroupCols({"store"}), {CountStar("n")},
                                &pool_)));
}

TEST_F(ParallelOperatorsTest, RepeatedRunsAreStable) {
  // Flakiness guard: run the pooled GroupBy several times; scheduling
  // varies, output must not.
  const std::vector<AggregateSpec> aggs = {CountStar("n"),
                                           Sum(E::Column("qty"), "total")};
  const std::string expected =
      ToCsvString(GroupBy(sales_, GroupCols({"item"}), aggs));
  for (int run = 0; run < 5; ++run) {
    EXPECT_EQ(expected,
              ToCsvString(GroupBy(sales_, GroupCols({"item"}), aggs, &pool_)));
  }
}

}  // namespace
}  // namespace sdelta::rel
