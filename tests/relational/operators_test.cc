#include "relational/operators.h"

#include <gtest/gtest.h>

#include "relational/packed_key.h"
#include "test_util.h"

namespace sdelta::rel {
namespace {

using E = Expression;
using sdelta::testing::ExpectBagEq;

Table MakeSales() {
  Schema s;
  s.AddColumn("store", ValueType::kInt64);
  s.AddColumn("item", ValueType::kInt64);
  s.AddColumn("qty", ValueType::kInt64);
  Table t(s, "sales");
  t.Insert({Value::Int64(1), Value::Int64(10), Value::Int64(3)});
  t.Insert({Value::Int64(1), Value::Int64(11), Value::Int64(2)});
  t.Insert({Value::Int64(2), Value::Int64(10), Value::Int64(7)});
  t.Insert({Value::Int64(2), Value::Int64(10), Value::Int64(1)});
  return t;
}

Table MakeItems() {
  Schema s;
  s.AddColumn("item", ValueType::kInt64);
  s.AddColumn("cat", ValueType::kString);
  Table t(s, "items");
  t.Insert({Value::Int64(10), Value::String("food")});
  t.Insert({Value::Int64(11), Value::String("toys")});
  return t;
}

TEST(OperatorsTest, SelectFiltersByPredicate) {
  Table out = Select(MakeSales(),
                     E::Ge(E::Column("qty"), E::Literal(Value::Int64(3))));
  EXPECT_EQ(out.NumRows(), 2u);
}

TEST(OperatorsTest, SelectNullPredicateExcludes) {
  Table t = MakeSales();
  Table out = Select(t, E::Eq(E::Column("qty"), E::Literal(Value::Null())));
  EXPECT_EQ(out.NumRows(), 0u);
}

TEST(OperatorsTest, ProjectComputesExpressions) {
  Table out = Project(MakeSales(),
                      {{"store", E::Column("store")},
                       {"double_qty", E::Multiply(E::Column("qty"),
                                                  E::Literal(Value::Int64(2)))}});
  EXPECT_EQ(out.schema().column(1).name, "double_qty");
  EXPECT_EQ(out.RowAt(0)[1].as_int64(), 6);
  EXPECT_EQ(out.NumRows(), 4u);
}

TEST(OperatorsTest, HashJoinBasic) {
  Table out = HashJoin(MakeSales(), MakeItems(), {{"item", "item"}}, "items");
  EXPECT_EQ(out.NumRows(), 4u);
  // Output: sales columns + qualified items columns.
  EXPECT_TRUE(out.schema().IndexOf("items.cat").has_value());
  EXPECT_TRUE(out.schema().IndexOf("items.item").has_value());
}

TEST(OperatorsTest, HashJoinDropRightKeys) {
  Table out = HashJoin(MakeSales(), MakeItems(), {{"item", "item"}}, "items",
                       /*drop_right_keys=*/true);
  EXPECT_FALSE(out.schema().IndexOf("items.item").has_value());
  EXPECT_TRUE(out.schema().IndexOf("items.cat").has_value());
  EXPECT_EQ(out.NumRows(), 4u);
}

TEST(OperatorsTest, HashJoinNullKeysNeverMatch) {
  Table sales = MakeSales();
  sales.Insert({Value::Int64(3), Value::Null(), Value::Int64(5)});
  Table out = HashJoin(sales, MakeItems(), {{"item", "item"}}, "items");
  EXPECT_EQ(out.NumRows(), 4u);  // the null-item row drops out
}

TEST(OperatorsTest, HashJoinUnmatchedLeftDropped) {
  Table sales = MakeSales();
  sales.Insert({Value::Int64(3), Value::Int64(99), Value::Int64(5)});
  Table out = HashJoin(sales, MakeItems(), {{"item", "item"}}, "items");
  EXPECT_EQ(out.NumRows(), 4u);
}

TEST(OperatorsTest, HashJoinEmptyKeysThrows) {
  EXPECT_THROW(HashJoin(MakeSales(), MakeItems(), {}, "items"),
               std::invalid_argument);
}

TEST(OperatorsTest, UnionAll) {
  Table a = MakeSales();
  Table b = MakeSales();
  Table u = UnionAll(a, b);
  EXPECT_EQ(u.NumRows(), 8u);
}

TEST(OperatorsTest, UnionAllArityMismatchThrows) {
  EXPECT_THROW(UnionAll(MakeSales(), MakeItems()), std::invalid_argument);
}

TEST(OperatorsTest, UnionAllMoveOverloadMatchesCopyAndDrainsInputs) {
  Table expected = UnionAll(MakeSales(), MakeSales());
  Table a = MakeSales();
  Table b = MakeSales();
  Table u = UnionAll(std::move(a), std::move(b));
  ExpectBagEq(expected, u);
  EXPECT_EQ(u.RowAt(0), MakeSales().RowAt(0));  // a's rows first, in order
  EXPECT_EQ(a.NumRows(), 0u);  // NOLINT(bugprone-use-after-move): drained
  EXPECT_EQ(b.NumRows(), 0u);  // NOLINT(bugprone-use-after-move)
}

TEST(OperatorsTest, UnionAllMoveOverloadArityMismatchThrows) {
  Table a = MakeSales();
  Table b = MakeItems();
  EXPECT_THROW(UnionAll(std::move(a), std::move(b)), std::invalid_argument);
}

TEST(OperatorsTest, GroupByCountsAndSums) {
  Table out = GroupBy(MakeSales(), GroupCols({"store"}),
                      {CountStar("n"), Sum(E::Column("qty"), "total")});
  ASSERT_EQ(out.NumRows(), 2u);

  Schema expect_schema;
  expect_schema.AddColumn("store", ValueType::kInt64);
  expect_schema.AddColumn("n", ValueType::kInt64);
  expect_schema.AddColumn("total", ValueType::kInt64);
  Table expected(expect_schema);
  expected.Insert({Value::Int64(1), Value::Int64(2), Value::Int64(5)});
  expected.Insert({Value::Int64(2), Value::Int64(2), Value::Int64(8)});
  ExpectBagEq(expected, out);
}

TEST(OperatorsTest, GroupByMinMax) {
  Table out = GroupBy(MakeSales(), GroupCols({"item"}),
                      {Min(E::Column("qty"), "lo"),
                       Max(E::Column("qty"), "hi")});
  ASSERT_EQ(out.NumRows(), 2u);
  for (const Row& r : out.MaterializeRows()) {
    if (r[0].as_int64() == 10) {
      EXPECT_EQ(r[1].as_int64(), 1);
      EXPECT_EQ(r[2].as_int64(), 7);
    } else {
      EXPECT_EQ(r[1].as_int64(), 2);
      EXPECT_EQ(r[2].as_int64(), 2);
    }
  }
}

TEST(OperatorsTest, GroupByRenamesOutputColumns) {
  Table joined = HashJoin(MakeSales(), MakeItems(), {{"item", "item"}},
                          "items", true);
  Table out = GroupBy(joined, {{"items.cat", ""}}, {CountStar("n")});
  EXPECT_EQ(out.schema().column(0).name, "cat");  // bare name default
  Table renamed = GroupBy(joined, {{"items.cat", "category"}},
                          {CountStar("n")});
  EXPECT_EQ(renamed.schema().column(0).name, "category");
}

TEST(OperatorsTest, ScalarAggregateOverEmptyInputYieldsOneRow) {
  Table empty(MakeSales().schema());
  Table out = GroupBy(empty, {}, {CountStar("n"), Sum(E::Column("qty"),
                                                      "total")});
  ASSERT_EQ(out.NumRows(), 1u);
  EXPECT_EQ(out.RowAt(0)[0].as_int64(), 0);
  EXPECT_TRUE(out.RowAt(0)[1].is_null());
}

TEST(OperatorsTest, GroupByEmptyInputWithKeysYieldsNothing) {
  Table empty(MakeSales().schema());
  Table out = GroupBy(empty, GroupCols({"store"}), {CountStar("n")});
  EXPECT_EQ(out.NumRows(), 0u);
}

TEST(OperatorsTest, CountExprRequiresArgument) {
  AggregateSpec bad{AggregateKind::kSum, std::nullopt, "x"};
  EXPECT_THROW(GroupBy(MakeSales(), GroupCols({"store"}), {bad}),
               std::invalid_argument);
}

TEST(OperatorsTest, BareName) {
  EXPECT_EQ(BareName("stores.city"), "city");
  EXPECT_EQ(BareName("city"), "city");
  EXPECT_EQ(BareName("a.b.c"), "c");
}

/// RAII toggle so a failing test cannot leave packed keys disabled for
/// the rest of the suite.
class PackedKeysOff {
 public:
  PackedKeysOff() { SetPackedKeysEnabled(false); }
  ~PackedKeysOff() { SetPackedKeysEnabled(true); }
};

TEST(OperatorsTest, GroupByPackedAndBoxedPathsAgree) {
  // Same inputs, packed keys on vs off: identical result bags. The
  // retail-shaped int key schema packs, so this pins equivalence of the
  // two code paths end to end.
  Table packed = GroupBy(MakeSales(), GroupCols({"store", "item"}),
                         {CountStar("n"), Sum(E::Column("qty"), "total")});
  Table boxed;
  {
    PackedKeysOff off;
    boxed = GroupBy(MakeSales(), GroupCols({"store", "item"}),
                    {CountStar("n"), Sum(E::Column("qty"), "total")});
  }
  ExpectBagEq(packed, boxed);
}

TEST(OperatorsTest, HashJoinPackedAndBoxedPathsAgree) {
  Table packed =
      HashJoin(MakeSales(), MakeItems(), {{"item", "item"}}, "items");
  Table boxed;
  {
    PackedKeysOff off;
    boxed = HashJoin(MakeSales(), MakeItems(), {{"item", "item"}}, "items");
  }
  ExpectBagEq(packed, boxed);
}

TEST(OperatorsTest, GroupByWidenedDoublesJoinTheirInt64Group) {
  // Value::operator== widens Int64(5) == Double(5.0): both rows land in
  // one group on the packed path (the double encodes as its int twin),
  // while Double(5.5) escapes to the boxed path as its own group.
  Schema s;
  s.AddColumn("k", ValueType::kInt64);
  s.AddColumn("qty", ValueType::kInt64);
  Table t(s, "mixed");
  t.Insert({Value::Int64(5), Value::Int64(1)});
  t.Insert({Value::Double(5.0), Value::Int64(10)});
  t.Insert({Value::Double(5.5), Value::Int64(100)});
  Table out = GroupBy(t, GroupCols({"k"}), {Sum(E::Column("qty"), "total")});
  ASSERT_EQ(out.NumRows(), 2u);
  for (const Row& r : out.MaterializeRows()) {
    if (r[0] == Value::Double(5.5)) {
      EXPECT_EQ(r[1].as_int64(), 100);
    } else {
      EXPECT_EQ(r[0], Value::Int64(5));
      EXPECT_EQ(r[1].as_int64(), 11);
    }
  }
}

TEST(OperatorsTest, GroupByWideKeySchemaFallsBackToBoxedKeys) {
  // Five int64 key columns would get 25 bits each — below the packing
  // floor — so the whole schema takes the boxed path. Results must be
  // unaffected.
  Schema s;
  for (int i = 0; i < 5; ++i) {
    s.AddColumn("k" + std::to_string(i), ValueType::kInt64);
  }
  s.AddColumn("qty", ValueType::kInt64);
  Table t(s, "wide");
  for (int64_t r = 0; r < 10; ++r) {
    t.Insert({Value::Int64(r % 2), Value::Int64(r % 3), Value::Int64(r % 2),
              Value::Int64(r % 3), Value::Int64(r % 2), Value::Int64(1)});
  }
  Table out = GroupBy(t, GroupCols({"k0", "k1", "k2", "k3", "k4"}),
                      {Sum(E::Column("qty"), "total")});
  EXPECT_EQ(out.NumRows(), 6u);  // (r%2, r%3) has 6 combinations over 0..9
  int64_t total = 0;
  for (const Row& r : out.MaterializeRows()) total += r[5].as_int64();
  EXPECT_EQ(total, 10);
}

TEST(OperatorsTest, GroupByStringKeysGroupThroughDictionaries) {
  Table joined = HashJoin(MakeSales(), MakeItems(), {{"item", "item"}},
                          "items", true);
  Table out = GroupBy(joined, {{"items.cat", ""}},
                      {Sum(E::Column("qty"), "total")});
  ASSERT_EQ(out.NumRows(), 2u);
  for (const Row& r : out.MaterializeRows()) {
    if (r[0] == Value::String("food")) {
      EXPECT_EQ(r[1].as_int64(), 11);
    } else {
      EXPECT_EQ(r[0], Value::String("toys"));
      EXPECT_EQ(r[1].as_int64(), 2);
    }
  }
}

}  // namespace
}  // namespace sdelta::rel
