// Regression test for the GroupKeyHash avalanche step: libstdc++'s
// std::hash<int64_t> is the identity, so without a finalizer, small
// sequential keys (store ids, date codes) cluster in consecutive hash
// buckets and strided key sets collide catastrophically. The tests pin
// a bucket-distribution bound on the key shapes the retail schema
// actually produces.
#include "relational/group_key.h"

#include <gtest/gtest.h>

#include <cstdint>
#include <unordered_set>
#include <vector>

#include "relational/value.h"

namespace sdelta::rel {
namespace {

GroupKey Key1(int64_t a) { return {Value::Int64(a)}; }
GroupKey Key2(int64_t a, int64_t b) {
  return {Value::Int64(a), Value::Int64(b)};
}

/// Max bucket load after hashing `keys` into `num_buckets` power-of-two
/// buckets by masking — the worst case for non-avalanched hashes, and
/// how libstdc++'s unordered_map picks buckets modulo a prime (masking
/// is strictly harsher, so a bound here implies a bound there).
size_t MaxMaskedBucketLoad(const std::vector<GroupKey>& keys,
                           size_t num_buckets) {
  GroupKeyHash hasher;
  std::vector<size_t> load(num_buckets, 0);
  size_t worst = 0;
  for (const GroupKey& k : keys) {
    size_t& slot = load[hasher(k) & (num_buckets - 1)];
    ++slot;
    if (slot > worst) worst = slot;
  }
  return worst;
}

TEST(GroupKeyHashTest, SequentialKeysSpreadAcrossBuckets) {
  std::vector<GroupKey> keys;
  for (int64_t i = 0; i < 4096; ++i) keys.push_back(Key1(i));
  // 4096 keys into 1024 buckets: ideal load 4; identity hashing would
  // also give 4 here (sequential fills evenly), but the point is the
  // strided/composite cases below — this one guards against a future
  // mixer that *introduces* clustering on the easy case.
  EXPECT_LE(MaxMaskedBucketLoad(keys, 1024), 16u);
}

TEST(GroupKeyHashTest, StridedKeysDoNotCollapse) {
  // Keys in arithmetic progression with a power-of-two stride — the
  // classic killer for identity hashing (all land in bucket 0 mod 1024).
  std::vector<GroupKey> keys;
  for (int64_t i = 0; i < 4096; ++i) keys.push_back(Key1(i * 1024));
  const size_t worst = MaxMaskedBucketLoad(keys, 1024);
  // Identity: worst == 4096 (total collapse). Avalanched: ~Poisson(4),
  // tail well under 16.
  EXPECT_LE(worst, 16u);
}

TEST(GroupKeyHashTest, CompositeRetailShapedKeysSpread) {
  // (storeID, itemID, date)-shaped keys: small dense ranges, exactly the
  // retail fact-table group key.
  std::vector<GroupKey> keys;
  for (int64_t store = 0; store < 16; ++store) {
    for (int64_t item = 0; item < 64; ++item) {
      for (int64_t date = 0; date < 8; ++date) {
        keys.push_back({Value::Int64(store), Value::Int64(item),
                        Value::Int64(date)});
      }
    }
  }
  // 8192 keys into 2048 buckets: ideal 4, bound 16.
  EXPECT_LE(MaxMaskedBucketLoad(keys, 2048), 16u);
}

TEST(GroupKeyHashTest, HashesAreDistinctForDistinctSmallKeys) {
  // Full-width hash uniqueness on a dense 2-D grid (no masking). A weak
  // combiner loses this through (a, b) / (a+1, b-c) interference.
  std::unordered_set<size_t> seen;
  GroupKeyHash hasher;
  for (int64_t a = 0; a < 128; ++a) {
    for (int64_t b = 0; b < 128; ++b) {
      seen.insert(hasher(Key2(a, b)));
    }
  }
  EXPECT_EQ(seen.size(), 128u * 128u);
}

TEST(GroupKeyHashTest, EqualKeysHashEqual) {
  GroupKeyHash hasher;
  EXPECT_EQ(hasher(Key2(7, 9)), hasher(Key2(7, 9)));
  EXPECT_NE(hasher(Key2(7, 9)), hasher(Key2(9, 7)));  // order matters
}

TEST(GroupKeyHashTest, AvalancheMixSpreadsLowBitsForSmallInputs) {
  // The property the bucket tests rely on, stated directly: low output
  // bits must vary unpredictably across small consecutive inputs. A
  // uniformly random byte map hits ~162 of 256 distinct values
  // (256 · (1 − 1/e)); a degenerate mixer collapses to far fewer, and
  // the identity maps every input to itself.
  std::unordered_set<size_t> low_bits;
  size_t fixed_points = 0;
  for (size_t i = 0; i < 256; ++i) {
    const size_t mixed = AvalancheMix(i);
    low_bits.insert(mixed & 0xFF);
    if (mixed == i) ++fixed_points;
  }
  EXPECT_GE(low_bits.size(), 120u);
  EXPECT_LE(fixed_points, 2u);
}

}  // namespace
}  // namespace sdelta::rel
