#include "relational/table.h"

#include <gtest/gtest.h>

#include <stdexcept>

namespace sdelta::rel {
namespace {

Schema TwoCol() {
  Schema s;
  s.AddColumn("a", ValueType::kInt64);
  s.AddColumn("b", ValueType::kString);
  return s;
}

Row R(int64_t a, const std::string& b) {
  return {Value::Int64(a), Value::String(b)};
}

TEST(TableTest, InsertAndRead) {
  Table t(TwoCol(), "t");
  t.Insert(R(1, "x"));
  t.Insert(R(2, "y"));
  EXPECT_EQ(t.NumRows(), 2u);
  EXPECT_EQ(t.RowAt(0)[0].as_int64(), 1);
  EXPECT_EQ(t.name(), "t");
  EXPECT_FALSE(t.empty());
}

TEST(TableTest, InsertArityMismatchThrows) {
  Table t(TwoCol());
  EXPECT_THROW(t.Insert({Value::Int64(1)}), std::invalid_argument);
}

TEST(TableTest, DuplicatesAllowed) {
  Table t(TwoCol());
  t.Insert(R(1, "x"));
  t.Insert(R(1, "x"));
  EXPECT_EQ(t.NumRows(), 2u);
}

TEST(TableTest, EraseOneEqualRemovesSingleOccurrence) {
  Table t(TwoCol());
  t.Insert(R(1, "x"));
  t.Insert(R(1, "x"));
  t.Insert(R(2, "y"));
  EXPECT_TRUE(t.EraseOneEqual(R(1, "x")));
  EXPECT_EQ(t.NumRows(), 2u);
  EXPECT_TRUE(t.EraseOneEqual(R(1, "x")));
  EXPECT_FALSE(t.EraseOneEqual(R(1, "x")));
  EXPECT_EQ(t.NumRows(), 1u);
}

TEST(TableTest, EraseWithRowIndex) {
  Table t(TwoCol());
  t.EnableRowIndex();
  for (int i = 0; i < 100; ++i) t.Insert(R(i, "v" + std::to_string(i)));
  EXPECT_TRUE(t.row_index_enabled());
  for (int i = 0; i < 100; i += 2) {
    EXPECT_TRUE(t.EraseOneEqual(R(i, "v" + std::to_string(i)))) << i;
  }
  EXPECT_EQ(t.NumRows(), 50u);
  EXPECT_FALSE(t.EraseOneEqual(R(0, "v0")));
  EXPECT_TRUE(t.EraseOneEqual(R(1, "v1")));
}

TEST(TableTest, EnableRowIndexAfterInserts) {
  Table t(TwoCol());
  t.Insert(R(1, "x"));
  t.Insert(R(2, "y"));
  t.EnableRowIndex();
  EXPECT_TRUE(t.EraseOneEqual(R(1, "x")));
  EXPECT_EQ(t.NumRows(), 1u);
}

TEST(TableTest, ReservePreSizesTheRowIndex) {
  Table t(TwoCol());
  t.EnableRowIndex();
  t.Reserve(1000);
  // Filling to the reserved size must not invalidate index consistency
  // (a mid-fill rehash is the risk Reserve exists to avoid).
  for (int i = 0; i < 1000; ++i) t.Insert(R(i, "v" + std::to_string(i)));
  EXPECT_EQ(t.NumRows(), 1000u);
  EXPECT_TRUE(t.EraseOneEqual(R(977, "v977")));
  EXPECT_FALSE(t.EraseOneEqual(R(977, "v977")));
  EXPECT_EQ(t.NumRows(), 999u);
}

TEST(TableTest, EraseAtSwapsWithBack) {
  Table t(TwoCol());
  t.Insert(R(1, "x"));
  t.Insert(R(2, "y"));
  t.Insert(R(3, "z"));
  t.EraseAt(0);
  EXPECT_EQ(t.NumRows(), 2u);
  EXPECT_EQ(t.RowAt(0)[0].as_int64(), 3);  // back swapped in
  EXPECT_THROW(t.EraseAt(5), std::invalid_argument);
}

TEST(TableTest, IndexStaysConsistentAcrossSwaps) {
  Table t(TwoCol());
  t.EnableRowIndex();
  t.Insert(R(1, "a"));
  t.Insert(R(2, "b"));
  t.Insert(R(3, "c"));
  // Erase the first; row 3 moves into slot 0; the index must follow.
  EXPECT_TRUE(t.EraseOneEqual(R(1, "a")));
  EXPECT_TRUE(t.EraseOneEqual(R(3, "c")));
  EXPECT_TRUE(t.EraseOneEqual(R(2, "b")));
  EXPECT_TRUE(t.empty());
}

TEST(TableTest, ClearKeepsSchema) {
  Table t(TwoCol(), "t");
  t.Insert(R(1, "x"));
  t.Clear();
  EXPECT_TRUE(t.empty());
  t.Insert(R(2, "y"));
  EXPECT_EQ(t.NumRows(), 1u);
}

TEST(TableTest, BagEquals) {
  Table a(TwoCol());
  Table b(TwoCol());
  a.Insert(R(1, "x"));
  a.Insert(R(2, "y"));
  b.Insert(R(2, "y"));
  b.Insert(R(1, "x"));
  EXPECT_TRUE(Table::BagEquals(a, b));  // order-insensitive
  b.Insert(R(1, "x"));
  EXPECT_FALSE(Table::BagEquals(a, b));  // multiplicity matters
  a.Insert(R(3, "z"));
  EXPECT_FALSE(Table::BagEquals(a, b));
}

TEST(TableTest, BagEqualsRespectsMultiplicity) {
  Table a(TwoCol());
  Table b(TwoCol());
  a.Insert(R(1, "x"));
  a.Insert(R(1, "x"));
  a.Insert(R(2, "y"));
  b.Insert(R(1, "x"));
  b.Insert(R(2, "y"));
  b.Insert(R(2, "y"));
  EXPECT_FALSE(Table::BagEquals(a, b));
}

TEST(TableTest, ToStringTruncates) {
  Table t(TwoCol(), "big");
  for (int i = 0; i < 30; ++i) t.Insert(R(i, "v"));
  const std::string s = t.ToString(5);
  EXPECT_NE(s.find("30 rows"), std::string::npos);
  EXPECT_NE(s.find("more"), std::string::npos);
}

}  // namespace
}  // namespace sdelta::rel
