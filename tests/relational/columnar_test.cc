// Property tests for the columnar storage layer: whatever sequence of
// Values is appended to a column — NULLs, extreme ints, non-integral
// doubles, type mismatches that demote to boxed storage — materializing
// the rows back must reproduce the appended Values byte-identically,
// and the storage mode must be a pure function of the appended
// sequence (never of how the rows arrived: Insert vs AppendColumnsFrom
// vs AppendGather).
#include <gtest/gtest.h>

#include <cstdint>
#include <limits>
#include <string>
#include <vector>

#include "relational/column.h"
#include "relational/table.h"
#include "test_util.h"

namespace sdelta::rel {
namespace {

using Storage = ColumnVector::Storage;

/// Deterministic value stream mixing every interesting case for a
/// column declared `declared`: in-type values (including extremes and
/// NULLs) and, when `adversarial`, values of the wrong runtime type
/// that must demote the column.
std::vector<Value> MakeStream(ValueType declared, size_t n,
                              bool adversarial) {
  std::vector<Value> out;
  out.reserve(n);
  uint64_t x = 0x9E3779B97F4A7C15ULL + static_cast<uint64_t>(declared);
  for (size_t i = 0; i < n; ++i) {
    x ^= x >> 12;
    x ^= x << 25;
    x ^= x >> 27;
    const uint64_t r = x * 0x2545F4914F6CDD1DULL;
    if (r % 7 == 0) {
      out.push_back(Value::Null());
      continue;
    }
    if (adversarial && r % 11 == 0) {
      // Wrong runtime type for every declared type below.
      out.push_back(declared == ValueType::kString
                        ? Value::Int64(static_cast<int64_t>(r))
                        : Value::String("stray" + std::to_string(r % 5)));
      continue;
    }
    switch (declared) {
      case ValueType::kInt64:
        switch (r % 5) {
          case 0:
            out.push_back(Value::Int64(std::numeric_limits<int64_t>::min()));
            break;
          case 1:
            out.push_back(Value::Int64(std::numeric_limits<int64_t>::max()));
            break;
          case 2:
            out.push_back(Value::Int64(-static_cast<int64_t>(r % 1000)));
            break;
          default:
            out.push_back(Value::Int64(static_cast<int64_t>(r % 1000)));
        }
        break;
      case ValueType::kDouble:
        out.push_back(r % 3 == 0
                          ? Value::Double(static_cast<double>(r % 100))
                          : Value::Double(0.25 + static_cast<double>(r % 97)));
        break;
      default:
        out.push_back(Value::String("s" + std::to_string(r % 13)));
    }
  }
  return out;
}

void ExpectRoundTrip(const std::vector<Value>& stream, ValueType declared) {
  ColumnVector col(declared);
  for (const Value& v : stream) col.Append(v);
  ASSERT_EQ(col.size(), stream.size());
  for (size_t i = 0; i < stream.size(); ++i) {
    SCOPED_TRACE(i);
    const Value got = col.At(i);
    EXPECT_EQ(got.type(), stream[i].type());
    EXPECT_TRUE(Value::Compare(got, stream[i]) == 0 ||
                (got.is_null() && stream[i].is_null()))
        << got.ToString() << " vs " << stream[i].ToString();
    EXPECT_EQ(col.IsNullAt(i), stream[i].is_null());
  }
}

TEST(ColumnarTest, TypedStreamsRoundTripInTypedStorage) {
  for (ValueType t :
       {ValueType::kInt64, ValueType::kDouble, ValueType::kString}) {
    SCOPED_TRACE(static_cast<int>(t));
    const std::vector<Value> stream = MakeStream(t, 300, false);
    ColumnVector col(t);
    for (const Value& v : stream) col.Append(v);
    EXPECT_FALSE(col.boxed());
    ExpectRoundTrip(stream, t);
  }
}

TEST(ColumnarTest, AdversarialStreamsDemoteButRoundTripExactly) {
  for (ValueType t :
       {ValueType::kInt64, ValueType::kDouble, ValueType::kString}) {
    SCOPED_TRACE(static_cast<int>(t));
    const std::vector<Value> stream = MakeStream(t, 300, true);
    ColumnVector col(t);
    for (const Value& v : stream) col.Append(v);
    EXPECT_TRUE(col.boxed());  // the stray runtime types force demotion
    ExpectRoundTrip(stream, t);
  }
}

TEST(ColumnarTest, NonIntegralDoubleDemotesIntColumn) {
  ColumnVector col(ValueType::kInt64);
  col.Append(Value::Int64(7));
  EXPECT_EQ(col.storage(), Storage::kInt64);
  col.Append(Value::Double(7.5));
  EXPECT_TRUE(col.boxed());
  // The demoted column reproduces both values with their runtime types.
  EXPECT_EQ(col.At(0).type(), ValueType::kInt64);
  EXPECT_EQ(col.At(1).type(), ValueType::kDouble);
  EXPECT_EQ(col.At(1).as_double(), 7.5);
}

TEST(ColumnarTest, NullBitmapTracksNullCount) {
  ColumnVector col(ValueType::kInt64);
  col.Append(Value::Int64(1));
  col.AppendNull();
  col.Append(Value::Null());
  col.Append(Value::Int64(-2));
  EXPECT_EQ(col.null_count(), 2u);
  EXPECT_FALSE(col.IsNullAt(0));
  EXPECT_TRUE(col.IsNullAt(1));
  EXPECT_TRUE(col.IsNullAt(2));
  EXPECT_FALSE(col.IsNullAt(3));
  // NULLs materialize as NULL, not as the typed placeholder.
  EXPECT_TRUE(col.At(2).is_null());
}

TEST(ColumnarTest, StorageModeIsAFunctionOfTheValueSequenceNotTheRoute) {
  // Insert row-by-row vs bulk-append vs gather: identical appended
  // sequences must land in identical storage modes with identical
  // contents — the invariant the parallel operators rely on.
  Schema s;
  s.AddColumn("a", ValueType::kInt64);
  s.AddColumn("b", ValueType::kString);
  Table rowwise(s);
  const std::vector<Value> as = MakeStream(ValueType::kInt64, 200, true);
  const std::vector<Value> bs = MakeStream(ValueType::kString, 200, true);
  for (size_t i = 0; i < as.size(); ++i) rowwise.Insert({as[i], bs[i]});

  Table bulk(s);
  bulk.AppendColumnsFrom(rowwise);

  std::vector<size_t> all(rowwise.NumRows());
  for (size_t i = 0; i < all.size(); ++i) all[i] = i;
  Table gathered(s);
  gathered.AppendGather(rowwise, all);

  for (const Table* t : {&bulk, &gathered}) {
    for (size_t c = 0; c < 2; ++c) {
      EXPECT_EQ(t->column_data(c).storage(), rowwise.column_data(c).storage());
    }
    ASSERT_EQ(t->NumRows(), rowwise.NumRows());
    for (size_t r = 0; r < rowwise.NumRows(); ++r) {
      ASSERT_TRUE(t->RowEqualsAt(r, rowwise.RowAt(r))) << "row " << r;
    }
  }
}

TEST(ColumnarTest, EraseAtSwapKeepsColumnsAligned) {
  Schema s;
  s.AddColumn("a", ValueType::kInt64);
  s.AddColumn("b", ValueType::kString);
  Table t(s);
  for (int64_t i = 0; i < 10; ++i) {
    t.Insert({i % 3 == 0 ? Value::Null() : Value::Int64(i),
              Value::String("v" + std::to_string(i))});
  }
  const Row last = t.RowAt(9);
  t.EraseAt(2);  // swap-with-back: row 9 moves into slot 2
  ASSERT_EQ(t.NumRows(), 9u);
  EXPECT_TRUE(t.RowEqualsAt(2, last));
  // Null bits must have moved with the values.
  EXPECT_EQ(t.column_data(0).IsNullAt(2), last[0].is_null());
}

TEST(ColumnarTest, ClearUndemotesToTypedStorage) {
  ColumnVector col(ValueType::kInt64);
  col.Append(Value::String("stray"));
  EXPECT_TRUE(col.boxed());
  col.Clear();
  EXPECT_EQ(col.storage(), Storage::kInt64);
  col.Append(Value::Int64(3));
  EXPECT_EQ(col.storage(), Storage::kInt64);
  EXPECT_EQ(col.At(0).as_int64(), 3);
}

TEST(ColumnarTest, DictionaryIsSharedOnBulkCopyAndCodesStayPrivateToIt) {
  Schema s;
  s.AddColumn("city", ValueType::kString);
  Table src(s);
  for (int i = 0; i < 50; ++i) {
    src.Insert({Value::String("c" + std::to_string(i % 4))});
  }
  Table dst(s);
  dst.AppendColumnsFrom(src);
  // Bulk copy from a dict column into an empty dict column adopts the
  // source dictionary (codes copied verbatim, no re-interning).
  EXPECT_EQ(dst.column_data(0).dict().get(), src.column_data(0).dict().get());

  // A destination with its *own* dictionary re-interns instead; the
  // materialized strings are identical either way.
  Table other(s);
  other.Insert({Value::String("elsewhere")});
  other.AppendColumnsFrom(src);
  EXPECT_NE(other.column_data(0).dict().get(),
            src.column_data(0).dict().get());
  for (size_t r = 0; r < src.NumRows(); ++r) {
    EXPECT_TRUE(Value::Compare(other.ValueAt(r + 1, 0), src.ValueAt(r, 0)) ==
                0);
  }
}

TEST(ColumnarTest, ReserveDoesNotChangeContents) {
  Schema s;
  s.AddColumn("a", ValueType::kInt64);
  Table t(s);
  t.Insert({Value::Int64(1)});
  t.Reserve(10000);
  t.Insert({Value::Int64(2)});
  ASSERT_EQ(t.NumRows(), 2u);
  EXPECT_EQ(t.ValueAt(0, 0).as_int64(), 1);
  EXPECT_EQ(t.ValueAt(1, 0).as_int64(), 2);
}

TEST(ColumnarTest, ApproxBytesGrowsWithRowsAndCountsEveryColumn) {
  Schema s;
  s.AddColumn("a", ValueType::kInt64);
  s.AddColumn("b", ValueType::kString);
  Table t(s);
  const size_t empty = t.ApproxBytes();
  for (int64_t i = 0; i < 1000; ++i) {
    t.Insert({Value::Int64(i), Value::String("x" + std::to_string(i % 7))});
  }
  const size_t full = t.ApproxBytes();
  EXPECT_GT(full, empty);
  // At minimum the int64 vector (8 bytes/row) and the code vector
  // (4 bytes/row) must be accounted for.
  EXPECT_GE(full, 1000 * (8 + 4));
}

}  // namespace
}  // namespace sdelta::rel
