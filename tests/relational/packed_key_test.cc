// Tests for the PackedKey codec: the layout must be a pure function of
// the schema, packed equality/hashing must agree with the boxed
// GroupKey semantics (including int64-vs-double widening), and every
// value with no 128-bit encoding must escape to the boxed path.
#include "relational/packed_key.h"

#include <gtest/gtest.h>

#include <cstdint>
#include <optional>
#include <unordered_set>
#include <vector>

#include "relational/dictionary.h"
#include "relational/group_key.h"
#include "relational/schema.h"
#include "relational/value.h"

namespace sdelta::rel {
namespace {

/// Codec over int64 columns only (no dictionaries needed).
PackedKeyCodec IntCodec(size_t n) {
  return PackedKeyCodec::ForTypes(
      std::vector<ValueType>(n, ValueType::kInt64),
      std::vector<Dictionary*>(n, nullptr));
}

TEST(PackedKeyCodecTest, PackabilityIsAFunctionOfTheSchema) {
  DictionaryArena arena;
  Dictionary& d = arena.Add();
  // Retail group keys: all-int and string+int shapes pack.
  EXPECT_TRUE(IntCodec(1).packable());
  EXPECT_TRUE(IntCodec(3).packable());
  EXPECT_TRUE(IntCodec(4).packable());  // 4 * 32 == 128 exactly
  EXPECT_TRUE(PackedKeyCodec::ForTypes({ValueType::kString, ValueType::kString,
                                        ValueType::kInt64},
                                       {&d, &d, nullptr})
                  .packable());
  // Five ints would get 25 bits each — below the 32-bit floor.
  EXPECT_FALSE(IntCodec(5).packable());
  // Four strings fill all 128 bits; no room for an int alongside.
  EXPECT_TRUE(PackedKeyCodec::ForTypes(
                  std::vector<ValueType>(4, ValueType::kString),
                  std::vector<Dictionary*>(4, &d))
                  .packable());
  EXPECT_FALSE(PackedKeyCodec::ForTypes(
                   {ValueType::kString, ValueType::kString, ValueType::kString,
                    ValueType::kString, ValueType::kInt64},
                   {&d, &d, &d, &d, nullptr})
                   .packable());
  // Any column outside {kInt64, kString} disqualifies the schema.
  EXPECT_FALSE(PackedKeyCodec::ForTypes({ValueType::kDouble}, {nullptr})
                   .packable());
  EXPECT_FALSE(PackedKeyCodec::ForTypes({ValueType::kInt64, ValueType::kDouble},
                                        {nullptr, nullptr})
                   .packable());
  // The empty key (grand-total views) packs trivially.
  EXPECT_TRUE(IntCodec(0).packable());
  EXPECT_TRUE(IntCodec(0).EncodeKey(GroupKey{}).has_value());
}

TEST(PackedKeyCodecTest, WidthsSplitRemainingBitsEvenly) {
  DictionaryArena arena;
  Dictionary& d = arena.Add();
  // 3 ints: (128 - 0) / 3 = 42 bits each, capped at 63.
  PackedKeyCodec three = IntCodec(3);
  EXPECT_EQ(three.width(0), 42);
  // 1 int: capped at 63, not 128.
  EXPECT_EQ(IntCodec(1).width(0), 63);
  // 2 strings + 1 int: (128 - 64) / 1 = 64 -> capped at 63.
  PackedKeyCodec mixed = PackedKeyCodec::ForTypes(
      {ValueType::kString, ValueType::kString, ValueType::kInt64},
      {&d, &d, nullptr});
  EXPECT_EQ(mixed.width(0), 32);
  EXPECT_EQ(mixed.width(1), 32);
  EXPECT_EQ(mixed.width(2), 63);
}

TEST(PackedKeyCodecTest, EncodeAgreesWithGroupKeyEquality) {
  // Property: over a grid of int keys, packed equality must match boxed
  // Value equality exactly, and equal keys must produce equal hashes.
  PackedKeyCodec codec = IntCodec(2);
  ASSERT_TRUE(codec.packable());
  PackedKeyHash hasher;
  std::vector<GroupKey> keys;
  for (int64_t a = 0; a < 16; ++a) {
    for (int64_t b = 0; b < 16; ++b) {
      keys.push_back({Value::Int64(a), Value::Int64(b)});
    }
  }
  for (const GroupKey& x : keys) {
    const std::optional<PackedKey> px = codec.EncodeKey(x);
    ASSERT_TRUE(px.has_value());
    for (const GroupKey& y : keys) {
      const std::optional<PackedKey> py = codec.EncodeKey(y);
      ASSERT_TRUE(py.has_value());
      EXPECT_EQ(x == y, *px == *py);
      if (x == y) {
        EXPECT_EQ(hasher(*px), hasher(*py));
      }
    }
  }
}

TEST(PackedKeyCodecTest, DecodeRoundTripsEncodableKeys) {
  DictionaryArena arena;
  Dictionary& d = arena.Add();
  PackedKeyCodec codec = PackedKeyCodec::ForTypes(
      {ValueType::kString, ValueType::kInt64}, {&d, nullptr});
  ASSERT_TRUE(codec.packable());
  const GroupKey key = {Value::String("Boston"), Value::Int64(42)};
  const std::optional<PackedKey> pk = codec.EncodeKey(key);
  ASSERT_TRUE(pk.has_value());
  EXPECT_EQ(codec.Decode(*pk), key);
}

TEST(PackedKeyCodecTest, NullsRoundTripPerColumn) {
  DictionaryArena arena;
  Dictionary& d = arena.Add();
  PackedKeyCodec codec = PackedKeyCodec::ForTypes(
      {ValueType::kString, ValueType::kInt64}, {&d, nullptr});
  const GroupKey some_null = {Value::Null(), Value::Int64(7)};
  const GroupKey all_null = {Value::Null(), Value::Null()};
  const GroupKey no_null = {Value::String("x"), Value::Int64(7)};
  const auto p1 = codec.EncodeKey(some_null);
  const auto p2 = codec.EncodeKey(all_null);
  const auto p3 = codec.EncodeKey(no_null);
  ASSERT_TRUE(p1 && p2 && p3);
  EXPECT_NE(*p1, *p2);
  EXPECT_NE(*p1, *p3);
  EXPECT_EQ(codec.Decode(*p1), some_null);
  EXPECT_EQ(codec.Decode(*p2), all_null);
}

TEST(PackedKeyCodecTest, OutOfRangeValuesEscape) {
  PackedKeyCodec codec = IntCodec(3);  // 42 bits per column
  const uint64_t null_code = (uint64_t{1} << 42) - 1;
  auto key = [](int64_t v) {
    return GroupKey{Value::Int64(v), Value::Int64(0), Value::Int64(0)};
  };
  // Largest encodable value is null_code - 1; null_code itself is the
  // NULL sentinel and anything at or above it escapes.
  EXPECT_TRUE(codec.EncodeKey(key(static_cast<int64_t>(null_code) - 1)));
  EXPECT_FALSE(codec.EncodeKey(key(static_cast<int64_t>(null_code))));
  EXPECT_FALSE(codec.EncodeKey(key(int64_t{1} << 50)));
  EXPECT_FALSE(codec.EncodeKey(key(-1)));
  EXPECT_TRUE(codec.EncodeKey(key(0)));
}

TEST(PackedKeyCodecTest, WidenedDoublesEncodeLikeTheirInt64Twins) {
  // Value::operator== makes Int64(7) == Double(7.0); the codec must
  // agree, or a group keyed by 7.0 would split from the group keyed 7.
  PackedKeyCodec codec = IntCodec(1);
  const auto from_int = codec.EncodeKey({Value::Int64(7)});
  const auto from_double = codec.EncodeKey({Value::Double(7.0)});
  ASSERT_TRUE(from_int && from_double);
  EXPECT_EQ(*from_int, *from_double);
  // Non-integral, negative, NaN, and huge doubles all escape.
  EXPECT_FALSE(codec.EncodeKey({Value::Double(7.5)}));
  EXPECT_FALSE(codec.EncodeKey({Value::Double(-1.0)}));
  EXPECT_FALSE(codec.EncodeKey({Value::Double(0.0 / 0.0)}));
  EXPECT_FALSE(codec.EncodeKey({Value::Double(1e30)}));
}

TEST(PackedKeyCodecTest, TypeMismatchedValuesEscape) {
  DictionaryArena arena;
  Dictionary& d = arena.Add();
  PackedKeyCodec codec =
      PackedKeyCodec::ForTypes({ValueType::kString}, {&d});
  EXPECT_TRUE(codec.EncodeKey({Value::String("ok")}));
  // An int64 in a string column has no dictionary code: boxed path.
  EXPECT_FALSE(codec.EncodeKey({Value::Int64(3)}));
}

TEST(PackedKeyCodecTest, EncodeRowMatchesEncodeKey) {
  PackedKeyCodec codec = IntCodec(2);
  const Row row = {Value::Int64(99), Value::Int64(5), Value::Int64(17)};
  const std::vector<size_t> indices = {2, 0};
  const auto via_row = codec.EncodeRow(row, indices);
  const auto via_key = codec.EncodeKey(ExtractKey(row, indices));
  ASSERT_TRUE(via_row && via_key);
  EXPECT_EQ(*via_row, *via_key);
}

TEST(PackedKeyCodecTest, ForColumnsReadsTypesFromSchema) {
  Schema schema;
  schema.AddColumn("storeID", ValueType::kInt64);
  schema.AddColumn("city", ValueType::kString);
  schema.AddColumn("total", ValueType::kDouble);
  DictionaryArena arena;
  PackedKeyCodec codec = PackedKeyCodec::ForColumns(
      schema, {0, 1}, [&](const Column&) { return &arena.Add(); });
  EXPECT_TRUE(codec.packable());
  // Including the double column disqualifies the layout.
  PackedKeyCodec with_double = PackedKeyCodec::ForColumns(
      schema, {0, 2}, [&](const Column&) { return &arena.Add(); });
  EXPECT_FALSE(with_double.packable());
}

TEST(PackedKeyCodecTest, DisablingTheToggleForcesTheBoxedPath) {
  ASSERT_TRUE(PackedKeysEnabled());
  SetPackedKeysEnabled(false);
  EXPECT_FALSE(IntCodec(2).packable());
  SetPackedKeysEnabled(true);
  EXPECT_TRUE(IntCodec(2).packable());
}

TEST(PackedKeyHashTest, DenseKeyGridsHashDistinctAndSpread) {
  // Same guarantee GroupKeyHash provides for the boxed path: retail-
  // shaped dense int grids must not collide or cluster under masking.
  PackedKeyCodec codec = IntCodec(2);
  PackedKeyHash hasher;
  std::unordered_set<size_t> hashes;
  std::vector<size_t> load(1024, 0);
  size_t worst = 0;
  for (int64_t a = 0; a < 64; ++a) {
    for (int64_t b = 0; b < 64; ++b) {
      const auto pk = codec.EncodeKey({Value::Int64(a), Value::Int64(b)});
      ASSERT_TRUE(pk.has_value());
      const size_t h = hasher(*pk);
      hashes.insert(h);
      size_t& slot = load[h & 1023];
      ++slot;
      if (slot > worst) worst = slot;
    }
  }
  EXPECT_EQ(hashes.size(), 64u * 64u);
  EXPECT_LE(worst, 16u);  // 4096 keys / 1024 buckets: ideal 4
}

}  // namespace
}  // namespace sdelta::rel
