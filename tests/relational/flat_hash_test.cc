// Tests for the flat open-addressing map: collision chains, wraparound
// at the end of the slot array, backward-shift deletion (the map is
// tombstone-free, so probe chains must stay intact after erases), and
// the multimap operations the HashJoin build side relies on.
#include "relational/flat_hash.h"

#include <gtest/gtest.h>

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

namespace sdelta::rel {
namespace {

using IntMap = FlatHashMap<size_t, int, IdentityHash>;

TEST(FlatHashMapTest, FindOrInsertBasics) {
  IntMap m;
  EXPECT_TRUE(m.empty());
  EXPECT_EQ(m.Find(1), nullptr);

  auto [v1, inserted1] = m.FindOrInsert(1, 10);
  EXPECT_TRUE(inserted1);
  EXPECT_EQ(*v1, 10);
  auto [v2, inserted2] = m.FindOrInsert(1, 999);
  EXPECT_FALSE(inserted2);  // existing value wins
  EXPECT_EQ(*v2, 10);
  EXPECT_EQ(m.size(), 1u);

  ASSERT_NE(m.Find(1), nullptr);
  EXPECT_EQ(*m.Find(1), 10);
  *m.Find(1) = 11;
  EXPECT_EQ(*m.Find(1), 11);
}

TEST(FlatHashMapTest, GrowsThroughManyInserts) {
  IntMap m;
  constexpr size_t kN = 10000;
  for (size_t i = 0; i < kN; ++i) m.FindOrInsert(i * 2654435761u, int(i));
  EXPECT_EQ(m.size(), kN);
  for (size_t i = 0; i < kN; ++i) {
    const int* v = m.Find(i * 2654435761u);
    ASSERT_NE(v, nullptr);
    EXPECT_EQ(*v, int(i));
  }
  // Load factor <= 3/4 held through growth.
  EXPECT_GE(m.capacity() * 3, m.size() * 4);
}

TEST(FlatHashMapTest, CollidingKeysShareAProbeChain) {
  // IdentityHash + keys congruent mod capacity: a guaranteed collision
  // chain. Reserve first so capacity is known and stable.
  IntMap m;
  m.Reserve(8);
  const size_t cap = m.capacity();
  for (size_t k = 0; k < 5; ++k) m.FindOrInsert(3 + k * cap, int(k));
  EXPECT_EQ(m.size(), 5u);
  for (size_t k = 0; k < 5; ++k) {
    const int* v = m.Find(3 + k * cap);
    ASSERT_NE(v, nullptr);
    EXPECT_EQ(*v, int(k));
  }
  // A missing key on the same chain walks it and falls off the end.
  EXPECT_EQ(m.Find(3 + 5 * cap), nullptr);
}

TEST(FlatHashMapTest, ProbesWrapAroundTheSlotArray) {
  IntMap m;
  m.Reserve(8);
  const size_t cap = m.capacity();
  // Home slot cap-1: the second and third insert wrap to slots 0, 1.
  m.FindOrInsert(cap - 1, 0);
  m.FindOrInsert(2 * cap - 1, 1);
  m.FindOrInsert(3 * cap - 1, 2);
  EXPECT_EQ(*m.Find(cap - 1), 0);
  EXPECT_EQ(*m.Find(2 * cap - 1), 1);
  EXPECT_EQ(*m.Find(3 * cap - 1), 2);
  // Erasing the head backward-shifts the wrapped entries into place.
  EXPECT_TRUE(m.Erase(cap - 1));
  EXPECT_EQ(m.Find(cap - 1), nullptr);
  EXPECT_EQ(*m.Find(2 * cap - 1), 1);
  EXPECT_EQ(*m.Find(3 * cap - 1), 2);
}

TEST(FlatHashMapTest, BackwardShiftEraseKeepsChainsReachable) {
  IntMap m;
  m.Reserve(16);
  const size_t cap = m.capacity();
  // Chain A homes at 2, chain B homes at 3; B's entries displace behind
  // A's. Erasing from the middle of A must not strand B.
  std::vector<size_t> keys = {2, 2 + cap, 3, 3 + cap, 2 + 2 * cap};
  for (size_t i = 0; i < keys.size(); ++i) m.FindOrInsert(keys[i], int(i));
  EXPECT_TRUE(m.Erase(2 + cap));
  EXPECT_EQ(m.size(), keys.size() - 1);
  EXPECT_EQ(m.Find(2 + cap), nullptr);
  for (size_t i = 0; i < keys.size(); ++i) {
    if (keys[i] == 2 + cap) continue;
    const int* v = m.Find(keys[i]);
    ASSERT_NE(v, nullptr) << "key " << keys[i] << " lost after erase";
    EXPECT_EQ(*v, int(i));
  }
}

TEST(FlatHashMapTest, EraseChurnNeverDegradesLookup) {
  // Tombstone-free deletion means heavy insert/erase churn (the summary
  // table refresh pattern) leaves no residue: after deleting everything,
  // the table is as good as new.
  IntMap m;
  for (int round = 0; round < 3; ++round) {
    for (size_t i = 0; i < 1000; ++i) m.FindOrInsert(i, int(i));
    EXPECT_EQ(m.size(), 1000u);
    for (size_t i = 0; i < 1000; ++i) EXPECT_TRUE(m.Erase(i));
    EXPECT_TRUE(m.empty());
    EXPECT_EQ(m.Find(500), nullptr);
  }
}

TEST(FlatHashMapTest, InsertMultiKeepsDuplicatesInInsertionOrder) {
  IntMap m;
  m.Reserve(64);  // no rehash below, so probe order == insertion order
  m.InsertMulti(7, 1);
  m.InsertMulti(9, 99);
  m.InsertMulti(7, 2);
  m.InsertMulti(7, 3);
  EXPECT_EQ(m.size(), 4u);

  std::vector<int> seen;
  m.ForEachEqual(7, [&](const int& v) {
    seen.push_back(v);
    return false;
  });
  EXPECT_EQ(seen, (std::vector<int>{1, 2, 3}));

  // Early stop after the first match.
  seen.clear();
  m.ForEachEqual(7, [&](const int& v) {
    seen.push_back(v);
    return true;
  });
  EXPECT_EQ(seen, (std::vector<int>{1}));

  // Find returns the first duplicate in probe order.
  EXPECT_EQ(*m.Find(7), 1);
  m.ForEachEqual(8, [](const int&) {
    ADD_FAILURE() << "no entries for key 8";
    return false;
  });
}

TEST(FlatHashMapTest, EraseOneIfRemovesOnlyTheMatchingDuplicate) {
  IntMap m;
  m.Reserve(64);
  m.InsertMulti(7, 1);
  m.InsertMulti(7, 2);
  m.InsertMulti(7, 3);
  EXPECT_TRUE(m.EraseOneIf(7, [](const int& v) { return v == 2; }));
  EXPECT_FALSE(m.EraseOneIf(7, [](const int& v) { return v == 2; }));
  std::vector<int> seen;
  m.ForEachEqual(7, [&](const int& v) {
    seen.push_back(v);
    return false;
  });
  EXPECT_EQ(seen, (std::vector<int>{1, 3}));
  EXPECT_EQ(m.size(), 2u);
}

TEST(FlatHashMapTest, ClearKeepsCapacity) {
  IntMap m;
  for (size_t i = 0; i < 100; ++i) m.FindOrInsert(i, int(i));
  const size_t cap = m.capacity();
  m.Clear();
  EXPECT_TRUE(m.empty());
  EXPECT_EQ(m.capacity(), cap);
  EXPECT_EQ(m.Find(5), nullptr);
  m.FindOrInsert(5, 50);
  EXPECT_EQ(*m.Find(5), 50);
}

TEST(FlatHashMapTest, ReservePreventsRehashDuringFill) {
  IntMap m;
  m.Reserve(1000);
  const size_t cap = m.capacity();
  EXPECT_GE(cap * 3, 1000u * 4);
  for (size_t i = 0; i < 1000; ++i) m.FindOrInsert(i, int(i));
  EXPECT_EQ(m.capacity(), cap);  // no growth mid-fill
}

TEST(FlatHashMapTest, ProbeStatsCountOpsAndSteps) {
  IntMap m;
  m.Reserve(8);
  const size_t cap = m.capacity();
  m.FindOrInsert(1, 10);           // home slot: 1 op, 1 step
  m.FindOrInsert(1 + cap, 11);     // collides: 1 op, 2 steps
  const ProbeStats& after_insert = m.probe_stats();
  EXPECT_EQ(after_insert.ops, 2u);
  EXPECT_EQ(after_insert.steps, 3u);
  m.Find(1);        // 1 step
  m.Find(1 + cap);  // 2 steps
  EXPECT_EQ(m.probe_stats().ops, 4u);
  EXPECT_EQ(m.probe_stats().steps, 6u);
  EXPECT_DOUBLE_EQ(m.probe_stats().MeanLength(), 1.5);
  // ForEachEqual does no accounting (it runs concurrently in joins).
  m.ForEachEqual(1, [](const int&) { return false; });
  EXPECT_EQ(m.probe_stats().ops, 4u);
}

TEST(FlatHashMapTest, StringValuesMoveCleanlyThroughRehash) {
  FlatHashMap<size_t, std::string, IdentityHash> m;
  for (size_t i = 0; i < 200; ++i) {
    m.InsertMulti(i % 10, "v" + std::to_string(i));
  }
  EXPECT_EQ(m.size(), 200u);
  size_t count = 0;
  m.ForEachEqual(3, [&](const std::string& v) {
    EXPECT_EQ(v.substr(0, 1), "v");
    ++count;
    return false;
  });
  EXPECT_EQ(count, 20u);
}

TEST(NormalizeCapacityTest, PowerOfTwoAboveLoadFactor) {
  EXPECT_EQ(flat_internal::NormalizeCapacity(0), 16u);
  EXPECT_EQ(flat_internal::NormalizeCapacity(12), 16u);
  EXPECT_EQ(flat_internal::NormalizeCapacity(13), 32u);
  EXPECT_EQ(flat_internal::NormalizeCapacity(24), 32u);
  EXPECT_EQ(flat_internal::NormalizeCapacity(25), 64u);
}

}  // namespace
}  // namespace sdelta::rel
