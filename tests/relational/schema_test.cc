#include "relational/schema.h"

#include <gtest/gtest.h>

#include <stdexcept>

namespace sdelta::rel {
namespace {

Schema MakeSchema() {
  Schema s;
  s.AddColumn("storeID", ValueType::kInt64);
  s.AddColumn("qty", ValueType::kInt64);
  s.AddColumn("price", ValueType::kDouble);
  return s;
}

TEST(SchemaTest, AddAndLookup) {
  Schema s = MakeSchema();
  EXPECT_EQ(s.NumColumns(), 3u);
  EXPECT_EQ(s.column(0).name, "storeID");
  EXPECT_EQ(s.column(2).type, ValueType::kDouble);
  EXPECT_EQ(s.IndexOf("qty"), std::optional<size_t>(1));
  EXPECT_FALSE(s.IndexOf("missing").has_value());
}

TEST(SchemaTest, DuplicateColumnThrows) {
  Schema s = MakeSchema();
  EXPECT_THROW(s.AddColumn("qty", ValueType::kInt64), std::invalid_argument);
}

TEST(SchemaTest, QualifiedRenamesAll) {
  Schema q = MakeSchema().Qualified("pos");
  EXPECT_EQ(q.column(0).name, "pos.storeID");
  EXPECT_EQ(q.column(1).name, "pos.qty");
  EXPECT_TRUE(q.IndexOf("pos.price").has_value());
}

TEST(SchemaTest, ResolveExactAndSuffix) {
  Schema q = MakeSchema().Qualified("pos");
  EXPECT_EQ(q.Resolve("pos.qty"), 1u);
  EXPECT_EQ(q.Resolve("qty"), 1u);  // unique suffix
}

TEST(SchemaTest, ResolveUnknownThrows) {
  Schema q = MakeSchema().Qualified("pos");
  EXPECT_THROW(q.Resolve("nothere"), std::invalid_argument);
  EXPECT_FALSE(q.TryResolve("nothere").has_value());
}

TEST(SchemaTest, ResolveAmbiguousThrows) {
  Schema s;
  s.AddColumn("pos.storeID", ValueType::kInt64);
  s.AddColumn("stores.storeID", ValueType::kInt64);
  EXPECT_THROW(s.Resolve("storeID"), std::invalid_argument);
  EXPECT_THROW(s.TryResolve("storeID"), std::invalid_argument);
  // Fully qualified still works.
  EXPECT_EQ(s.Resolve("stores.storeID"), 1u);
}

TEST(SchemaTest, SuffixMatchRequiresDotBoundary) {
  Schema s;
  s.AddColumn("pos.mydate", ValueType::kInt64);
  // "date" is not a suffix component of "pos.mydate".
  EXPECT_FALSE(s.TryResolve("date").has_value());
}

TEST(SchemaTest, EqualityAndToString) {
  EXPECT_TRUE(MakeSchema() == MakeSchema());
  Schema other = MakeSchema();
  other.AddColumn("extra", ValueType::kString);
  EXPECT_FALSE(MakeSchema() == other);
  EXPECT_EQ(MakeSchema().ToString(),
            "storeID:int64, qty:int64, price:double");
}

TEST(SchemaTest, ConstructFromVector) {
  Schema s(std::vector<Column>{{"a", ValueType::kInt64},
                               {"b", ValueType::kString}});
  EXPECT_EQ(s.NumColumns(), 2u);
  EXPECT_EQ(s.Resolve("b"), 1u);
}

}  // namespace
}  // namespace sdelta::rel
