// End-to-end flight-recorder tests (DESIGN.md §13.3): a synthetic
// regression injected mid-run must trip the anomaly detector and
// produce a complete, self-contained diagnostic bundle on disk whose
// JSON artifacts are deterministic across thread counts after time
// normalization.
#include <gtest/gtest.h>

#include <unistd.h>

#include <filesystem>
#include <fstream>
#include <limits>
#include <string>
#include <vector>

#include "core/delta.h"
#include "obs/anomaly.h"
#include "obs/event_log.h"
#include "obs/profiler.h"
#include "obs/timeseries.h"
#include "service/service.h"
#include "warehouse/retail_schema.h"
#include "warehouse/workload.h"

namespace sdelta::service {
namespace {

namespace fs = std::filesystem;

warehouse::RetailConfig SmallConfig() {
  warehouse::RetailConfig config;
  config.num_stores = 10;
  config.num_cities = 5;
  config.num_regions = 3;
  config.num_items = 50;
  config.num_categories = 6;
  config.num_dates = 20;
  config.num_pos_rows = 1200;
  config.seed = 77;
  return config;
}

/// The injected-regression rule: per-batch ingest volume (the counter's
/// delta) jumping past 3x its rolling mean, floored at 100 rows. Three
/// quiet batches are enough history for the baseline.
obs::AnomalyRule IngestVolumeRule() {
  obs::AnomalyRule rule;
  rule.metric = "service.append_rows";
  rule.delta = true;
  rule.factor = 3.0;
  rule.min_threshold = 100;
  rule.warmup = 3;
  return rule;
}

obs::Json ReadJsonFile(const fs::path& path) {
  std::ifstream in(path);
  std::string text((std::istreambuf_iterator<char>(in)),
                   std::istreambuf_iterator<char>());
  return obs::Json::Parse(text);
}

class FlightRecorderServiceTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = fs::temp_directory_path() /
           ("sdelta_flightrec_svc_" + std::to_string(::getpid()) + "_" +
            ::testing::UnitTest::GetInstance()->current_test_info()->name());
    fs::remove_all(dir_);
    mirror_ = warehouse::MakeRetailCatalog(SmallConfig());
  }
  void TearDown() override { fs::remove_all(dir_); }

  std::unique_ptr<WarehouseService> OpenService(
      WarehouseService::Options options = {}) {
    options.auto_batching = false;
    return WarehouseService::Open(dir_.string(),
                                  warehouse::MakeRetailCatalog(SmallConfig()),
                                  warehouse::RetailSummaryTables(), options);
  }

  void AppendAndFlush(WarehouseService& svc, size_t size, uint64_t seed) {
    core::ChangeSet changes =
        warehouse::MakeInsertionGeneratingChanges(mirror_, size, seed);
    core::ApplyChangeSet(mirror_, changes);
    svc.Append(std::move(changes));
    svc.Flush();
  }

  fs::path dir_;
  rel::Catalog mirror_;
};

TEST_F(FlightRecorderServiceTest, InjectedRegressionProducesCompleteBundle) {
  WarehouseService::Options options;
  options.profile = true;
  options.anomaly.enabled = true;
  options.anomaly.rules = {IngestVolumeRule()};
  auto svc = OpenService(std::move(options));

  // Six quiet batches of ~40 rows: the counter delta is flat, nothing
  // fires, no bundles on disk.
  for (uint64_t i = 1; i <= 6; ++i) AppendAndFlush(*svc, 40, i);
  ASSERT_NE(svc->anomalies(), nullptr);
  EXPECT_EQ(svc->anomalies()->detections(), 0u);
  ASSERT_NE(svc->flight_recorder(), nullptr);
  EXPECT_TRUE(svc->flight_recorder()->ListBundles().empty());

  // The injected regression: a 50x ingest spike mid-run.
  AppendAndFlush(*svc, 2000, 7);

  EXPECT_GE(svc->anomalies()->detections(), 1u);
  EXPECT_EQ(svc->metrics().counter("anomaly.detections"),
            svc->anomalies()->detections());
  const std::vector<std::string> bundles =
      svc->flight_recorder()->ListBundles();
  ASSERT_EQ(bundles.size(), 1u);
  EXPECT_EQ(bundles[0], "bundle-000001-batch7");

  // The bundle is self-contained: manifest plus every artifact the
  // service had enabled (events, profile, timeseries, the offending
  // batch's EXPLAIN ANALYZE, and the effective config).
  const fs::path bundle = fs::path(svc->data_dir()) / "flightrec" / bundles[0];
  for (const char* artifact :
       {"manifest.json", "events.json", "profile.json", "timeseries.json",
        "explain.json", "config.json"}) {
    EXPECT_TRUE(fs::exists(bundle / artifact)) << artifact;
  }

  const obs::Json manifest = ReadJsonFile(bundle / "manifest.json");
  EXPECT_EQ(manifest.Find("schema")->as_string(), "sdelta.flightrec.v1");
  EXPECT_EQ(manifest.Find("batch_id")->as_int(), 7);
  ASSERT_GE(manifest.Find("anomalies")->items().size(), 1u);
  const obs::Json& anomaly = manifest.Find("anomalies")->items()[0];
  EXPECT_EQ(anomaly.Find("kind")->as_string(), "threshold");
  EXPECT_EQ(anomaly.Find("metric")->as_string(), "service.append_rows");
  EXPECT_GT(anomaly.Find("value")->as_double(),
            anomaly.Find("threshold")->as_double());

  // Each artifact parses and self-identifies.
  EXPECT_EQ(ReadJsonFile(bundle / "events.json").Find("schema")->as_string(),
            "sdelta.events.v1");
  EXPECT_EQ(ReadJsonFile(bundle / "profile.json").Find("schema")->as_string(),
            "sdelta.profile.v1");
  EXPECT_EQ(
      ReadJsonFile(bundle / "timeseries.json").Find("schema")->as_string(),
      "sdelta.timeseries.v1");
  EXPECT_EQ(ReadJsonFile(bundle / "explain.json").Find("schema")->as_string(),
            "sdelta.explain.v1");
  const obs::Json config = ReadJsonFile(bundle / "config.json");
  EXPECT_EQ(config.Find("schema")->as_string(), "sdelta.config.v1");
  EXPECT_EQ(config.Find("anomaly")->Find("rules")->items().size(), 1u);

  // The detection is also on the correlated event timeline, pointing at
  // the bundle.
  EXPECT_EQ(svc->events().count(obs::EventType::kAnomaly), 1u);
  for (const obs::Event& e : svc->events().Snapshot()) {
    if (e.type == obs::EventType::kAnomaly) {
      EXPECT_EQ(e.batch_id, 7u);
      EXPECT_EQ(e.detail, bundles[0]);
    }
  }
  EXPECT_EQ(svc->metrics().counter("anomaly.bundles_written"), 1u);
}

TEST_F(FlightRecorderServiceTest, SloBurnTriggersBundle) {
  WarehouseService::Options options;
  options.anomaly.enabled = true;
  options.anomaly.rules = {};  // burn trigger only
  // A zero refresh-window target violates on every install, so the very
  // first batch torches the error budget.
  options.slo.refresh_window_seconds = 0.0;
  options.slow_query_threshold_seconds =
      std::numeric_limits<double>::infinity();
  auto svc = OpenService(std::move(options));

  AppendAndFlush(*svc, 40, 1);

  ASSERT_NE(svc->anomalies(), nullptr);
  EXPECT_GE(svc->anomalies()->detections(), 1u);
  const std::vector<std::string> bundles =
      svc->flight_recorder()->ListBundles();
  ASSERT_EQ(bundles.size(), 1u);
  const obs::Json manifest = ReadJsonFile(
      fs::path(svc->data_dir()) / "flightrec" / bundles[0] / "manifest.json");
  const obs::Json& anomaly = manifest.Find("anomalies")->items()[0];
  EXPECT_EQ(anomaly.Find("kind")->as_string(), "slo_burn");
  EXPECT_EQ(anomaly.Find("metric")->as_string(), "slo.burn_rate");
  EXPECT_GT(anomaly.Find("value")->as_double(), 1.0);

  // The same violation count does not re-trigger: a second quiet batch
  // writes no second bundle. (The window target still violates, so the
  // count rises and a new bundle IS expected — assert exactly that
  // instead: each install with new violations dumps once.)
  AppendAndFlush(*svc, 40, 2);
  EXPECT_EQ(svc->flight_recorder()->ListBundles().size(), 2u);
}

/// Runs the injected-regression workload at `num_threads` and returns
/// the bundle's JSON artifacts after time normalization.
struct BundleArtifacts {
  std::string events;
  std::string profile;
  std::string timeseries;
  std::string explain_doc;
};

BundleArtifacts RunWorkload(const fs::path& base, size_t num_threads) {
  const fs::path dir = base / ("t" + std::to_string(num_threads));
  fs::remove_all(dir);
  rel::Catalog mirror = warehouse::MakeRetailCatalog(SmallConfig());

  WarehouseService::Options options;
  options.auto_batching = false;
  options.warehouse.num_threads = num_threads;
  options.profile = true;
  options.anomaly.enabled = true;
  options.anomaly.rules = {IngestVolumeRule()};
  options.slow_query_threshold_seconds =
      std::numeric_limits<double>::infinity();
  auto svc = WarehouseService::Open(dir.string(),
                                    warehouse::MakeRetailCatalog(SmallConfig()),
                                    warehouse::RetailSummaryTables(), options);
  for (uint64_t i = 1; i <= 5; ++i) {
    core::ChangeSet changes =
        warehouse::MakeInsertionGeneratingChanges(mirror, 40, i);
    core::ApplyChangeSet(mirror, changes);
    svc->Append(std::move(changes));
    svc->Flush();
  }
  core::ChangeSet spike =
      warehouse::MakeInsertionGeneratingChanges(mirror, 2000, 6);
  core::ApplyChangeSet(mirror, spike);
  svc->Append(std::move(spike));
  svc->Flush();

  const std::vector<std::string> bundles =
      svc->flight_recorder()->ListBundles();
  EXPECT_EQ(bundles.size(), 1u);
  const fs::path bundle = fs::path(svc->data_dir()) / "flightrec" / bundles[0];

  BundleArtifacts result;
  obs::Json events = ReadJsonFile(bundle / "events.json");
  obs::NormalizeEventTimes(events);
  result.events = events.Dump(2);
  obs::Json profile = ReadJsonFile(bundle / "profile.json");
  obs::NormalizeProfileTimes(profile);
  result.profile = profile.Dump(2);
  obs::Json timeseries = ReadJsonFile(bundle / "timeseries.json");
  obs::NormalizeTimeSeries(timeseries);
  result.timeseries = timeseries.Dump(2);
  // The explain artifact's default rendering carries no timings at all.
  result.explain_doc = ReadJsonFile(bundle / "explain.json").Dump(2);
  svc->Stop();
  fs::remove_all(dir);
  return result;
}

TEST_F(FlightRecorderServiceTest, BundleArtifactsAreThreadCountInvariant) {
  const BundleArtifacts one = RunWorkload(dir_, 1);
  const BundleArtifacts two = RunWorkload(dir_, 2);
  const BundleArtifacts eight = RunWorkload(dir_, 8);

  EXPECT_EQ(one.events, two.events);
  EXPECT_EQ(one.events, eight.events);
  EXPECT_EQ(one.profile, two.profile);
  EXPECT_EQ(one.profile, eight.profile);
  EXPECT_EQ(one.timeseries, two.timeseries);
  EXPECT_EQ(one.timeseries, eight.timeseries);
  EXPECT_EQ(one.explain_doc, two.explain_doc);
  EXPECT_EQ(one.explain_doc, eight.explain_doc);
}

}  // namespace
}  // namespace sdelta::service
