// Crash-recovery acceptance test (ISSUE 5): kill the service after WAL
// append but before the refresh commit, restart, and require the
// replayed state to be byte-identical (CSV-identical summary tables) to
// an uninterrupted run — at num_threads = 1 and 8.
//
// The "crash" is simulated faithfully at the file level: acknowledged-
// but-unapplied change sets are appended straight to the WAL with a
// second WalWriter after the service is gone, which leaves exactly the
// on-disk state a kill between Append's WAL write and the maintenance
// loop's epoch install would leave.
#include <gtest/gtest.h>

#include <filesystem>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "core/delta.h"
#include "relational/csv.h"
#include "service/service.h"
#include "service/wal.h"
#include "warehouse/retail_schema.h"
#include "warehouse/warehouse.h"
#include "warehouse/workload.h"

namespace sdelta::service {
namespace {

namespace fs = std::filesystem;

warehouse::RetailConfig SmallConfig() {
  warehouse::RetailConfig config;
  config.num_stores = 12;
  config.num_cities = 5;
  config.num_regions = 3;
  config.num_items = 60;
  config.num_categories = 7;
  config.num_dates = 25;
  config.num_pos_rows = 1500;
  config.seed = 402;
  return config;
}

/// The change-set trajectory both the oracle and the service runs use.
std::vector<core::ChangeSet> MakeTrajectory() {
  rel::Catalog mirror = warehouse::MakeRetailCatalog(SmallConfig());
  std::vector<core::ChangeSet> out;
  const struct {
    int kind;  // 0 = update, 1 = insertion, 2 = recategorization
    size_t size;
    uint64_t seed;
  } specs[] = {{0, 120, 21}, {1, 90, 22},  {2, 4, 23},
               {0, 150, 24}, {1, 100, 25}, {0, 80, 26}};
  for (const auto& spec : specs) {
    core::ChangeSet changes;
    switch (spec.kind) {
      case 0:
        changes =
            warehouse::MakeUpdateGeneratingChanges(mirror, spec.size, spec.seed);
        break;
      case 1:
        changes = warehouse::MakeInsertionGeneratingChanges(mirror, spec.size,
                                                            spec.seed);
        break;
      default:
        changes =
            warehouse::MakeItemRecategorization(mirror, spec.size, spec.seed);
        break;
    }
    core::ApplyChangeSet(mirror, changes);
    out.push_back(std::move(changes));
  }
  return out;
}

/// Oracle: a plain warehouse applying one RunBatch per change set — the
/// uninterrupted (per-append-flush) run the recovered service must match.
std::map<std::string, std::string> OracleSummaries(
    const std::vector<core::ChangeSet>& trajectory) {
  warehouse::Warehouse wh(warehouse::MakeRetailCatalog(SmallConfig()));
  wh.DefineSummaryTables(warehouse::RetailSummaryTables());
  for (const core::ChangeSet& changes : trajectory) wh.RunBatch(changes);
  std::map<std::string, std::string> out;
  for (const core::AugmentedView& av : wh.vlattice().views) {
    out[av.name()] = rel::ToCsvString(wh.summary(av.name()).ToTable());
  }
  return out;
}

std::map<std::string, std::string> SnapshotSummaries(
    const WarehouseService& svc) {
  const ReadSnapshot snap = svc.Snapshot();
  std::map<std::string, std::string> out;
  for (const std::string& name : snap.ViewNames()) {
    out[name] = rel::ToCsvString(snap.view(name).ToTable());
  }
  return out;
}

class RecoveryTest : public ::testing::TestWithParam<size_t> {
 protected:
  void SetUp() override {
    dir_ = fs::temp_directory_path() /
           ("sdelta_recovery_" + std::to_string(::getpid()) + "_" +
            ::testing::UnitTest::GetInstance()->current_test_info()->name());
    fs::remove_all(dir_);
    dir_str_ = dir_.string();
  }
  void TearDown() override { fs::remove_all(dir_); }

  std::unique_ptr<WarehouseService> OpenService(size_t num_threads) {
    WarehouseService::Options options;
    options.auto_batching = false;
    options.warehouse.num_threads = num_threads;
    return WarehouseService::Open(dir_str_,
                                  warehouse::MakeRetailCatalog(SmallConfig()),
                                  warehouse::RetailSummaryTables(), options);
  }

  std::string WalPath() const { return (dir_ / "wal.log").string(); }

  fs::path dir_;
  std::string dir_str_;
};

TEST_P(RecoveryTest, ReplayAfterCrashIsByteIdentical) {
  const size_t threads = GetParam();
  const std::vector<core::ChangeSet> trajectory = MakeTrajectory();
  const auto oracle = OracleSummaries(trajectory);

  // Phase 1: the service durably accepts the first half and applies it.
  const size_t applied = 3;
  {
    auto svc = OpenService(threads);
    for (size_t i = 0; i < applied; ++i) {
      svc->Append(trajectory[i]);
      svc->Flush();
    }
  }  // clean shutdown — but NO checkpoint, so recovery replays from seq 1

  // Phase 2: the "crash". The remaining change sets reach the WAL (they
  // were acknowledged) but no batch ever commits them.
  {
    WalWriter writer(WalPath(), /*first_seq=*/1, /*sync=*/false);
    for (size_t i = applied; i < trajectory.size(); ++i) {
      writer.Append(i + 1, trajectory[i]);
    }
  }

  // Phase 3: restart. Open replays the full WAL through the batch path.
  auto svc = OpenService(threads);
  EXPECT_EQ(svc->GetStats().recovered_records, trajectory.size());
  EXPECT_EQ(svc->GetStats().last_seq, trajectory.size());
  EXPECT_EQ(SnapshotSummaries(*svc), oracle);
}

TEST_P(RecoveryTest, CheckpointTruncatesWalAndRecoveryReplaysOnlyTail) {
  const size_t threads = GetParam();
  const std::vector<core::ChangeSet> trajectory = MakeTrajectory();
  const auto oracle = OracleSummaries(trajectory);

  {
    auto svc = OpenService(threads);
    for (size_t i = 0; i < 4; ++i) {
      svc->Append(trajectory[i]);
      svc->Flush();
    }
    svc->Checkpoint();
    EXPECT_EQ(svc->GetStats().checkpoint_seq, 4u);
    EXPECT_EQ(svc->GetStats().checkpoints, 1u);
    // Two more acknowledged changes after the checkpoint...
    svc->Append(trajectory[4]);
    svc->Flush();
    svc->Append(trajectory[5]);
    svc->Flush();
    // ...then crash: drop the service. Seq 5 and 6 live only in the WAL.
  }

  auto svc = OpenService(threads);
  // Only the tail past the checkpoint is replayed.
  EXPECT_EQ(svc->GetStats().recovered_records, 2u);
  EXPECT_EQ(svc->GetStats().checkpoint_seq, 4u);
  EXPECT_EQ(svc->GetStats().last_seq, 6u);
  EXPECT_EQ(SnapshotSummaries(*svc), oracle);

  // The recovered service keeps working: checkpoint again and reopen.
  svc->Checkpoint();
  svc.reset();
  auto svc2 = OpenService(threads);
  EXPECT_EQ(svc2->GetStats().recovered_records, 0u);
  EXPECT_EQ(SnapshotSummaries(*svc2), oracle);
}

TEST_P(RecoveryTest, TornWalTailIsDiscarded) {
  const size_t threads = GetParam();
  const std::vector<core::ChangeSet> trajectory = MakeTrajectory();

  fs::create_directories(dir_);
  {
    WalWriter writer(WalPath(), 1, false);
    for (size_t i = 0; i < trajectory.size(); ++i) {
      writer.Append(i + 1, trajectory[i]);
    }
  }
  // Tear the last record mid-payload: it was never acknowledged.
  fs::resize_file(WalPath(), fs::file_size(WalPath()) - 11);

  std::vector<core::ChangeSet> acknowledged(trajectory.begin(),
                                            trajectory.end() - 1);
  const auto oracle = OracleSummaries(acknowledged);
  auto svc = OpenService(threads);
  EXPECT_EQ(svc->GetStats().recovered_records, acknowledged.size());
  EXPECT_EQ(SnapshotSummaries(*svc), oracle);
}

TEST_P(RecoveryTest, AppendsAfterTornTailRecoverySurviveNextCrash) {
  const size_t threads = GetParam();
  const std::vector<core::ChangeSet> trajectory = MakeTrajectory();
  const auto oracle = OracleSummaries(trajectory);

  // Seqs 1..4 reach the WAL; the seq-4 record is torn mid-payload.
  fs::create_directories(dir_);
  {
    WalWriter writer(WalPath(), 1, false);
    for (size_t i = 0; i < 4; ++i) writer.Append(i + 1, trajectory[i]);
  }
  fs::resize_file(WalPath(), fs::file_size(WalPath()) - 11);

  // First recovery discards the torn record and must truncate it, so
  // that the re-appended seq 4 and the new seq 5 land on the good
  // prefix — not after garbage bytes the next scan would stop at.
  {
    auto svc = OpenService(threads);
    EXPECT_EQ(svc->GetStats().recovered_records, 3u);
    EXPECT_EQ(svc->Append(trajectory[3]), 4u);
    svc->Flush();
    EXPECT_EQ(svc->Append(trajectory[4]), 5u);
    svc->Flush();
  }  // crash again: no checkpoint, seqs 4-5 live only in the WAL

  auto svc = OpenService(threads);
  EXPECT_EQ(svc->GetStats().recovered_records, 5u);
  EXPECT_EQ(svc->GetStats().last_seq, 5u);
  svc->Append(trajectory[5]);
  svc->Flush();
  EXPECT_EQ(SnapshotSummaries(*svc), oracle);
}

INSTANTIATE_TEST_SUITE_P(Threads, RecoveryTest, ::testing::Values(1, 8),
                         [](const ::testing::TestParamInfo<size_t>& info) {
                           return "threads" + std::to_string(info.param);
                         });

}  // namespace
}  // namespace sdelta::service
