#include "service/wal.h"

#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>
#include <fstream>
#include <vector>

#include "relational/csv.h"
#include "warehouse/retail_schema.h"
#include "warehouse/workload.h"

namespace sdelta::service {
namespace {

namespace fs = std::filesystem;

warehouse::RetailConfig SmallConfig() {
  warehouse::RetailConfig config;
  config.num_stores = 8;
  config.num_items = 40;
  config.num_pos_rows = 400;
  config.seed = 7;
  return config;
}

class WalTest : public ::testing::Test {
 protected:
  void SetUp() override {
    path_ = (fs::temp_directory_path() /
             ("sdelta_wal_" + std::to_string(::getpid()) + "_" +
              ::testing::UnitTest::GetInstance()->current_test_info()->name() +
              ".log"))
                .string();
    fs::remove(path_);
    catalog_ = warehouse::MakeRetailCatalog(SmallConfig());
  }
  void TearDown() override { fs::remove(path_); }

  core::ChangeSet MakeChanges(uint64_t seed) const {
    return warehouse::MakeUpdateGeneratingChanges(catalog_, 40, seed);
  }

  std::vector<WalRecord> ReplayAll(uint64_t after_seq,
                                   WalReplayReport* report = nullptr) const {
    std::vector<WalRecord> records;
    WalReplayReport r = ReplayWal(path_, catalog_, after_seq,
                                  [&](WalRecord rec) {
                                    records.push_back(std::move(rec));
                                  });
    if (report) *report = r;
    return records;
  }

  std::string path_;
  rel::Catalog catalog_;
};

std::string ChangesCsv(const core::ChangeSet& c) {
  std::string out = c.fact_table + "\n";
  out += rel::ToCsvString(c.fact.insertions);
  out += rel::ToCsvString(c.fact.deletions);
  for (const auto& [name, d] : c.dimensions) {
    out += name + "\n" + rel::ToCsvString(d.insertions) +
           rel::ToCsvString(d.deletions);
  }
  return out;
}

TEST_F(WalTest, EncodeDecodeRoundTrip) {
  core::ChangeSet changes = MakeChanges(11);
  // Add a dimension delta and some awkward values.
  core::ChangeSet recat = warehouse::MakeItemRecategorization(catalog_, 3, 5);
  changes.dimensions = std::move(recat.dimensions);
  const std::vector<uint8_t> payload = EncodeChangeSet(changes);
  const core::ChangeSet decoded = DecodeChangeSet(catalog_, payload);
  EXPECT_EQ(ChangesCsv(decoded), ChangesCsv(changes));
  // Deterministic encoding: identical change sets → identical bytes.
  EXPECT_EQ(EncodeChangeSet(decoded), payload);
}

TEST_F(WalTest, AppendAndReplay) {
  {
    WalWriter writer(path_, /*first_seq=*/1, /*sync=*/false);
    writer.Append(1, MakeChanges(1));
    writer.Append(2, MakeChanges(2));
    writer.Append(3, MakeChanges(3));
  }
  WalReplayReport report;
  const std::vector<WalRecord> records = ReplayAll(0, &report);
  ASSERT_EQ(records.size(), 3u);
  EXPECT_EQ(records[0].seq, 1u);
  EXPECT_EQ(records[2].seq, 3u);
  EXPECT_EQ(report.records, 3u);
  EXPECT_EQ(report.last_seq, 3u);
  EXPECT_FALSE(report.tail_truncated);
  EXPECT_EQ(ChangesCsv(records[1].changes), ChangesCsv(MakeChanges(2)));
}

TEST_F(WalTest, ReplayCutoffSkipsCheckpointedRecords) {
  {
    WalWriter writer(path_, 1, false);
    for (uint64_t seq = 1; seq <= 5; ++seq) writer.Append(seq, MakeChanges(seq));
  }
  WalReplayReport report;
  const std::vector<WalRecord> records = ReplayAll(/*after_seq=*/3, &report);
  ASSERT_EQ(records.size(), 2u);
  EXPECT_EQ(records[0].seq, 4u);
  EXPECT_EQ(records[1].seq, 5u);
  // The scan still verified the whole log.
  EXPECT_EQ(report.records, 5u);
}

TEST_F(WalTest, MissingFileIsEmptyLog) {
  WalReplayReport report;
  EXPECT_TRUE(ReplayAll(0, &report).empty());
  EXPECT_EQ(report.records, 0u);
  EXPECT_FALSE(report.tail_truncated);
}

// On-disk layout constants from wal.h: 16-byte header ("SDWAL1\n" +
// version + first_seq), 16-byte record frame (seq + len + crc).
constexpr size_t kHeaderBytes = 16;
constexpr size_t kFrameBytes = 16;

void OverwriteByte(const std::string& path, size_t offset, uint8_t value) {
  std::fstream f(path, std::ios::in | std::ios::out | std::ios::binary);
  f.seekp(static_cast<std::streamoff>(offset));
  f.put(static_cast<char>(value));
  ASSERT_TRUE(f.good());
}

TEST_F(WalTest, TornTailIsTruncatedCleanly) {
  size_t record1_bytes = 0;
  {
    WalWriter writer(path_, 1, false);
    record1_bytes = writer.Append(1, MakeChanges(1));
    writer.Append(2, MakeChanges(2));
  }
  // Chop bytes off the last record: replay keeps record 1, flags the tail.
  const auto full = fs::file_size(path_);
  fs::resize_file(path_, full - 7);
  WalReplayReport report;
  const std::vector<WalRecord> records = ReplayAll(0, &report);
  ASSERT_EQ(records.size(), 1u);
  EXPECT_EQ(records[0].seq, 1u);
  EXPECT_TRUE(report.tail_truncated);
  EXPECT_EQ(report.valid_bytes, kHeaderBytes + record1_bytes);

  // Appending after recovery requires truncating to valid_bytes first
  // (the service's Open does this); the new record then replays.
  fs::resize_file(path_, report.valid_bytes);
  {
    WalWriter writer(path_, 1, false);
    writer.Append(2, MakeChanges(12));
  }
  const std::vector<WalRecord> again = ReplayAll(0, &report);
  ASSERT_EQ(again.size(), 2u);
  EXPECT_EQ(again[1].seq, 2u);
  EXPECT_FALSE(report.tail_truncated);
  EXPECT_EQ(ChangesCsv(again[1].changes), ChangesCsv(MakeChanges(12)));
}

TEST_F(WalTest, CorruptLengthFieldTruncatesWithoutHugeAllocation) {
  size_t record1_bytes = 0;
  {
    WalWriter writer(path_, 1, false);
    record1_bytes = writer.Append(1, MakeChanges(1));
    writer.Append(2, MakeChanges(2));
  }
  // Smash record 2's length field to 0xFFFFFFFF (~4 GiB): replay must
  // stop at a clean torn tail, not attempt the allocation.
  const size_t len_off = kHeaderBytes + record1_bytes + 8;
  for (size_t i = 0; i < 4; ++i) OverwriteByte(path_, len_off + i, 0xFF);
  WalReplayReport report;
  const std::vector<WalRecord> records = ReplayAll(0, &report);
  ASSERT_EQ(records.size(), 1u);
  EXPECT_TRUE(report.tail_truncated);
  EXPECT_EQ(report.valid_bytes, kHeaderBytes + record1_bytes);
}

TEST_F(WalTest, CorruptSeqFieldFailsCrc) {
  size_t record1_bytes = 0;
  {
    WalWriter writer(path_, 1, false);
    record1_bytes = writer.Append(1, MakeChanges(1));
    writer.Append(2, MakeChanges(2));
  }
  // Flip a bit in record 2's sequence number: the frame CRC covers it,
  // so the record must not replay with a bogus seq.
  OverwriteByte(path_, kHeaderBytes + record1_bytes, 0x7F);
  WalReplayReport report;
  const std::vector<WalRecord> records = ReplayAll(0, &report);
  ASSERT_EQ(records.size(), 1u);
  EXPECT_EQ(records[0].seq, 1u);
  EXPECT_TRUE(report.tail_truncated);
}

TEST_F(WalTest, ZeroLengthFileIsEmptyLog) {
  std::ofstream(path_, std::ios::binary).close();
  ASSERT_EQ(fs::file_size(path_), 0u);
  WalReplayReport report;
  EXPECT_TRUE(ReplayAll(0, &report).empty());
  EXPECT_FALSE(report.tail_truncated);
  // A writer opened on the empty file lays down a header and appends.
  {
    WalWriter writer(path_, 1, false);
    writer.Append(1, MakeChanges(1));
  }
  EXPECT_EQ(ReplayAll(0, &report).size(), 1u);
}

TEST_F(WalTest, TornHeaderIsEmptyTruncatedLog) {
  std::ofstream(path_, std::ios::binary) << "SDW";  // crash mid-header
  WalReplayReport report;
  EXPECT_TRUE(ReplayAll(0, &report).empty());
  EXPECT_TRUE(report.tail_truncated);
  EXPECT_EQ(report.valid_bytes, 0u);
}

TEST_F(WalTest, CorruptPayloadStopsReplay) {
  {
    WalWriter writer(path_, 1, false);
    writer.Append(1, MakeChanges(1));
    writer.Append(2, MakeChanges(2));
    writer.Append(3, MakeChanges(3));
  }
  // Flip one byte in the middle record's payload region.
  const auto size = fs::file_size(path_);
  std::fstream f(path_, std::ios::in | std::ios::out | std::ios::binary);
  f.seekg(static_cast<std::streamoff>(size / 2));
  char b = 0;
  f.read(&b, 1);
  f.seekp(static_cast<std::streamoff>(size / 2));
  b = static_cast<char>(b ^ 0x5A);
  f.write(&b, 1);
  f.close();

  WalReplayReport report;
  const std::vector<WalRecord> records = ReplayAll(0, &report);
  EXPECT_LT(records.size(), 3u);
  EXPECT_TRUE(report.tail_truncated);
}

TEST_F(WalTest, ResetTruncatesAndAdvancesFirstSeq) {
  WalWriter writer(path_, 1, false);
  writer.Append(1, MakeChanges(1));
  writer.Append(2, MakeChanges(2));
  writer.Reset(/*first_seq=*/3);
  WalReplayReport report;
  EXPECT_TRUE(ReplayAll(0, &report).empty());
  EXPECT_EQ(report.first_seq, 3u);
  writer.Append(3, MakeChanges(3));
  const std::vector<WalRecord> records = ReplayAll(2, &report);
  ASSERT_EQ(records.size(), 1u);
  EXPECT_EQ(records[0].seq, 3u);
}

TEST_F(WalTest, Crc32KnownVector) {
  // The IEEE CRC-32 of "123456789" is 0xCBF43926.
  const char* s = "123456789";
  EXPECT_EQ(Crc32(reinterpret_cast<const uint8_t*>(s), 9), 0xCBF43926u);
}

}  // namespace
}  // namespace sdelta::service
