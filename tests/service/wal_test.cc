#include "service/wal.h"

#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>
#include <fstream>
#include <vector>

#include "relational/csv.h"
#include "warehouse/retail_schema.h"
#include "warehouse/workload.h"

namespace sdelta::service {
namespace {

namespace fs = std::filesystem;

warehouse::RetailConfig SmallConfig() {
  warehouse::RetailConfig config;
  config.num_stores = 8;
  config.num_items = 40;
  config.num_pos_rows = 400;
  config.seed = 7;
  return config;
}

class WalTest : public ::testing::Test {
 protected:
  void SetUp() override {
    path_ = (fs::temp_directory_path() /
             ("sdelta_wal_" + std::to_string(::getpid()) + "_" +
              ::testing::UnitTest::GetInstance()->current_test_info()->name() +
              ".log"))
                .string();
    fs::remove(path_);
    catalog_ = warehouse::MakeRetailCatalog(SmallConfig());
  }
  void TearDown() override { fs::remove(path_); }

  core::ChangeSet MakeChanges(uint64_t seed) const {
    return warehouse::MakeUpdateGeneratingChanges(catalog_, 40, seed);
  }

  std::vector<WalRecord> ReplayAll(uint64_t after_seq,
                                   WalReplayReport* report = nullptr) const {
    std::vector<WalRecord> records;
    WalReplayReport r = ReplayWal(path_, catalog_, after_seq,
                                  [&](WalRecord rec) {
                                    records.push_back(std::move(rec));
                                  });
    if (report) *report = r;
    return records;
  }

  std::string path_;
  rel::Catalog catalog_;
};

std::string ChangesCsv(const core::ChangeSet& c) {
  std::string out = c.fact_table + "\n";
  out += rel::ToCsvString(c.fact.insertions);
  out += rel::ToCsvString(c.fact.deletions);
  for (const auto& [name, d] : c.dimensions) {
    out += name + "\n" + rel::ToCsvString(d.insertions) +
           rel::ToCsvString(d.deletions);
  }
  return out;
}

TEST_F(WalTest, EncodeDecodeRoundTrip) {
  core::ChangeSet changes = MakeChanges(11);
  // Add a dimension delta and some awkward values.
  core::ChangeSet recat = warehouse::MakeItemRecategorization(catalog_, 3, 5);
  changes.dimensions = std::move(recat.dimensions);
  const std::vector<uint8_t> payload = EncodeChangeSet(changes);
  const core::ChangeSet decoded = DecodeChangeSet(catalog_, payload);
  EXPECT_EQ(ChangesCsv(decoded), ChangesCsv(changes));
  // Deterministic encoding: identical change sets → identical bytes.
  EXPECT_EQ(EncodeChangeSet(decoded), payload);
}

TEST_F(WalTest, AppendAndReplay) {
  {
    WalWriter writer(path_, /*first_seq=*/1, /*sync=*/false);
    writer.Append(1, MakeChanges(1));
    writer.Append(2, MakeChanges(2));
    writer.Append(3, MakeChanges(3));
  }
  WalReplayReport report;
  const std::vector<WalRecord> records = ReplayAll(0, &report);
  ASSERT_EQ(records.size(), 3u);
  EXPECT_EQ(records[0].seq, 1u);
  EXPECT_EQ(records[2].seq, 3u);
  EXPECT_EQ(report.records, 3u);
  EXPECT_EQ(report.last_seq, 3u);
  EXPECT_FALSE(report.tail_truncated);
  EXPECT_EQ(ChangesCsv(records[1].changes), ChangesCsv(MakeChanges(2)));
}

TEST_F(WalTest, ReplayCutoffSkipsCheckpointedRecords) {
  {
    WalWriter writer(path_, 1, false);
    for (uint64_t seq = 1; seq <= 5; ++seq) writer.Append(seq, MakeChanges(seq));
  }
  WalReplayReport report;
  const std::vector<WalRecord> records = ReplayAll(/*after_seq=*/3, &report);
  ASSERT_EQ(records.size(), 2u);
  EXPECT_EQ(records[0].seq, 4u);
  EXPECT_EQ(records[1].seq, 5u);
  // The scan still verified the whole log.
  EXPECT_EQ(report.records, 5u);
}

TEST_F(WalTest, MissingFileIsEmptyLog) {
  WalReplayReport report;
  EXPECT_TRUE(ReplayAll(0, &report).empty());
  EXPECT_EQ(report.records, 0u);
  EXPECT_FALSE(report.tail_truncated);
}

TEST_F(WalTest, TornTailIsTruncatedCleanly) {
  {
    WalWriter writer(path_, 1, false);
    writer.Append(1, MakeChanges(1));
    writer.Append(2, MakeChanges(2));
  }
  // Chop bytes off the last record: replay keeps record 1, flags the tail.
  const auto full = fs::file_size(path_);
  fs::resize_file(path_, full - 7);
  WalReplayReport report;
  const std::vector<WalRecord> records = ReplayAll(0, &report);
  ASSERT_EQ(records.size(), 1u);
  EXPECT_EQ(records[0].seq, 1u);
  EXPECT_TRUE(report.tail_truncated);

  // Appending after recovery continues the log past the good prefix.
  // (The service truncates via checkpoint; here we only check the torn
  // frame never yields a phantom record.)
}

TEST_F(WalTest, CorruptPayloadStopsReplay) {
  {
    WalWriter writer(path_, 1, false);
    writer.Append(1, MakeChanges(1));
    writer.Append(2, MakeChanges(2));
    writer.Append(3, MakeChanges(3));
  }
  // Flip one byte in the middle record's payload region.
  const auto size = fs::file_size(path_);
  std::fstream f(path_, std::ios::in | std::ios::out | std::ios::binary);
  f.seekg(static_cast<std::streamoff>(size / 2));
  char b = 0;
  f.read(&b, 1);
  f.seekp(static_cast<std::streamoff>(size / 2));
  b = static_cast<char>(b ^ 0x5A);
  f.write(&b, 1);
  f.close();

  WalReplayReport report;
  const std::vector<WalRecord> records = ReplayAll(0, &report);
  EXPECT_LT(records.size(), 3u);
  EXPECT_TRUE(report.tail_truncated);
}

TEST_F(WalTest, ResetTruncatesAndAdvancesFirstSeq) {
  WalWriter writer(path_, 1, false);
  writer.Append(1, MakeChanges(1));
  writer.Append(2, MakeChanges(2));
  writer.Reset(/*first_seq=*/3);
  WalReplayReport report;
  EXPECT_TRUE(ReplayAll(0, &report).empty());
  EXPECT_EQ(report.first_seq, 3u);
  writer.Append(3, MakeChanges(3));
  const std::vector<WalRecord> records = ReplayAll(2, &report);
  ASSERT_EQ(records.size(), 1u);
  EXPECT_EQ(records[0].seq, 3u);
}

TEST_F(WalTest, Crc32KnownVector) {
  // The IEEE CRC-32 of "123456789" is 0xCBF43926.
  const char* s = "123456789";
  EXPECT_EQ(Crc32(reinterpret_cast<const uint8_t*>(s), 9), 0xCBF43926u);
}

}  // namespace
}  // namespace sdelta::service
