// Concurrent-reader acceptance test (ISSUE 5): readers pinning
// snapshots and querying while the maintenance loop continuously
// installs new epochs must never observe a partially refreshed view.
//
// Invariant: within one snapshot, the total SUM(qty) is the same no
// matter which summary table answers it (region rollup vs date rollup)
// — a torn epoch, where one view is newer than another, breaks the
// equality because every batch strictly adds qty. CI runs this suite
// under TSAN as well, which proves data-race freedom of the
// epoch-swap/pin protocol.
#include <gtest/gtest.h>

#include <atomic>
#include <filesystem>
#include <thread>
#include <vector>

#include "core/delta.h"
#include "service/service.h"
#include "warehouse/retail_schema.h"
#include "warehouse/workload.h"

namespace sdelta::service {
namespace {

namespace fs = std::filesystem;

warehouse::RetailConfig SmallConfig() {
  warehouse::RetailConfig config;
  config.num_stores = 10;
  config.num_cities = 4;
  config.num_regions = 2;
  config.num_items = 40;
  config.num_categories = 5;
  config.num_dates = 15;
  config.num_pos_rows = 800;
  config.seed = 555;
  return config;
}

int64_t Total(const rel::Table& rows) {
  int64_t total = 0;
  const size_t col = rows.schema().NumColumns() - 1;
  for (const rel::Row& row : rows.MaterializeRows()) total += row[col].as_int64();
  return total;
}

TEST(ConcurrentReadersTest, SnapshotsAreAlwaysEpochConsistent) {
  const fs::path dir =
      fs::temp_directory_path() /
      ("sdelta_readers_" + std::to_string(::getpid()));
  fs::remove_all(dir);

  WarehouseService::Options options;
  options.auto_batching = true;
  options.queue.max_batch_rows = 64;  // install epochs aggressively
  options.queue.max_batch_delay_seconds = 0.001;
  options.warehouse.num_threads = 2;
  auto svc = WarehouseService::Open(dir.string(),
                                    warehouse::MakeRetailCatalog(SmallConfig()),
                                    warehouse::RetailSummaryTables(), options);

  std::atomic<bool> done{false};
  std::atomic<bool> failed{false};
  std::atomic<uint64_t> queries{0};

  constexpr int kReaders = 4;
  std::vector<std::thread> readers;
  readers.reserve(kReaders);
  for (int r = 0; r < kReaders; ++r) {
    readers.emplace_back([&] {
      uint64_t last_epoch = 0;
      while (!done.load(std::memory_order_acquire)) {
        const ReadSnapshot snap = svc->Snapshot();
        const int64_t by_region = Total(
            snap.Query("SELECT region, SUM(qty) AS q FROM pos, stores "
                       "WHERE pos.storeID = stores.storeID GROUP BY region")
                .rows);
        const int64_t by_date = Total(
            snap.Query("SELECT date, SUM(qty) AS q FROM pos GROUP BY date")
                .rows);
        if (by_region != by_date) {
          failed.store(true);
          ADD_FAILURE() << "torn snapshot at epoch " << snap.epoch() << ": "
                        << by_region << " (by region) vs " << by_date
                        << " (by date)";
          return;
        }
        if (snap.epoch() < last_epoch) {
          failed.store(true);
          ADD_FAILURE() << "epoch went backwards: " << last_epoch << " -> "
                        << snap.epoch();
          return;
        }
        last_epoch = snap.epoch();
        queries.fetch_add(2);
      }
    });
  }

  // Writer: a steady stream of qty-adding change sets.
  rel::Catalog mirror = warehouse::MakeRetailCatalog(SmallConfig());
  for (uint64_t i = 0; i < 25 && !failed.load(); ++i) {
    core::ChangeSet changes =
        warehouse::MakeInsertionGeneratingChanges(mirror, 60, 1000 + i);
    core::ApplyChangeSet(mirror, changes);
    svc->Append(std::move(changes));
  }
  svc->Flush();
  done.store(true, std::memory_order_release);
  for (std::thread& t : readers) t.join();

  EXPECT_FALSE(failed.load());
  EXPECT_GT(queries.load(), 0u);
  EXPECT_EQ(svc->GetStats().applied_seq, 25u);
  svc->Stop();
  svc.reset();
  fs::remove_all(dir);
}

}  // namespace
}  // namespace sdelta::service
