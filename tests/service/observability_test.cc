#include <gtest/gtest.h>

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <chrono>
#include <filesystem>
#include <limits>
#include <map>
#include <stdexcept>
#include <string>
#include <thread>
#include <vector>

#include "core/delta.h"
#include "obs/event_log.h"
#include "obs/timeseries.h"
#include "obs/trace.h"
#include "service/service.h"
#include "warehouse/retail_schema.h"
#include "warehouse/workload.h"

namespace sdelta::service {
namespace {

namespace fs = std::filesystem;

warehouse::RetailConfig SmallConfig() {
  warehouse::RetailConfig config;
  config.num_stores = 10;
  config.num_cities = 5;
  config.num_regions = 3;
  config.num_items = 50;
  config.num_categories = 6;
  config.num_dates = 20;
  config.num_pos_rows = 1200;
  config.seed = 77;
  return config;
}

constexpr char kRegionQuery[] =
    "SELECT region, SUM(qty) AS q FROM pos, stores "
    "WHERE pos.storeID = stores.storeID GROUP BY region";

/// One HTTP/1.0 GET against the service's loopback endpoint.
std::string Get(int port, const std::string& path) {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  EXPECT_GE(fd, 0);
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(static_cast<uint16_t>(port));
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof addr) != 0) {
    ::close(fd);
    ADD_FAILURE() << "connect failed for " << path;
    return {};
  }
  const std::string request = "GET " + path + " HTTP/1.0\r\n\r\n";
  EXPECT_EQ(::send(fd, request.data(), request.size(), 0),
            static_cast<ssize_t>(request.size()));
  std::string response;
  char buf[4096];
  ssize_t n = 0;
  while ((n = ::recv(fd, buf, sizeof buf, 0)) > 0) {
    response.append(buf, static_cast<size_t>(n));
  }
  ::close(fd);
  return response;
}

class ObservabilityTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = fs::temp_directory_path() /
           ("sdelta_obs_svc_" + std::to_string(::getpid()) + "_" +
            ::testing::UnitTest::GetInstance()->current_test_info()->name());
    fs::remove_all(dir_);
    mirror_ = warehouse::MakeRetailCatalog(SmallConfig());
  }
  void TearDown() override { fs::remove_all(dir_); }

  std::unique_ptr<WarehouseService> OpenService(
      WarehouseService::Options options = {}) {
    options.auto_batching = false;
    return WarehouseService::Open(dir_.string(),
                                  warehouse::MakeRetailCatalog(SmallConfig()),
                                  warehouse::RetailSummaryTables(), options);
  }

  core::ChangeSet NextChanges(size_t size, uint64_t seed) {
    core::ChangeSet changes =
        warehouse::MakeInsertionGeneratingChanges(mirror_, size, seed);
    core::ApplyChangeSet(mirror_, changes);
    return changes;
  }

  fs::path dir_;
  rel::Catalog mirror_;
};

TEST_F(ObservabilityTest, BatchIdsAreMonotonicAndCorrelateEvents) {
  auto svc = OpenService();
  for (uint64_t i = 1; i <= 3; ++i) {
    svc->Append(NextChanges(60, i));
    svc->Flush();
    EXPECT_EQ(svc->GetStats().last_batch_id, i);
  }

  const obs::EventLog& events = svc->events();
  EXPECT_EQ(events.count(obs::EventType::kBatchStart), 3u);
  EXPECT_EQ(events.count(obs::EventType::kBatchEnd), 3u);
  EXPECT_EQ(events.count(obs::EventType::kEpochInstall), 3u);

  // Every batch-lifecycle event carries the drain's batch_id, and the
  // ids the log saw are exactly 1, 2, 3 in order.
  std::vector<uint64_t> start_ids;
  for (const obs::Event& e : events.Snapshot()) {
    if (e.type == obs::EventType::kBatchStart) start_ids.push_back(e.batch_id);
    if (e.type == obs::EventType::kBatchEnd ||
        e.type == obs::EventType::kEpochInstall) {
      EXPECT_GT(e.batch_id, 0u);
    }
  }
  EXPECT_EQ(start_ids, (std::vector<uint64_t>{1, 2, 3}));
}

TEST_F(ObservabilityTest, TraceTreeConnectsBatchToWarehouseRuns) {
  obs::Tracer tracer;
  WarehouseService::Options options;
  options.tracer = &tracer;
  auto svc = OpenService(std::move(options));
  svc->Append(NextChanges(80, 1));
  svc->Flush();
  (void)svc->Snapshot().Query(kRegionQuery);
  svc->Stop();  // quiesce before reading spans

  uint64_t batch_id = 0, install_parent = 0, run_parent = 0;
  bool saw_append = false, saw_query = false;
  for (const obs::SpanRecord& span : tracer.spans()) {
    if (span.name == "service.batch") batch_id = span.id;
    if (span.name == "service.epoch_install") install_parent = span.parent_id;
    if (span.name == "warehouse.RunBatch") run_parent = span.parent_id;
    if (span.name == "service.append") saw_append = true;
    if (span.name == "service.query") saw_query = true;
  }
  ASSERT_GT(batch_id, 0u);
  // The warehouse's RunBatch span and the epoch install both hang off
  // the same service.batch root: one connected tree per drain.
  EXPECT_EQ(run_parent, batch_id);
  EXPECT_EQ(install_parent, batch_id);
  EXPECT_TRUE(saw_append);
  EXPECT_TRUE(saw_query);
}

TEST_F(ObservabilityTest, SlowQueryEventsCarryDistinctRequestIds) {
  WarehouseService::Options options;
  options.slow_query_threshold_seconds = 0.0;  // every query is "slow"
  auto svc = OpenService(std::move(options));
  (void)svc->Snapshot().Query(kRegionQuery);
  (void)svc->Snapshot().Query(kRegionQuery);

  EXPECT_EQ(svc->events().count(obs::EventType::kSlowQuery), 2u);
  EXPECT_EQ(svc->metrics().counter("service.slow_queries"), 2u);
  std::vector<uint64_t> request_ids;
  for (const obs::Event& e : svc->events().Snapshot()) {
    if (e.type == obs::EventType::kSlowQuery) request_ids.push_back(e.request_id);
  }
  ASSERT_EQ(request_ids.size(), 2u);
  EXPECT_GT(request_ids[0], 0u);
  EXPECT_LT(request_ids[0], request_ids[1]);
}

TEST_F(ObservabilityTest, RecoveryReplayIsRecordedAsAnEvent) {
  {
    auto svc = OpenService();
    // Appends reach the WAL; no Checkpoint, so the tail replays on the
    // next Open.
    svc->Append(NextChanges(50, 1));
    svc->Append(NextChanges(50, 2));
  }
  auto svc = OpenService();
  EXPECT_EQ(svc->GetStats().recovered_records, 2u);
  ASSERT_EQ(svc->events().count(obs::EventType::kRecoveryReplay), 1u);
  for (const obs::Event& e : svc->events().Snapshot()) {
    if (e.type == obs::EventType::kRecoveryReplay) {
      EXPECT_DOUBLE_EQ(e.value, 2.0);
    }
  }
}

TEST_F(ObservabilityTest, HealthzIsHealthyWhileServingAndNotAfterStop) {
  auto svc = OpenService();
  svc->Append(NextChanges(40, 1));
  svc->Flush();
  const WarehouseService::Health healthy = svc->CheckHealth();
  EXPECT_TRUE(healthy.wal_writable);
  EXPECT_TRUE(healthy.maintenance_alive);
  EXPECT_TRUE(healthy.queue_below_high_water);
  EXPECT_TRUE(healthy.slo_ok);
  EXPECT_TRUE(healthy.healthy());

  svc->Stop();
  EXPECT_FALSE(svc->CheckHealth().maintenance_alive);
  EXPECT_FALSE(svc->CheckHealth().healthy());
}

TEST_F(ObservabilityTest, HttpEndpointServesTheEightRoutes) {
  WarehouseService::Options options;
  options.http_port = 0;  // ephemeral loopback port
  options.profile = true;
  options.anomaly.enabled = true;
  auto svc = OpenService(std::move(options));
  svc->Append(NextChanges(60, 1));
  svc->Flush();
  const int port = svc->http_port();
  ASSERT_GT(port, 0);

  const std::string metrics = Get(port, "/metrics");
  EXPECT_NE(metrics.find("HTTP/1.0 200"), std::string::npos);
  EXPECT_NE(metrics.find("sdelta_service_appends_total 1"), std::string::npos);
  EXPECT_NE(metrics.find("sdelta_service_refresh_window_bucket"),
            std::string::npos);
  // The event-ring health gauges (capacity/occupancy/drop accounting).
  EXPECT_NE(metrics.find("sdelta_events_capacity 1024"), std::string::npos);
  EXPECT_NE(metrics.find("sdelta_events_occupancy"), std::string::npos);
  EXPECT_NE(metrics.find("sdelta_events_dropped 0"), std::string::npos);
  EXPECT_NE(metrics.find("sdelta_anomaly_checks_total"), std::string::npos);

  const std::string healthz = Get(port, "/healthz");
  EXPECT_NE(healthz.find("HTTP/1.0 200"), std::string::npos);
  EXPECT_NE(healthz.find("\"healthy\": true"), std::string::npos);

  EXPECT_NE(Get(port, "/varz").find("sdelta.obs.v2"), std::string::npos);
  EXPECT_NE(Get(port, "/epochs").find("\"epoch\": 2"), std::string::npos);
  EXPECT_NE(Get(port, "/events").find("sdelta.events.v1"), std::string::npos);

  // The historical layer's routes (DESIGN.md §13).
  const std::string timeseries = Get(port, "/timeseries");
  EXPECT_NE(timeseries.find("sdelta.timeseries.v1"), std::string::npos);
  EXPECT_NE(timeseries.find("service.appends"), std::string::npos);
  const std::string one_series =
      Get(port, "/timeseries?metric=service.appends");
  EXPECT_NE(one_series.find("\"metric\": \"service.appends\""),
            std::string::npos);
  EXPECT_NE(one_series.find("\"batch\": 1"), std::string::npos);
  EXPECT_NE(Get(port, "/profile").find("sdelta.profile.v1"),
            std::string::npos);
  EXPECT_NE(Get(port, "/profile?format=collapsed").find("warehouse.RunBatch"),
            std::string::npos);
  EXPECT_NE(Get(port, "/anomalies").find("sdelta.anomaly.v1"),
            std::string::npos);

  EXPECT_NE(Get(port, "/nope").find("HTTP/1.0 404"), std::string::npos);

  // Stop shuts the endpoint down with the service.
  svc->Stop();
  EXPECT_EQ(svc->http_port(), -1);
}

TEST_F(ObservabilityTest, DisabledDiagnosticsAnswerEnabledFalse) {
  WarehouseService::Options options;
  options.http_port = 0;
  options.timeseries_capacity = 0;  // profile/anomaly already default off
  auto svc = OpenService(std::move(options));
  const int port = svc->http_port();
  ASSERT_GT(port, 0);
  for (const char* path : {"/timeseries", "/profile", "/anomalies"}) {
    const std::string response = Get(port, path);
    EXPECT_NE(response.find("HTTP/1.0 200"), std::string::npos) << path;
    EXPECT_NE(response.find("\"enabled\": false"), std::string::npos) << path;
  }
  EXPECT_EQ(svc->timeseries(), nullptr);
  EXPECT_EQ(svc->profiler(), nullptr);
  EXPECT_EQ(svc->anomalies(), nullptr);
  EXPECT_EQ(svc->flight_recorder(), nullptr);
}

TEST_F(ObservabilityTest, HttpPortInUseSurfacesAsCatchableError) {
  // Occupy a loopback port so the service's bind must fail.
  const int blocker = ::socket(AF_INET, SOCK_STREAM, 0);
  ASSERT_GE(blocker, 0);
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(0);
  ASSERT_EQ(::bind(blocker, reinterpret_cast<sockaddr*>(&addr), sizeof addr),
            0);
  ASSERT_EQ(::listen(blocker, 1), 0);
  socklen_t len = sizeof addr;
  ASSERT_EQ(::getsockname(blocker, reinterpret_cast<sockaddr*>(&addr), &len),
            0);

  // Open must throw (not std::terminate): the endpoint starts before
  // the maintenance thread, so the constructor unwinds cleanly.
  WarehouseService::Options options;
  options.http_port = ntohs(addr.sin_port);
  EXPECT_THROW(OpenService(std::move(options)), std::runtime_error);
  ::close(blocker);
}

TEST_F(ObservabilityTest, StalledClientDoesNotBlockStop) {
  WarehouseService::Options options;
  options.http_port = 0;
  auto svc = OpenService(std::move(options));
  const int port = svc->http_port();
  ASSERT_GT(port, 0);

  // Connect and never send a byte: the acceptor thread ends up in the
  // in-flight read for this connection.
  const int stalled = ::socket(AF_INET, SOCK_STREAM, 0);
  ASSERT_GE(stalled, 0);
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(static_cast<uint16_t>(port));
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  ASSERT_EQ(::connect(stalled, reinterpret_cast<sockaddr*>(&addr),
                      sizeof addr),
            0);
  std::this_thread::sleep_for(std::chrono::milliseconds(100));

  // Stop's wake byte interrupts the connection poll; this returns well
  // before the 5s per-connection I/O budget (it used to hang forever).
  const auto start = std::chrono::steady_clock::now();
  svc->Stop();
  EXPECT_LT(std::chrono::steady_clock::now() - start,
            std::chrono::seconds(4));
  EXPECT_EQ(svc->http_port(), -1);
  ::close(stalled);
}

/// Runs the reference workload at `num_threads` and returns the
/// normalized events document plus the SLO counters. Everything
/// returned must be byte-identical across thread counts.
struct InvarianceResult {
  std::string events_json;
  std::string timeseries_json;
  uint64_t window_violations = 0;
  uint64_t staleness_violations = 0;
};

InvarianceResult RunWorkload(const fs::path& base, size_t num_threads) {
  const fs::path dir = base / ("t" + std::to_string(num_threads));
  fs::remove_all(dir);
  rel::Catalog mirror = warehouse::MakeRetailCatalog(SmallConfig());

  WarehouseService::Options options;
  options.auto_batching = false;
  options.warehouse.num_threads = num_threads;
  // Deterministic SLO accounting: a zero window target violates on
  // every install; an infinite slow-query threshold never fires.
  options.slo.refresh_window_seconds = 0.0;
  options.slow_query_threshold_seconds =
      std::numeric_limits<double>::infinity();
  auto svc = WarehouseService::Open(dir.string(),
                                    warehouse::MakeRetailCatalog(SmallConfig()),
                                    warehouse::RetailSummaryTables(), options);
  for (uint64_t i = 1; i <= 3; ++i) {
    core::ChangeSet changes =
        warehouse::MakeInsertionGeneratingChanges(mirror, 60, i);
    core::ApplyChangeSet(mirror, changes);
    svc->Append(std::move(changes));
    svc->Flush();
    (void)svc->Snapshot().Query(kRegionQuery);
  }
  svc->Checkpoint();

  InvarianceResult result;
  obs::Json events = svc->events().ToJson();
  obs::NormalizeEventTimes(events);
  result.events_json = events.Dump(2);
  // The per-batch metric history: counters must match exactly across
  // thread counts; gauges/percentiles carry timings and exec.* series
  // are pool-shaped, so normalization zeroes/drops them.
  obs::Json timeseries = svc->timeseries()->ToJson();
  obs::NormalizeTimeSeries(timeseries);
  result.timeseries_json = timeseries.Dump(2);
  result.window_violations = svc->slo().window_violations();
  result.staleness_violations = svc->slo().staleness_violations();
  svc->Stop();
  fs::remove_all(dir);
  return result;
}

TEST_F(ObservabilityTest, EventsAndSloCountersAreThreadCountInvariant) {
  const InvarianceResult one = RunWorkload(dir_, 1);
  const InvarianceResult two = RunWorkload(dir_, 2);
  const InvarianceResult eight = RunWorkload(dir_, 8);

  // Zero window target: every install (3 batches + 1 checkpoint flush
  // path installs nothing extra) violates deterministically.
  EXPECT_EQ(one.window_violations, 3u);
  EXPECT_EQ(one.staleness_violations, 0u);
  EXPECT_EQ(two.window_violations, one.window_violations);
  EXPECT_EQ(eight.window_violations, one.window_violations);
  EXPECT_EQ(two.staleness_violations, one.staleness_violations);
  EXPECT_EQ(eight.staleness_violations, one.staleness_violations);

  EXPECT_EQ(one.events_json, two.events_json);
  EXPECT_EQ(one.events_json, eight.events_json);
  EXPECT_EQ(one.timeseries_json, two.timeseries_json);
  EXPECT_EQ(one.timeseries_json, eight.timeseries_json);
}

}  // namespace
}  // namespace sdelta::service
