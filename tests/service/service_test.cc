#include "service/service.h"

#include <gtest/gtest.h>

#include <chrono>
#include <filesystem>
#include <thread>
#include <stdexcept>
#include <string>
#include <vector>

#include "core/delta.h"
#include "relational/csv.h"
#include "warehouse/retail_schema.h"
#include "warehouse/workload.h"

namespace sdelta::service {
namespace {

namespace fs = std::filesystem;

warehouse::RetailConfig SmallConfig() {
  warehouse::RetailConfig config;
  config.num_stores = 10;
  config.num_cities = 5;
  config.num_regions = 3;
  config.num_items = 50;
  config.num_categories = 6;
  config.num_dates = 20;
  config.num_pos_rows = 1200;
  config.seed = 77;
  return config;
}

constexpr char kRegionQuery[] =
    "SELECT region, SUM(qty) AS q FROM pos, stores "
    "WHERE pos.storeID = stores.storeID GROUP BY region";
constexpr char kDateQuery[] =
    "SELECT date, SUM(qty) AS q FROM pos GROUP BY date";

int64_t TotalOfLastColumn(const rel::Table& rows) {
  int64_t total = 0;
  const size_t col = rows.schema().NumColumns() - 1;
  for (const rel::Row& row : rows.MaterializeRows()) total += row[col].as_int64();
  return total;
}

int64_t QtyOf(const rel::Table& rows) {
  const size_t col = *rows.schema().IndexOf("qty");
  int64_t total = 0;
  for (const rel::Row& row : rows.MaterializeRows()) total += row[col].as_int64();
  return total;
}

class ServiceTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = fs::temp_directory_path() /
           ("sdelta_service_" + std::to_string(::getpid()) + "_" +
            ::testing::UnitTest::GetInstance()->current_test_info()->name());
    fs::remove_all(dir_);
    // The mirror catalog evolves in lockstep with the service's
    // warehouse, so workload generators see the same state.
    mirror_ = warehouse::MakeRetailCatalog(SmallConfig());
  }
  void TearDown() override { fs::remove_all(dir_); }

  std::unique_ptr<WarehouseService> OpenService(bool auto_batching = false,
                                                size_t num_threads = 1) {
    WarehouseService::Options options;
    options.auto_batching = auto_batching;
    options.warehouse.num_threads = num_threads;
    return WarehouseService::Open(dir_.string(),
                                  warehouse::MakeRetailCatalog(SmallConfig()),
                                  warehouse::RetailSummaryTables(), options);
  }

  /// Generates an insertion-generating change set from the mirror and
  /// applies it there, keeping the mirror in lockstep.
  core::ChangeSet NextChanges(size_t size, uint64_t seed) {
    core::ChangeSet changes =
        warehouse::MakeInsertionGeneratingChanges(mirror_, size, seed);
    core::ApplyChangeSet(mirror_, changes);
    return changes;
  }

  fs::path dir_;
  rel::Catalog mirror_;
};

TEST_F(ServiceTest, FreshOpenServesInitialEpoch) {
  auto svc = OpenService();
  const ReadSnapshot snap = svc->Snapshot();
  EXPECT_EQ(snap.epoch(), 1u);
  EXPECT_EQ(snap.NumViews(), 4u);
  const lattice::AnswerResult result = snap.Query(kRegionQuery);
  EXPECT_FALSE(result.from_base);
  EXPECT_GT(result.rows.NumRows(), 0u);
  const WarehouseService::Stats stats = svc->GetStats();
  EXPECT_EQ(stats.last_seq, 0u);
  EXPECT_EQ(stats.applied_seq, 0u);
  EXPECT_EQ(stats.epoch, 1u);
  EXPECT_EQ(stats.recovered_records, 0u);
}

TEST_F(ServiceTest, AppendFlushAdvancesEpochAndTotals) {
  auto svc = OpenService();
  const int64_t before = TotalOfLastColumn(svc->Snapshot().Query(kRegionQuery).rows);

  core::ChangeSet changes = NextChanges(100, 1);
  const int64_t delta_qty = QtyOf(changes.fact.insertions);
  const uint64_t seq = svc->Append(std::move(changes));
  EXPECT_EQ(seq, 1u);
  svc->Flush();

  const ReadSnapshot snap = svc->Snapshot();
  EXPECT_EQ(snap.epoch(), 2u);
  EXPECT_EQ(TotalOfLastColumn(snap.Query(kRegionQuery).rows),
            before + delta_qty);
  const WarehouseService::Stats stats = svc->GetStats();
  EXPECT_EQ(stats.last_seq, 1u);
  EXPECT_EQ(stats.applied_seq, 1u);
  EXPECT_EQ(stats.batches, 1u);
  EXPECT_EQ(stats.queue_changesets, 0u);
}

TEST_F(ServiceTest, PinnedSnapshotIsImmuneToLaterBatches) {
  auto svc = OpenService();
  const ReadSnapshot old_snap = svc->Snapshot();
  const std::string old_answer =
      rel::ToCsvString(old_snap.Query(kDateQuery).rows);

  svc->Append(NextChanges(150, 2));
  svc->Flush();
  svc->Append(NextChanges(150, 3));
  svc->Flush();

  // The pinned epoch still answers from its frozen tables.
  EXPECT_EQ(rel::ToCsvString(old_snap.Query(kDateQuery).rows), old_answer);
  EXPECT_EQ(old_snap.epoch(), 1u);
  // A fresh pin sees the new state.
  const ReadSnapshot new_snap = svc->Snapshot();
  EXPECT_EQ(new_snap.epoch(), 3u);
  EXPECT_NE(rel::ToCsvString(new_snap.Query(kDateQuery).rows), old_answer);
}

TEST_F(ServiceTest, FlushCoalescesQueuedChangeSets) {
  auto svc = OpenService();
  svc->Append(NextChanges(50, 4));
  svc->Append(NextChanges(50, 5));
  svc->Append(NextChanges(50, 6));
  svc->Flush();
  const WarehouseService::Stats stats = svc->GetStats();
  EXPECT_EQ(stats.last_seq, 3u);
  EXPECT_EQ(stats.applied_seq, 3u);
  // One maintenance batch applied all three queued change sets.
  EXPECT_EQ(stats.batches, 1u);
  EXPECT_EQ(svc->metrics().counter("service.coalesced_changesets"), 3u);
  EXPECT_EQ(svc->metrics().counter("service.appends"), 3u);
}

TEST_F(ServiceTest, EpochSharesUntouchedViewsAndRebuildsChangedOnes) {
  auto svc = OpenService();
  const ReadSnapshot before = svc->Snapshot();
  svc->Append(NextChanges(100, 7));
  svc->Flush();
  const ReadSnapshot after = svc->Snapshot();
  // Insertion-generating changes touch every retail view (they all see
  // qty), so nothing shares; the counters tell the story.
  EXPECT_EQ(svc->metrics().counter("service.epoch_views_rebuilt"),
            4u /*initial epoch*/ + 4u);
  EXPECT_EQ(svc->metrics().counter("service.epoch_views_shared"), 0u);
  EXPECT_EQ(before.epoch() + 1, after.epoch());
}

TEST_F(ServiceTest, SnapshotRejectsBaseOnlyQueries) {
  auto svc = OpenService();
  // Grouping by price is not derivable from any retail summary table.
  EXPECT_THROW(svc->Snapshot().Query(
                   "SELECT price, SUM(qty) AS q FROM pos GROUP BY price"),
               std::runtime_error);
}

TEST_F(ServiceTest, WithWriterAddsViewAndPublishesFreshEpoch) {
  auto svc = OpenService();
  svc->Append(NextChanges(80, 8));
  svc->Flush();
  svc->WithWriter([](warehouse::Warehouse& wh) {
    wh.AddSummaryTable(
        "CREATE VIEW city_sales AS SELECT city, SUM(qty) AS total_qty "
        "FROM pos, stores WHERE pos.storeID = stores.storeID GROUP BY city");
  });
  const ReadSnapshot snap = svc->Snapshot();
  EXPECT_EQ(snap.NumViews(), 5u);
  const lattice::AnswerResult result = snap.Query(
      "SELECT city, SUM(qty) AS q FROM pos, stores "
      "WHERE pos.storeID = stores.storeID GROUP BY city");
  EXPECT_FALSE(result.from_base);
  // Maintenance keeps the new view fresh.
  const int64_t before = TotalOfLastColumn(result.rows);
  core::ChangeSet changes = NextChanges(60, 9);
  const int64_t delta_qty = QtyOf(changes.fact.insertions);
  svc->Append(std::move(changes));
  svc->Flush();
  EXPECT_EQ(TotalOfLastColumn(svc->Snapshot()
                                  .Query("SELECT city, SUM(qty) AS q FROM pos, "
                                         "stores WHERE pos.storeID = "
                                         "stores.storeID GROUP BY city")
                                  .rows),
            before + delta_qty);
}

TEST_F(ServiceTest, DimensionChangesRefreshReaderCatalog) {
  auto svc = OpenService();
  core::ChangeSet recat =
      warehouse::MakeItemRecategorization(mirror_, 5, 10);
  core::ApplyChangeSet(mirror_, recat);
  svc->Append(std::move(recat));
  svc->Flush();
  // The category query still answers consistently from the snapshot.
  const lattice::AnswerResult result = svc->Snapshot().Query(
      "SELECT category, SUM(qty) AS q FROM pos, items "
      "WHERE pos.itemID = items.itemID GROUP BY category");
  EXPECT_FALSE(result.from_base);
  EXPECT_GT(result.rows.NumRows(), 0u);
}

TEST_F(ServiceTest, AppendAfterStopThrows) {
  auto svc = OpenService();
  svc->Append(NextChanges(30, 11));
  svc->Stop();
  EXPECT_THROW(svc->Append(NextChanges(30, 12)), std::runtime_error);
  // Stop drained: the first change set was applied.
  EXPECT_EQ(svc->GetStats().applied_seq, 1u);
}

TEST_F(ServiceTest, AutoBatchingAppliesWithoutExplicitFlush) {
  WarehouseService::Options options;
  options.auto_batching = true;
  options.queue.max_batch_rows = 1;          // apply as soon as possible
  options.queue.max_batch_delay_seconds = 0.001;
  auto svc = WarehouseService::Open(dir_.string(),
                                    warehouse::MakeRetailCatalog(SmallConfig()),
                                    warehouse::RetailSummaryTables(), options);
  svc->Append(NextChanges(40, 13));
  // Poll: the background loop must install without any Flush call.
  for (int i = 0; i < 2000 && svc->GetStats().applied_seq < 1; ++i) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  EXPECT_GE(svc->GetStats().applied_seq, 1u);
  EXPECT_GE(svc->Snapshot().epoch(), 2u);
}

TEST_F(ServiceTest, StatsAndWindowMetricsArePopulated) {
  auto svc = OpenService();
  svc->Append(NextChanges(100, 14));
  svc->Flush();
  const WarehouseService::Stats stats = svc->GetStats();
  EXPECT_GT(stats.last_refresh_window_seconds, 0.0);
  // The swap window is the pointer assignment: well under a millisecond
  // even on a loaded container.
  EXPECT_LT(stats.last_refresh_window_seconds, 0.1);
  EXPECT_EQ(svc->metrics().histogram("service.refresh_window").count, 1u);
  EXPECT_GT(svc->metrics().counter("service.wal_bytes"), 0u);
  const warehouse::BatchReport report = svc->LastReport();
  EXPECT_EQ(report.views.size(), 4u);
}

}  // namespace
}  // namespace sdelta::service
