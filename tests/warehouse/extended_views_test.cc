#include <gtest/gtest.h>

#include "oracle.h"
#include "test_util.h"
#include "warehouse/retail_schema.h"
#include "warehouse/warehouse.h"
#include "warehouse/workload.h"

namespace sdelta::warehouse {
namespace {

using core::ViewDef;
using rel::Expression;
using sdelta::testing::ExpectMaintainedEqualsRecomputed;

rel::Catalog SmallRetail() {
  RetailConfig config;
  config.num_stores = 10;
  config.num_items = 50;
  config.num_dates = 20;
  config.num_pos_rows = 1500;
  config.seed = 33;
  return MakeRetailCatalog(config);
}

core::ChangeSet Changes(const rel::Catalog& c) {
  return MakeUpdateGeneratingChanges(c, 200, 44);
}

TEST(ExtendedViewsTest, ViewWithPredicateMaintains) {
  // Only large sales: WHERE qty >= 5.
  ViewDef v;
  v.name = "big_sales";
  v.fact_table = "pos";
  v.group_by = {"storeID"};
  v.where = Expression::Ge(Expression::Column("qty"),
                           Expression::Literal(rel::Value::Int64(5)));
  v.aggregates = {rel::CountStar("n"),
                  rel::Sum(Expression::Column("qty"), "total")};
  ExpectMaintainedEqualsRecomputed(&SmallRetail, {v}, &Changes);
}

TEST(ExtendedViewsTest, PredicateOverDimensionAttribute) {
  // WHERE category <> 'cat0' — the predicate references a joined
  // dimension column, so pre-aggregation is refused but direct
  // propagation must still be exact.
  ViewDef v;
  v.name = "non_cat0";
  v.fact_table = "pos";
  v.joins = {core::DimensionJoin{"items", "itemID", "itemID"}};
  v.group_by = {"category"};
  v.where = Expression::Ne(Expression::Column("category"),
                           Expression::Literal(rel::Value::String("cat0")));
  v.aggregates = {rel::CountStar("n")};
  ExpectMaintainedEqualsRecomputed(&SmallRetail, {v}, &Changes);

  core::PropagateOptions preagg;
  preagg.preaggregate = true;
  ExpectMaintainedEqualsRecomputed(&SmallRetail, {v}, &Changes,
                                   core::RefreshOptions{}, preagg);
}

TEST(ExtendedViewsTest, ExpressionAggregates) {
  // SUM(qty*qty) and MAX(qty + date) exercise non-column arguments
  // through prepare-changes (Table 1's expr / -expr rows).
  ViewDef v;
  v.name = "exprs";
  v.fact_table = "pos";
  v.group_by = {"storeID"};
  v.aggregates = {
      rel::Sum(Expression::Multiply(Expression::Column("qty"),
                                    Expression::Column("qty")),
               "qty_sq"),
      rel::Max(Expression::Add(Expression::Column("qty"),
                               Expression::Column("date")),
               "odd_max")};
  ExpectMaintainedEqualsRecomputed(&SmallRetail, {v}, &Changes);
}

TEST(ExtendedViewsTest, AvgThroughFullMaintenance) {
  ViewDef v;
  v.name = "avg_view";
  v.fact_table = "pos";
  v.joins = {core::DimensionJoin{"stores", "storeID", "storeID"}};
  v.group_by = {"region"};
  v.aggregates = {rel::Avg(Expression::Column("qty"), "avg_qty")};
  // The physical table (SUM+COUNT) matches recomputation exactly...
  ExpectMaintainedEqualsRecomputed(&SmallRetail, {v}, &Changes);

  // ...and the logical read divides correctly after a batch.
  rel::Catalog c = SmallRetail();
  core::AugmentedView av = core::AugmentForSelfMaintenance(c, v);
  core::SummaryTable st(av, c);
  st.MaterializeFrom(c);
  core::ChangeSet changes = Changes(c);
  rel::Table sd = core::ComputeSummaryDelta(c, av, changes);
  core::ApplyChangeSet(c, changes);
  core::Refresh(c, st, sd);
  rel::Table logical = st.ToLogicalTable();
  rel::Table expected = core::LogicalRows(av, core::EvaluateView(c, av.physical));
  sdelta::testing::ExpectBagApproxEq(expected, logical);
}

TEST(ExtendedViewsTest, DoubleValuedSumMaintains) {
  // SUM(price) over doubles: incremental addition accumulates float
  // error, so compare with tolerance.
  ViewDef v;
  v.name = "revenue";
  v.fact_table = "pos";
  v.group_by = {"storeID"};
  v.aggregates = {rel::Sum(Expression::Column("price"), "revenue"),
                  rel::CountStar("n")};

  rel::Catalog c = SmallRetail();
  core::AugmentedView av = core::AugmentForSelfMaintenance(c, v);
  core::SummaryTable st(av, c);
  st.MaterializeFrom(c);
  for (uint64_t b = 0; b < 3; ++b) {
    core::ChangeSet changes = MakeUpdateGeneratingChanges(c, 150, 50 + b);
    rel::Table sd = core::ComputeSummaryDelta(c, av, changes);
    core::ApplyChangeSet(c, changes);
    core::Refresh(c, st, sd);
  }
  sdelta::testing::ExpectBagApproxEq(core::EvaluateView(c, av.physical),
                                     st.ToTable(), 1e-6);
}

TEST(ExtendedViewsTest, ScalarViewNoGroupBy) {
  // A grand-total view: GROUP BY nothing. Its summary table has exactly
  // one row whose group key is empty.
  ViewDef v;
  v.name = "grand_total";
  v.fact_table = "pos";
  v.group_by = {};
  v.aggregates = {rel::CountStar("n"),
                  rel::Sum(Expression::Column("qty"), "total")};
  ExpectMaintainedEqualsRecomputed(&SmallRetail, {v}, &Changes);
}

TEST(ExtendedViewsTest, WideLatticeOfEightViewsMaintains) {
  std::vector<ViewDef> views = RetailSummaryTables();
  auto add = [&views](const std::string& name,
                      std::vector<core::DimensionJoin> joins,
                      std::vector<std::string> group_by) {
    ViewDef v;
    v.name = name;
    v.fact_table = "pos";
    v.joins = std::move(joins);
    v.group_by = std::move(group_by);
    v.aggregates = {rel::CountStar("TotalCount"),
                    rel::Sum(Expression::Column("qty"), "TotalQuantity")};
    views.push_back(std::move(v));
  };
  add("SI_sales", {}, {"storeID", "itemID"});
  add("D_sales", {}, {"date"});
  add("iC_sales", {{"items", "itemID", "itemID"}}, {"category"});
  add("cC_sales",
      {{"stores", "storeID", "storeID"}, {"items", "itemID", "itemID"}},
      {"city", "category"});

  Warehouse wh(SmallRetail());
  wh.DefineSummaryTables(views);
  EXPECT_EQ(wh.NumSummaryTables(), 8u);
  wh.RunBatch(MakeUpdateGeneratingChanges(wh.catalog(), 200, 61));
  wh.RunBatch(MakeInsertionGeneratingChanges(wh.catalog(), 150, 62));
  for (const core::AugmentedView& av : wh.vlattice().views) {
    SCOPED_TRACE(av.name());
    sdelta::testing::ExpectBagEq(
        core::EvaluateView(wh.catalog(), av.physical),
        wh.summary(av.name()).ToTable());
  }
}

TEST(ExtendedViewsTest, TwoViewsSamePredicateShareLattice) {
  ViewDef parent;
  parent.name = "big_by_store_item";
  parent.fact_table = "pos";
  parent.group_by = {"storeID", "itemID"};
  parent.where = Expression::Ge(Expression::Column("qty"),
                                Expression::Literal(rel::Value::Int64(5)));
  parent.aggregates = {rel::CountStar("n"),
                       rel::Sum(Expression::Column("qty"), "total")};
  ViewDef child = parent;
  child.name = "big_by_store";
  child.group_by = {"storeID"};

  Warehouse wh(SmallRetail());
  wh.DefineSummaryTables({parent, child});
  ASSERT_EQ(wh.vlattice().edges.size(), 1u);  // child <= parent
  wh.RunBatch(MakeUpdateGeneratingChanges(wh.catalog(), 200, 63));
  for (const core::AugmentedView& av : wh.vlattice().views) {
    SCOPED_TRACE(av.name());
    sdelta::testing::ExpectBagEq(
        core::EvaluateView(wh.catalog(), av.physical),
        wh.summary(av.name()).ToTable());
  }
}

}  // namespace
}  // namespace sdelta::warehouse
