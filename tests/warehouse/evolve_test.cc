// Online evolution of the materialized set (§3.4's partially-
// materialized lattice in operation): summary tables can be added and
// dropped between batch windows without recomputing the untouched ones.
#include <gtest/gtest.h>

#include "test_util.h"
#include "warehouse/retail_schema.h"
#include "warehouse/warehouse.h"
#include "warehouse/workload.h"

namespace sdelta::warehouse {
namespace {

using core::ViewDef;
using rel::Expression;
using sdelta::testing::ExpectBagEq;

Warehouse MakeWarehouse() {
  RetailConfig config;
  config.num_stores = 12;
  config.num_items = 60;
  config.num_pos_rows = 2000;
  config.seed = 71;
  Warehouse wh(MakeRetailCatalog(config));
  // Start with only the top view.
  std::vector<ViewDef> views = {RetailSummaryTables()[0]};  // SID_sales
  wh.DefineSummaryTables(views);
  return wh;
}

void ExpectAllConsistent(const Warehouse& wh) {
  for (const core::AugmentedView& av : wh.vlattice().views) {
    SCOPED_TRACE(av.name());
    ExpectBagEq(core::EvaluateView(wh.catalog(), av.physical),
                wh.summary(av.name()).ToTable());
  }
}

TEST(EvolveTest, AddSummaryTableMaterializesFromParent) {
  Warehouse wh = MakeWarehouse();
  EXPECT_EQ(wh.NumSummaryTables(), 1u);

  wh.AddSummaryTable(RetailSummaryTables()[2]);  // SiC_sales
  EXPECT_EQ(wh.NumSummaryTables(), 2u);
  // It must have been derivable from SID_sales through the lattice.
  EXPECT_EQ(wh.vlattice().edges.size(), 1u);
  ExpectAllConsistent(wh);
}

TEST(EvolveTest, AddViaSqlText) {
  Warehouse wh = MakeWarehouse();
  wh.AddSummaryTable(
      "CREATE VIEW sR_sales(region, TotalCount, TotalQuantity) AS "
      "SELECT region, COUNT(*) AS TotalCount, SUM(qty) AS TotalQuantity "
      "FROM pos, stores WHERE pos.storeID = stores.storeID "
      "GROUP BY region");
  EXPECT_EQ(wh.NumSummaryTables(), 2u);
  ExpectAllConsistent(wh);
}

TEST(EvolveTest, DuplicateNameRejected) {
  Warehouse wh = MakeWarehouse();
  EXPECT_THROW(wh.AddSummaryTable(RetailSummaryTables()[0]),
               std::invalid_argument);
}

TEST(EvolveTest, MaintenanceContinuesAfterAdd) {
  Warehouse wh = MakeWarehouse();
  wh.RunBatch(MakeUpdateGeneratingChanges(wh.catalog(), 150, 1));
  wh.AddSummaryTable(RetailSummaryTables()[1]);  // sCD_sales
  wh.AddSummaryTable(RetailSummaryTables()[3]);  // sR_sales
  wh.RunBatch(MakeUpdateGeneratingChanges(wh.catalog(), 150, 2));
  wh.RunBatch(MakeInsertionGeneratingChanges(wh.catalog(), 100, 3));
  ExpectAllConsistent(wh);
}

TEST(EvolveTest, AddingSrReExtendsScd) {
  // Adding sR_sales after sCD_sales re-runs the §5.2 extension: sCD now
  // carries region and sR derives from it without a join.
  Warehouse wh = MakeWarehouse();
  wh.AddSummaryTable(RetailSummaryTables()[1]);  // sCD_sales (city,date)
  {
    const core::AugmentedView& scd = *[&] {
      for (const core::AugmentedView& av : wh.vlattice().views) {
        if (av.name() == "sCD_sales") return &av;
      }
      return static_cast<const core::AugmentedView*>(nullptr);
    }();
    EXPECT_EQ(scd.physical.group_by.size(), 2u);  // not yet extended
  }
  wh.AddSummaryTable(RetailSummaryTables()[3]);  // sR_sales
  for (const core::AugmentedView& av : wh.vlattice().views) {
    if (av.name() == "sCD_sales") {
      EXPECT_EQ(av.physical.group_by.size(), 3u);  // region added
    }
  }
  ExpectAllConsistent(wh);
  // And the refreshed schema keeps maintaining correctly.
  wh.RunBatch(MakeUpdateGeneratingChanges(wh.catalog(), 120, 4));
  ExpectAllConsistent(wh);
}

TEST(EvolveTest, DropRelinksLattice) {
  Warehouse wh = MakeWarehouse();
  for (size_t i = 1; i < 4; ++i) {
    wh.AddSummaryTable(RetailSummaryTables()[i]);
  }
  EXPECT_EQ(wh.NumSummaryTables(), 4u);
  // Drop the middle view sR derives from; sR must re-link to another
  // parent (SID or SiC) and stay maintainable.
  wh.DropSummaryTable("sCD_sales");
  EXPECT_EQ(wh.NumSummaryTables(), 3u);
  EXPECT_THROW(wh.summary("sCD_sales"), std::invalid_argument);
  wh.RunBatch(MakeUpdateGeneratingChanges(wh.catalog(), 120, 5));
  ExpectAllConsistent(wh);
}

TEST(EvolveTest, DropUnknownThrows) {
  Warehouse wh = MakeWarehouse();
  EXPECT_THROW(wh.DropSummaryTable("nope"), std::invalid_argument);
}

TEST(EvolveTest, UntouchedTablesKeepRowsOnAdd) {
  Warehouse wh = MakeWarehouse();
  // Mutate SID through a batch, then add an unrelated view; SID's rows
  // must be preserved (not rematerialized) — observable because the
  // preserved and rematerialized tables agree with the oracle either
  // way, so check object stability via row count equality pre/post.
  wh.RunBatch(MakeUpdateGeneratingChanges(wh.catalog(), 100, 6));
  const size_t before = wh.summary("SID_sales").NumRows();
  wh.AddSummaryTable(RetailSummaryTables()[2]);
  EXPECT_EQ(wh.summary("SID_sales").NumRows(), before);
  ExpectAllConsistent(wh);
}

}  // namespace
}  // namespace sdelta::warehouse
