#include "warehouse/workload.h"

#include <gtest/gtest.h>

#include <unordered_set>

#include "core/maintenance.h"
#include "core/propagate.h"
#include "core/refresh.h"
#include "test_util.h"
#include "warehouse/retail_schema.h"

namespace sdelta::warehouse {
namespace {

rel::Catalog Small() {
  RetailConfig config;
  config.num_pos_rows = 1000;
  config.num_dates = 20;
  config.seed = 1;
  return MakeRetailCatalog(config);
}

TEST(WorkloadTest, UpdateGeneratingHalfAndHalf) {
  rel::Catalog c = Small();
  core::ChangeSet changes = MakeUpdateGeneratingChanges(c, 200, 5);
  EXPECT_EQ(changes.fact.deletions.NumRows(), 100u);
  EXPECT_EQ(changes.fact.insertions.NumRows(), 100u);
  EXPECT_TRUE(changes.dimensions.empty());
}

TEST(WorkloadTest, UpdateGeneratingDeletionsExistInPos) {
  rel::Catalog c = Small();
  core::ChangeSet changes = MakeUpdateGeneratingChanges(c, 100, 6);
  rel::Table& pos = c.GetTable("pos");
  for (const rel::Row& r : changes.fact.deletions.MaterializeRows()) {
    EXPECT_TRUE(pos.EraseOneEqual(r)) << rel::RowToString(r);
  }
}

TEST(WorkloadTest, UpdateGeneratingInsertionsUseExistingValues) {
  rel::Catalog c = Small();
  core::ChangeSet changes = MakeUpdateGeneratingChanges(c, 100, 7);
  const rel::Table& pos = c.GetTable("pos");
  std::unordered_set<int64_t> dates;
  const size_t date_idx = pos.schema().Resolve("date");
  for (const rel::Row& r : pos.MaterializeRows()) dates.insert(r[date_idx].as_int64());
  for (const rel::Row& r : changes.fact.insertions.MaterializeRows()) {
    EXPECT_TRUE(dates.count(r[date_idx].as_int64()) > 0);
  }
}

TEST(WorkloadTest, InsertionGeneratingUsesOnlyNewDates) {
  rel::Catalog c = Small();
  core::ChangeSet changes = MakeInsertionGeneratingChanges(c, 150, 8);
  EXPECT_EQ(changes.fact.insertions.NumRows(), 150u);
  EXPECT_EQ(changes.fact.deletions.NumRows(), 0u);
  const size_t date_idx =
      changes.fact.insertions.schema().Resolve("date");
  for (const rel::Row& r : changes.fact.insertions.MaterializeRows()) {
    EXPECT_GT(r[date_idx].as_int64(), 20);  // beyond num_dates
  }
}

TEST(WorkloadTest, Deterministic) {
  rel::Catalog c = Small();
  core::ChangeSet a = MakeUpdateGeneratingChanges(c, 100, 9);
  core::ChangeSet b = MakeUpdateGeneratingChanges(c, 100, 9);
  EXPECT_TRUE(rel::Table::BagEquals(a.fact.insertions, b.fact.insertions));
  EXPECT_TRUE(rel::Table::BagEquals(a.fact.deletions, b.fact.deletions));
  core::ChangeSet d = MakeUpdateGeneratingChanges(c, 100, 10);
  EXPECT_FALSE(rel::Table::BagEquals(a.fact.insertions, d.fact.insertions));
}

TEST(WorkloadTest, RecategorizationIsBalancedDelta) {
  rel::Catalog c = Small();
  core::ChangeSet changes = MakeItemRecategorization(c, 15, 11);
  ASSERT_EQ(changes.dimensions.count("items"), 1u);
  const core::DeltaSet& d = changes.dimensions.at("items");
  EXPECT_EQ(d.insertions.NumRows(), 15u);
  EXPECT_EQ(d.deletions.NumRows(), 15u);
  EXPECT_TRUE(changes.fact.empty());
  // Every deleted row exists in items; every inserted row has a changed
  // category.
  rel::Table& items = c.GetTable("items");
  const size_t cat_idx = items.schema().Resolve("category");
  for (size_t i = 0; i < d.deletions.NumRows(); ++i) {
    EXPECT_TRUE(items.EraseOneEqual(d.deletions.RowAt(i)));
  }
  for (const rel::Row& r : d.insertions.MaterializeRows()) {
    EXPECT_NE(r[cat_idx].as_string().find("_moved"), std::string::npos);
  }
}

TEST(WorkloadTest, BackfillDatesPrecedeAllExistingDates) {
  rel::Catalog c = Small();
  core::ChangeSet changes = MakeBackfillChanges(c, 120, 13);
  EXPECT_EQ(changes.fact.insertions.NumRows(), 120u);
  EXPECT_TRUE(changes.fact.deletions.empty());
  const size_t date_idx = changes.fact.insertions.schema().Resolve("date");
  for (const rel::Row& r : changes.fact.insertions.MaterializeRows()) {
    EXPECT_LE(r[date_idx].as_int64(), 0);  // existing dates are >= 1
  }
}

TEST(WorkloadTest, BackfillMaintainsCorrectly) {
  rel::Catalog c = Small();
  core::ViewDef v = RetailSummaryTables()[2];  // SiC_sales with MIN(date)
  core::AugmentedView av = core::AugmentForSelfMaintenance(c, v);
  core::SummaryTable st(av, c);
  st.MaterializeFrom(c);
  core::ChangeSet changes = MakeBackfillChanges(c, 100, 14);
  rel::Table sd = core::ComputeSummaryDelta(c, av, changes);
  core::ApplyChangeSet(c, changes);
  core::RefreshStats stats = core::Refresh(c, st, sd);
  // Insert-only deltas are untainted: no recompute scans by default.
  EXPECT_EQ(stats.recompute_scan_rows, 0u);
  sdelta::testing::ExpectBagEq(core::EvaluateView(c, av.physical),
                               st.ToTable());
}

TEST(WorkloadTest, DeletionCapAtPosSize) {
  RetailConfig config;
  config.num_pos_rows = 10;
  rel::Catalog c = MakeRetailCatalog(config);
  core::ChangeSet changes = MakeUpdateGeneratingChanges(c, 100, 12);
  EXPECT_LE(changes.fact.deletions.NumRows(), 10u);
}

}  // namespace
}  // namespace sdelta::warehouse
