// A second star schema — web clickstream — proving the machinery is not
// retail-specific: events(userID, pageID, ts, dwell_ms) with user and
// page dimensions and their hierarchies (user -> country -> continent,
// page -> section).
#include <gtest/gtest.h>

#include <random>
#include <unordered_set>

#include "oracle.h"
#include "warehouse/warehouse.h"

namespace sdelta::warehouse {
namespace {

using core::ViewDef;
using rel::Expression;
using rel::Value;

rel::Catalog ClickstreamCatalog() {
  rel::Catalog c;
  std::mt19937_64 rng(99);

  rel::Schema users_s;
  users_s.AddColumn("userID", rel::ValueType::kInt64);
  users_s.AddColumn("country", rel::ValueType::kString);
  users_s.AddColumn("continent", rel::ValueType::kString);
  rel::Table users(users_s, "users");
  for (int64_t u = 1; u <= 50; ++u) {
    const int64_t country = u % 10;
    users.Insert({Value::Int64(u),
                  Value::String("country" + std::to_string(country)),
                  Value::String("continent" + std::to_string(country % 3))});
  }
  c.AddTable(std::move(users));

  rel::Schema pages_s;
  pages_s.AddColumn("pageID", rel::ValueType::kInt64);
  pages_s.AddColumn("section", rel::ValueType::kString);
  rel::Table pages(pages_s, "pages");
  for (int64_t p = 1; p <= 40; ++p) {
    pages.Insert({Value::Int64(p),
                  Value::String("section" + std::to_string(p % 8))});
  }
  c.AddTable(std::move(pages));

  rel::Schema events_s;
  events_s.AddColumn("userID", rel::ValueType::kInt64);
  events_s.AddColumn("pageID", rel::ValueType::kInt64);
  events_s.AddColumn("ts", rel::ValueType::kInt64);
  events_s.AddColumn("dwell_ms", rel::ValueType::kInt64);
  rel::Table events(events_s, "events");
  std::uniform_int_distribution<int64_t> user_d(1, 50);
  std::uniform_int_distribution<int64_t> page_d(1, 40);
  std::uniform_int_distribution<int64_t> ts_d(1, 1000);
  std::uniform_int_distribution<int64_t> dwell_d(10, 60000);
  for (int i = 0; i < 2000; ++i) {
    events.Insert({Value::Int64(user_d(rng)), Value::Int64(page_d(rng)),
                   Value::Int64(ts_d(rng)), Value::Int64(dwell_d(rng))});
  }
  events.EnableRowIndex();
  c.AddTable(std::move(events));

  c.DeclareForeignKey("events", "userID", "users", "userID");
  c.DeclareForeignKey("events", "pageID", "pages", "pageID");
  c.DeclareFunctionalDependency("users", "userID", "country");
  c.DeclareFunctionalDependency("users", "country", "continent");
  c.DeclareFunctionalDependency("pages", "pageID", "section");
  return c;
}

std::vector<ViewDef> ClickstreamViews() {
  std::vector<ViewDef> views;
  ViewDef by_user_page;
  by_user_page.name = "by_user_page";
  by_user_page.fact_table = "events";
  by_user_page.group_by = {"userID", "pageID"};
  by_user_page.aggregates = {
      rel::CountStar("hits"),
      rel::Sum(Expression::Column("dwell_ms"), "total_dwell"),
      rel::Max(Expression::Column("ts"), "last_seen")};
  views.push_back(by_user_page);

  ViewDef by_country_section;
  by_country_section.name = "by_country_section";
  by_country_section.fact_table = "events";
  by_country_section.joins = {
      core::DimensionJoin{"users", "userID", "userID"},
      core::DimensionJoin{"pages", "pageID", "pageID"}};
  by_country_section.group_by = {"country", "section"};
  by_country_section.aggregates = {
      rel::CountStar("hits"),
      rel::Avg(Expression::Column("dwell_ms"), "avg_dwell")};
  views.push_back(by_country_section);

  ViewDef by_continent;
  by_continent.name = "by_continent";
  by_continent.fact_table = "events";
  by_continent.joins = {core::DimensionJoin{"users", "userID", "userID"}};
  by_continent.group_by = {"continent"};
  by_continent.aggregates = {rel::CountStar("hits")};
  views.push_back(by_continent);
  return views;
}

core::ChangeSet RandomEventChanges(const rel::Catalog& c, uint64_t seed) {
  const rel::Table& events = c.GetTable("events");
  std::mt19937_64 rng(seed);
  core::ChangeSet changes;
  changes.fact_table = "events";
  changes.fact = core::DeltaSet(events.schema());
  std::uniform_int_distribution<size_t> pos_d(0, events.NumRows() - 1);
  std::uniform_int_distribution<int64_t> user_d(1, 50);
  std::uniform_int_distribution<int64_t> page_d(1, 40);
  std::uniform_int_distribution<int64_t> ts_d(1, 2000);
  std::uniform_int_distribution<int64_t> dwell_d(10, 60000);
  std::unordered_set<size_t> picked;
  while (picked.size() < 60) picked.insert(pos_d(rng));
  for (size_t p : picked) changes.fact.deletions.Insert(events.RowAt(p));
  for (int i = 0; i < 80; ++i) {
    changes.fact.insertions.Insert(
        {Value::Int64(user_d(rng)), Value::Int64(page_d(rng)),
         Value::Int64(ts_d(rng)), Value::Int64(dwell_d(rng))});
  }
  return changes;
}

TEST(ClickstreamTest, LatticeShape) {
  rel::Catalog c = ClickstreamCatalog();
  Warehouse wh(ClickstreamCatalog());
  wh.DefineSummaryTables(ClickstreamViews());
  // by_country_section and by_continent both derive from by_user_page;
  // by_continent also derives from by_country_section once the friendly
  // extension adds continent (country -> continent).
  const auto& l = wh.vlattice();
  ASSERT_EQ(l.Tops().size(), 1u);
  EXPECT_EQ(l.views[l.Tops()[0]].name(), "by_user_page");
  EXPECT_GE(l.edges.size(), 3u);
}

TEST(ClickstreamTest, MaintenanceMatchesOracleOverBatches) {
  Warehouse wh(ClickstreamCatalog());
  wh.DefineSummaryTables(ClickstreamViews());
  for (uint64_t b = 0; b < 4; ++b) {
    wh.RunBatch(RandomEventChanges(wh.catalog(), 100 + b));
  }
  for (const core::AugmentedView& av : wh.vlattice().views) {
    SCOPED_TRACE(av.name());
    sdelta::testing::ExpectBagEq(
        core::EvaluateView(wh.catalog(), av.physical),
        wh.summary(av.name()).ToTable());
  }
}

TEST(ClickstreamTest, MaxTimestampRecomputesOnDeletion) {
  // Deleting a user/page pair's latest event must recompute last_seen.
  rel::Catalog c = ClickstreamCatalog();
  core::AugmentedView av =
      core::AugmentForSelfMaintenance(c, ClickstreamViews()[0]);
  core::SummaryTable st(av, c);
  st.MaterializeFrom(c);

  // Find any group and its max-ts row.
  const rel::Row first = st.rows()[0];
  const int64_t user = first[0].as_int64();
  const int64_t page = first[1].as_int64();
  const int64_t last_seen = first[st.schema().Resolve("last_seen")]
                                .as_int64();
  // Locate a matching base row to delete.
  const rel::Table& events = c.GetTable("events");
  rel::Row victim;
  for (const rel::Row& r : events.MaterializeRows()) {
    if (r[0].as_int64() == user && r[1].as_int64() == page &&
        r[2].as_int64() == last_seen) {
      victim = r;
      break;
    }
  }
  ASSERT_FALSE(victim.empty());

  core::ChangeSet changes;
  changes.fact_table = "events";
  changes.fact = core::DeltaSet(events.schema());
  changes.fact.deletions.Insert(victim);
  rel::Table sd = core::ComputeSummaryDelta(c, av, changes);
  core::ApplyChangeSet(c, changes);
  core::RefreshStats stats = core::Refresh(c, st, sd);
  // Either the group emptied (deleted) or its MAX was recomputed.
  EXPECT_TRUE(stats.deleted == 1 || stats.recomputed_groups == 1);
  sdelta::testing::ExpectBagEq(core::EvaluateView(c, av.physical),
                               st.ToTable());
}

}  // namespace
}  // namespace sdelta::warehouse
