#include "warehouse/persistence.h"

#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>
#include <iterator>

#include "test_util.h"
#include "warehouse/retail_schema.h"
#include "warehouse/workload.h"

namespace sdelta::warehouse {
namespace {

namespace fs = std::filesystem;
using sdelta::testing::ExpectBagEq;

class PersistenceTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = fs::temp_directory_path() /
           ("sdelta_persist_" + std::to_string(::getpid()) + "_" +
            ::testing::UnitTest::GetInstance()->current_test_info()->name());
    fs::remove_all(dir_);
  }
  void TearDown() override { fs::remove_all(dir_); }

  std::string dir() const { return dir_.string(); }

  static RetailConfig SmallConfig() {
    RetailConfig config;
    config.num_stores = 8;
    config.num_items = 40;
    config.num_pos_rows = 600;
    config.seed = 21;
    return config;
  }

  fs::path dir_;
};

TEST_F(PersistenceTest, CatalogRoundTrip) {
  rel::Catalog original = MakeRetailCatalog(SmallConfig());
  SaveCatalog(original, dir());
  rel::Catalog loaded = LoadCatalog(dir());

  for (const std::string& name : original.TableNames()) {
    SCOPED_TRACE(name);
    ASSERT_TRUE(loaded.HasTable(name));
    ExpectBagEq(original.GetTable(name), loaded.GetTable(name));
    EXPECT_TRUE(loaded.GetTable(name).schema() ==
                original.GetTable(name).schema());
  }
  EXPECT_EQ(loaded.foreign_keys().size(), original.foreign_keys().size());
  EXPECT_EQ(loaded.functional_dependencies().size(),
            original.functional_dependencies().size());
  EXPECT_TRUE(loaded.GetTable("pos").row_index_enabled());
  EXPECT_FALSE(loaded.GetTable("stores").row_index_enabled());
}

TEST_F(PersistenceTest, WarehouseRoundTrip) {
  Warehouse original(MakeRetailCatalog(SmallConfig()));
  original.DefineSummaryTables(RetailSummaryTables());
  original.RunBatch(MakeUpdateGeneratingChanges(original.catalog(), 50, 3));
  SaveWarehouse(original, dir());

  Warehouse loaded = LoadWarehouse(dir(), RetailSummaryTables());
  ASSERT_EQ(loaded.NumSummaryTables(), 4u);
  for (const core::AugmentedView& av : original.vlattice().views) {
    SCOPED_TRACE(av.name());
    ExpectBagEq(original.summary(av.name()).ToTable(),
                loaded.summary(av.name()).ToTable());
  }
}

TEST_F(PersistenceTest, SaveLoadSaveIsByteIdentical) {
  // The columnar layout must not leak into the persisted form:
  // dictionary codes, storage modes, and null bitmaps are in-memory
  // artifacts, so save -> load -> save has to reproduce every file
  // byte for byte.
  Warehouse original(MakeRetailCatalog(SmallConfig()));
  original.DefineSummaryTables(RetailSummaryTables());
  original.RunBatch(MakeUpdateGeneratingChanges(original.catalog(), 50, 3));
  const std::string first = dir() + "_first";
  const std::string second = dir() + "_second";
  SaveWarehouse(original, first);

  Warehouse loaded = LoadWarehouse(first, RetailSummaryTables());
  SaveWarehouse(loaded, second);

  auto slurp = [](const fs::path& p) {
    std::ifstream in(p, std::ios::binary);
    return std::string(std::istreambuf_iterator<char>(in),
                       std::istreambuf_iterator<char>());
  };
  size_t files = 0;
  for (const auto& entry : fs::recursive_directory_iterator(first)) {
    if (!entry.is_regular_file()) continue;
    ++files;
    const fs::path rel_path = fs::relative(entry.path(), first);
    SCOPED_TRACE(rel_path.string());
    ASSERT_TRUE(fs::exists(second / rel_path));
    EXPECT_EQ(slurp(entry.path()), slurp(second / rel_path));
  }
  EXPECT_GT(files, 2u);  // manifest + base tables + summaries
  fs::remove_all(first);
  fs::remove_all(second);
}

TEST_F(PersistenceTest, LoadedWarehouseKeepsMaintaining) {
  Warehouse original(MakeRetailCatalog(SmallConfig()));
  original.DefineSummaryTables(RetailSummaryTables());
  SaveWarehouse(original, dir());

  Warehouse loaded = LoadWarehouse(dir(), RetailSummaryTables());
  loaded.RunBatch(MakeUpdateGeneratingChanges(loaded.catalog(), 60, 5));
  loaded.RunBatch(MakeInsertionGeneratingChanges(loaded.catalog(), 40, 6));
  for (const core::AugmentedView& av : loaded.vlattice().views) {
    SCOPED_TRACE(av.name());
    ExpectBagEq(core::EvaluateView(loaded.catalog(), av.physical),
                loaded.summary(av.name()).ToTable());
  }
}

TEST_F(PersistenceTest, ChangedDefinitionFailsLoudly) {
  Warehouse original(MakeRetailCatalog(SmallConfig()));
  original.DefineSummaryTables(RetailSummaryTables());
  SaveWarehouse(original, dir());

  // Drop an aggregate: the saved summary CSV no longer matches.
  std::vector<core::ViewDef> changed = RetailSummaryTables();
  changed[0].aggregates.pop_back();
  EXPECT_THROW(LoadWarehouse(dir(), changed), std::exception);
}

TEST_F(PersistenceTest, MissingDirectoryThrows) {
  EXPECT_THROW(LoadCatalog(dir() + "_nope"), std::runtime_error);
}

}  // namespace
}  // namespace sdelta::warehouse
