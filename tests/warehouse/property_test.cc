#include <gtest/gtest.h>

#include <tuple>

#include "test_util.h"
#include "warehouse/retail_schema.h"
#include "warehouse/warehouse.h"
#include "warehouse/workload.h"

namespace sdelta::warehouse {
namespace {

using sdelta::testing::ExpectBagEq;

enum class ChangeKind { kUpdate, kInsertion, kDimension, kMixed };

const char* ChangeKindName(ChangeKind k) {
  switch (k) {
    case ChangeKind::kUpdate: return "update";
    case ChangeKind::kInsertion: return "insertion";
    case ChangeKind::kDimension: return "dimension";
    case ChangeKind::kMixed: return "mixed";
  }
  return "?";
}

/// The end-to-end property: for any seed, change class, lattice mode and
/// refresh strategy, a sequence of incrementally maintained batches
/// leaves every summary table identical to recomputation.
using Param = std::tuple<uint64_t /*seed*/, ChangeKind,
                         bool /*use_lattice*/, core::RefreshStrategy>;

class MaintenanceProperty : public ::testing::TestWithParam<Param> {};

core::ChangeSet MakeChanges(const rel::Catalog& catalog, ChangeKind kind,
                            uint64_t seed) {
  switch (kind) {
    case ChangeKind::kUpdate:
      return MakeUpdateGeneratingChanges(catalog, 120, seed);
    case ChangeKind::kInsertion:
      return MakeInsertionGeneratingChanges(catalog, 120, seed);
    case ChangeKind::kDimension:
      return MakeItemRecategorization(catalog, 8, seed);
    case ChangeKind::kMixed: {
      core::ChangeSet changes = MakeUpdateGeneratingChanges(catalog, 80,
                                                            seed);
      core::ChangeSet dims = MakeItemRecategorization(catalog, 5, seed + 1);
      changes.dimensions = std::move(dims.dimensions);
      return changes;
    }
  }
  throw std::logic_error("unknown change kind");
}

TEST_P(MaintenanceProperty, IncrementalEqualsRecompute) {
  const auto [seed, kind, use_lattice, strategy] = GetParam();

  RetailConfig config;
  config.num_stores = 12;
  config.num_cities = 5;
  config.num_regions = 2;
  config.num_items = 60;
  config.num_categories = 6;
  config.num_dates = 15;
  config.num_pos_rows = 1200;
  config.seed = seed;

  Warehouse::Options options;
  options.use_lattice = use_lattice;
  options.refresh.strategy = strategy;

  Warehouse wh(MakeRetailCatalog(config), options);
  wh.DefineSummaryTables(RetailSummaryTables());

  // Three consecutive batch windows with varied change classes.
  for (uint64_t batch = 0; batch < 3; ++batch) {
    wh.RunBatch(MakeChanges(wh.catalog(), kind, seed * 100 + batch));
  }

  for (const core::AugmentedView& av : wh.vlattice().views) {
    SCOPED_TRACE(std::string(ChangeKindName(kind)) + " view " + av.name());
    ExpectBagEq(core::EvaluateView(wh.catalog(), av.physical),
                wh.summary(av.name()).ToTable());
  }
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, MaintenanceProperty,
    ::testing::Combine(
        ::testing::Values(uint64_t{1}, uint64_t{2}, uint64_t{3},
                          uint64_t{4}),
        ::testing::Values(ChangeKind::kUpdate, ChangeKind::kInsertion,
                          ChangeKind::kDimension, ChangeKind::kMixed),
        ::testing::Bool(),
        ::testing::Values(core::RefreshStrategy::kCursor,
                          core::RefreshStrategy::kMerge)),
    [](const ::testing::TestParamInfo<Param>& info) {
      return std::string("seed") + std::to_string(std::get<0>(info.param)) +
             "_" + ChangeKindName(std::get<1>(info.param)) +
             (std::get<2>(info.param) ? "_lattice" : "_direct") +
             (std::get<3>(info.param) == core::RefreshStrategy::kCursor
                  ? "_cursor"
                  : "_merge");
    });

/// A second property: propagate must never read the summary tables and
/// refresh must touch each summary tuple at most once — verified through
/// the accounting invariant |inserts| + |updates| + |deletes| +
/// |recomputes| <= |summary-delta rows| per view.
class RefreshAccounting : public ::testing::TestWithParam<uint64_t> {};

TEST_P(RefreshAccounting, EachDeltaTupleCausesOneChange) {
  RetailConfig config;
  config.num_pos_rows = 1500;
  config.seed = GetParam();
  Warehouse wh(MakeRetailCatalog(config), Warehouse::Options{});
  wh.DefineSummaryTables(RetailSummaryTables());
  BatchReport report =
      wh.RunBatch(MakeUpdateGeneratingChanges(wh.catalog(), 150,
                                              GetParam() + 1000));
  for (const ViewBatchReport& v : report.views) {
    SCOPED_TRACE(v.view);
    EXPECT_LE(v.refresh.inserted + v.refresh.updated + v.refresh.deleted +
                  v.refresh.recomputed_groups,
              v.delta_rows);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, RefreshAccounting,
                         ::testing::Values(uint64_t{10}, uint64_t{11},
                                           uint64_t{12}, uint64_t{13},
                                           uint64_t{14}));

}  // namespace
}  // namespace sdelta::warehouse
