#include "warehouse/warehouse.h"

#include <gtest/gtest.h>

#include "test_util.h"
#include "warehouse/retail_schema.h"
#include "warehouse/workload.h"

namespace sdelta::warehouse {
namespace {

using sdelta::testing::ExpectBagEq;

RetailConfig SmallConfig(uint64_t seed = 55) {
  RetailConfig config;
  config.num_stores = 15;
  config.num_cities = 6;
  config.num_regions = 3;
  config.num_items = 80;
  config.num_categories = 8;
  config.num_dates = 30;
  config.num_pos_rows = 2500;
  config.seed = seed;
  return config;
}

Warehouse MakeWarehouse(Warehouse::Options options = {},
                        uint64_t seed = 55) {
  Warehouse wh(MakeRetailCatalog(SmallConfig(seed)), options);
  wh.DefineSummaryTables(RetailSummaryTables());
  return wh;
}

TEST(WarehouseTest, DefineBuildsLatticeAndPlan) {
  Warehouse wh = MakeWarehouse();
  EXPECT_EQ(wh.NumSummaryTables(), 4u);
  EXPECT_EQ(wh.vlattice().edges.size(), 5u);  // Figure 8 + transitive
  EXPECT_EQ(wh.plan().steps.size(), 4u);
  EXPECT_GT(wh.summary("SID_sales").NumRows(), 0u);
  EXPECT_THROW(wh.summary("nope"), std::invalid_argument);
}

TEST(WarehouseTest, DefineTwiceThrows) {
  Warehouse wh = MakeWarehouse();
  EXPECT_THROW(wh.DefineSummaryTables(RetailSummaryTables()),
               std::logic_error);
}

TEST(WarehouseTest, BatchKeepsSummariesConsistent) {
  Warehouse wh = MakeWarehouse();
  const core::ChangeSet changes =
      MakeUpdateGeneratingChanges(wh.catalog(), 300, 61);
  BatchReport report = wh.RunBatch(changes);
  EXPECT_GT(report.propagate.delta_groups, 0u);
  EXPECT_GE(report.propagate_seconds, 0.0);
  ASSERT_EQ(report.views.size(), 4u);

  for (size_t i = 0; i < wh.vlattice().views.size(); ++i) {
    const core::AugmentedView& av = wh.vlattice().views[i];
    SCOPED_TRACE(av.name());
    ExpectBagEq(core::EvaluateView(wh.catalog(), av.physical),
                wh.summary(av.name()).ToTable());
  }
}

TEST(WarehouseTest, MultipleBatchesCompose) {
  Warehouse wh = MakeWarehouse();
  for (uint64_t b = 0; b < 3; ++b) {
    wh.RunBatch(MakeUpdateGeneratingChanges(wh.catalog(), 150, 70 + b));
    wh.RunBatch(MakeInsertionGeneratingChanges(wh.catalog(), 100, 80 + b));
  }
  for (const core::AugmentedView& av : wh.vlattice().views) {
    SCOPED_TRACE(av.name());
    ExpectBagEq(core::EvaluateView(wh.catalog(), av.physical),
                wh.summary(av.name()).ToTable());
  }
}

TEST(WarehouseTest, NoLatticeModeSameResults) {
  Warehouse::Options opts;
  opts.use_lattice = false;
  Warehouse wh = MakeWarehouse(opts);
  for (const lattice::PlanStep& s : wh.plan().steps) {
    EXPECT_FALSE(s.edge.has_value());
  }
  wh.RunBatch(MakeUpdateGeneratingChanges(wh.catalog(), 200, 62));
  for (const core::AugmentedView& av : wh.vlattice().views) {
    SCOPED_TRACE(av.name());
    ExpectBagEq(core::EvaluateView(wh.catalog(), av.physical),
                wh.summary(av.name()).ToTable());
  }
}

TEST(WarehouseTest, NotLatticeFriendlyStillCorrect) {
  Warehouse::Options opts;
  opts.lattice_friendly = false;
  Warehouse wh = MakeWarehouse(opts);
  // Without the region extension sR cannot derive from sCD, but the
  // lattice still has SID -> {sCD, SiC, sR}.
  EXPECT_EQ(wh.vlattice().edges.size(), 4u);
  wh.RunBatch(MakeUpdateGeneratingChanges(wh.catalog(), 200, 63));
  for (const core::AugmentedView& av : wh.vlattice().views) {
    SCOPED_TRACE(av.name());
    ExpectBagEq(core::EvaluateView(wh.catalog(), av.physical),
                wh.summary(av.name()).ToTable());
  }
}

TEST(WarehouseTest, PropagateOnlyDoesNotTouchState) {
  Warehouse wh = MakeWarehouse();
  const size_t pos_rows = wh.catalog().GetTable("pos").NumRows();
  const size_t sid_rows = wh.summary("SID_sales").NumRows();
  core::PropagateStats stats;
  const double secs = wh.PropagateOnly(
      MakeUpdateGeneratingChanges(wh.catalog(), 200, 64), &stats);
  EXPECT_GE(secs, 0.0);
  EXPECT_GT(stats.delta_groups, 0u);
  EXPECT_EQ(wh.catalog().GetTable("pos").NumRows(), pos_rows);
  EXPECT_EQ(wh.summary("SID_sales").NumRows(), sid_rows);
}

TEST(WarehouseTest, RematerializeAllMatchesMaintained) {
  // Two identical warehouses; one maintains incrementally, the other
  // rematerializes. They must agree.
  Warehouse incremental = MakeWarehouse({}, 91);
  Warehouse remat = MakeWarehouse({}, 91);
  const core::ChangeSet changes =
      MakeUpdateGeneratingChanges(incremental.catalog(), 250, 65);
  incremental.RunBatch(changes);
  const double secs = remat.RematerializeAll(changes);
  EXPECT_GE(secs, 0.0);
  for (const core::AugmentedView& av : incremental.vlattice().views) {
    SCOPED_TRACE(av.name());
    ExpectBagEq(remat.summary(av.name()).ToTable(),
                incremental.summary(av.name()).ToTable());
  }
}

TEST(WarehouseTest, MergeRefreshOption) {
  Warehouse::Options opts;
  opts.refresh.strategy = core::RefreshStrategy::kMerge;
  Warehouse wh = MakeWarehouse(opts);
  wh.RunBatch(MakeUpdateGeneratingChanges(wh.catalog(), 200, 66));
  for (const core::AugmentedView& av : wh.vlattice().views) {
    SCOPED_TRACE(av.name());
    ExpectBagEq(core::EvaluateView(wh.catalog(), av.physical),
                wh.summary(av.name()).ToTable());
  }
}

TEST(WarehouseTest, LogicalTableHidesAugmentation) {
  Warehouse wh = MakeWarehouse();
  const rel::Table logical = wh.summary("SiC_sales").ToLogicalTable();
  // Logical columns: storeID, category, TotalCount, EarliestSale,
  // TotalQuantity — no companion counts.
  EXPECT_EQ(logical.schema().NumColumns(), 5u);
}

TEST(WarehouseTest, BatchReportAccounting) {
  Warehouse wh = MakeWarehouse();
  BatchReport report =
      wh.RunBatch(MakeInsertionGeneratingChanges(wh.catalog(), 200, 67));
  const core::RefreshStats total = report.TotalRefresh();
  EXPECT_GT(total.inserted + total.updated, 0u);
  // Insertion-generating changes delete nothing.
  EXPECT_EQ(total.deleted, 0u);
  EXPECT_DOUBLE_EQ(report.maintenance_seconds(),
                   report.propagate_seconds + report.refresh_seconds);
}

}  // namespace
}  // namespace sdelta::warehouse
