#include "warehouse/retail_schema.h"

#include <gtest/gtest.h>

#include <map>

namespace sdelta::warehouse {
namespace {

TEST(RetailSchemaTest, SizesMatchConfig) {
  RetailConfig config;
  config.num_stores = 20;
  config.num_items = 100;
  config.num_pos_rows = 500;
  rel::Catalog c = MakeRetailCatalog(config);
  EXPECT_EQ(c.GetTable("stores").NumRows(), 20u);
  EXPECT_EQ(c.GetTable("items").NumRows(), 100u);
  EXPECT_EQ(c.GetTable("pos").NumRows(), 500u);
  EXPECT_TRUE(c.GetTable("pos").row_index_enabled());
}

TEST(RetailSchemaTest, DimensionHierarchyFdsHoldInData) {
  rel::Catalog c = MakeRetailCatalog(RetailConfig{});
  const rel::Table& stores = c.GetTable("stores");
  std::map<std::string, std::string> city_region;
  for (const rel::Row& r : stores.MaterializeRows()) {
    const std::string& city = r[1].as_string();
    const std::string& region = r[2].as_string();
    auto [it, inserted] = city_region.emplace(city, region);
    EXPECT_EQ(it->second, region) << "city -> region violated for " << city;
  }
  EXPECT_GT(city_region.size(), 1u);
}

TEST(RetailSchemaTest, PosReferentialIntegrity) {
  RetailConfig config;
  config.num_pos_rows = 300;
  rel::Catalog c = MakeRetailCatalog(config);
  const rel::Table& pos = c.GetTable("pos");
  for (const rel::Row& r : pos.MaterializeRows()) {
    const int64_t store = r[0].as_int64();
    const int64_t item = r[1].as_int64();
    EXPECT_GE(store, 1);
    EXPECT_LE(store, static_cast<int64_t>(config.num_stores));
    EXPECT_GE(item, 1);
    EXPECT_LE(item, static_cast<int64_t>(config.num_items));
  }
}

TEST(RetailSchemaTest, Deterministic) {
  RetailConfig config;
  config.num_pos_rows = 200;
  config.seed = 99;
  rel::Catalog a = MakeRetailCatalog(config);
  rel::Catalog b = MakeRetailCatalog(config);
  EXPECT_TRUE(rel::Table::BagEquals(a.GetTable("pos"), b.GetTable("pos")));
}

TEST(RetailSchemaTest, SummaryTableDefinitionsValidate) {
  rel::Catalog c = MakeRetailCatalog(RetailConfig{});
  const std::vector<core::ViewDef> views = RetailSummaryTables();
  ASSERT_EQ(views.size(), 4u);
  for (const core::ViewDef& v : views) {
    SCOPED_TRACE(v.name);
    EXPECT_NO_THROW(core::ValidateView(c, v));
  }
  EXPECT_EQ(views[0].name, "SID_sales");
  EXPECT_EQ(views[2].aggregates[1].kind, rel::AggregateKind::kMin);
}

}  // namespace
}  // namespace sdelta::warehouse
