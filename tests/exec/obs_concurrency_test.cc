// Thread-safety of the observability sinks under the execution engine:
// many pool tasks writing one MetricsRegistry / one Tracer at once.
// (Correct totals under contention; TSAN builds additionally check the
// locking itself.)
#include <gtest/gtest.h>

#include <atomic>
#include <string>
#include <vector>

#include "exec/parallel_for.h"
#include "exec/thread_pool.h"
#include "obs/metrics.h"
#include "obs/trace.h"

namespace sdelta {
namespace {

TEST(ObsConcurrencyTest, ConcurrentCounterAddsSumExactly) {
  obs::MetricsRegistry metrics;
  exec::ThreadPool pool(4);
  exec::TaskGroup group(&pool);
  constexpr int kTasks = 64;
  constexpr int kAddsPerTask = 1000;
  for (int t = 0; t < kTasks; ++t) {
    group.Spawn([&metrics] {
      for (int i = 0; i < kAddsPerTask; ++i) {
        metrics.Add("test.hits");
        metrics.Observe("test.value", 1.0);
      }
    });
  }
  group.Wait();
  EXPECT_EQ(metrics.counter("test.hits"),
            static_cast<uint64_t>(kTasks) * kAddsPerTask);
  const obs::Histogram h = metrics.histogram("test.value");
  EXPECT_EQ(h.count, static_cast<uint64_t>(kTasks) * kAddsPerTask);
  EXPECT_DOUBLE_EQ(h.sum, static_cast<double>(kTasks) * kAddsPerTask);
}

TEST(ObsConcurrencyTest, MergeFromAfterQuiesce) {
  obs::MetricsRegistry total;
  obs::MetricsRegistry scratch;
  scratch.Add("a", 3);
  scratch.Set("g", 2.5);
  total.Add("a", 1);
  total.MergeFrom(scratch);
  EXPECT_EQ(total.counter("a"), 4u);
  EXPECT_DOUBLE_EQ(total.gauge("g"), 2.5);
}

TEST(ObsConcurrencyTest, SpansFromManyThreadsNestPerThread) {
  obs::Tracer tracer;
  exec::ThreadPool pool(4);
  exec::TaskGroup group(&pool);
  constexpr int kTasks = 32;
  for (int t = 0; t < kTasks; ++t) {
    group.Spawn([&tracer, t] {
      obs::TraceSpan outer(&tracer, "task." + std::to_string(t));
      // Inner RAII span must parent on *this thread's* open span.
      obs::TraceSpan inner(&tracer, "inner");
      EXPECT_EQ(tracer.CurrentSpan(), inner.id());
    });
  }
  group.Wait();
  const auto& spans = tracer.spans();
  ASSERT_EQ(spans.size(), 2u * kTasks);
  // Every inner span's parent is a task.* span, and ids are unique.
  std::vector<bool> seen(spans.size() + 1, false);
  for (const auto& s : spans) {
    ASSERT_GE(s.id, 1u);
    ASSERT_LE(s.id, spans.size());
    EXPECT_FALSE(seen[s.id]);
    seen[s.id] = true;
    EXPECT_NE(s.end_ns, 0u);  // all closed
    if (s.name == "inner") {
      ASSERT_NE(s.parent_id, 0u);
      const auto& parent = spans[s.parent_id - 1];
      EXPECT_EQ(parent.name.rfind("task.", 0), 0u);
    } else {
      EXPECT_EQ(s.parent_id, 0u);  // task spans are roots on workers
    }
  }
}

TEST(ObsConcurrencyTest, ExplicitParentCrossesThreads) {
  // The propagate-wave shape: a phase span opened on the calling thread,
  // step spans opened on pool workers with the phase as explicit parent.
  obs::Tracer tracer;
  exec::ThreadPool pool(2);
  uint64_t phase_id = 0;
  {
    obs::TraceSpan phase(&tracer, "phase");
    phase_id = phase.id();
    exec::TaskGroup group(&pool);
    for (int i = 0; i < 8; ++i) {
      group.Spawn([&tracer, phase_id] {
        obs::TraceSpan step(&tracer, "step", phase_id);
      });
    }
    group.Wait();
  }
  int steps = 0;
  for (const auto& s : tracer.spans()) {
    if (s.name == "step") {
      ++steps;
      EXPECT_EQ(s.parent_id, phase_id);
    }
  }
  EXPECT_EQ(steps, 8);
}

TEST(ObsConcurrencyTest, CurrentSpanIsPerThread) {
  obs::Tracer tracer;
  obs::TraceSpan outer(&tracer, "caller-scope");
  exec::ThreadPool pool(2);
  exec::TaskGroup group(&pool);
  std::atomic<int> nonzero{0};
  for (int i = 0; i < 16; ++i) {
    group.Spawn([&tracer, &nonzero] {
      // A worker with no open spans must not see the caller's stack.
      if (tracer.CurrentSpan() != 0) nonzero.fetch_add(1);
    });
  }
  group.Wait();
  // The calling thread helps run tasks in Wait(), and *its* stack does
  // hold the outer span — so helped tasks legitimately observe it.
  // Worker-executed tasks must observe 0.
  const exec::PoolStats stats = pool.StatsSnapshot();
  EXPECT_LE(static_cast<uint64_t>(nonzero.load()), stats.tasks_helped);
  EXPECT_EQ(tracer.CurrentSpan(), outer.id());
}

}  // namespace
}  // namespace sdelta
