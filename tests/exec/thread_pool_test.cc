#include "exec/thread_pool.h"

#include <gtest/gtest.h>

#include <atomic>
#include <numeric>
#include <stdexcept>
#include <vector>

#include "exec/parallel_for.h"

namespace sdelta::exec {
namespace {

TEST(ThreadPoolTest, ResolveThreads) {
  EXPECT_EQ(ThreadPool::ResolveThreads(5), 5u);
  EXPECT_EQ(ThreadPool::ResolveThreads(1), 1u);
  EXPECT_GE(ThreadPool::ResolveThreads(0), 1u);  // hardware_concurrency
}

TEST(ThreadPoolTest, ParallelismCountsTheCaller) {
  ThreadPool pool(3);
  EXPECT_EQ(pool.num_workers(), 3u);
  EXPECT_EQ(pool.parallelism(), 4u);
}

TEST(MorselPlanTest, EmptyInput) {
  EXPECT_TRUE(MorselPlan::For(0).morsels.empty());
}

TEST(MorselPlanTest, SingleMorselBelowMinRows) {
  MorselPlan plan = MorselPlan::For(100, 4096);
  ASSERT_EQ(plan.morsels.size(), 1u);
  EXPECT_EQ(plan.morsels[0].begin, 0u);
  EXPECT_EQ(plan.morsels[0].end, 100u);
}

TEST(MorselPlanTest, ContiguousCoverageWithRemainder) {
  MorselPlan plan = MorselPlan::For(10, 4);
  ASSERT_EQ(plan.morsels.size(), 3u);  // ceil(10/4)
  size_t expected_begin = 0;
  size_t total = 0;
  for (const Morsel& m : plan.morsels) {
    EXPECT_EQ(m.begin, expected_begin);
    EXPECT_GT(m.end, m.begin);
    expected_begin = m.end;
    total += m.end - m.begin;
  }
  EXPECT_EQ(total, 10u);
  EXPECT_EQ(plan.morsels.back().end, 10u);
}

TEST(MorselPlanTest, CapsMorselCount) {
  MorselPlan plan = MorselPlan::For(1000000, 1);
  EXPECT_EQ(plan.morsels.size(), kMaxMorselsPerLoop);
  EXPECT_EQ(plan.morsels.back().end, 1000000u);
}

TEST(MorselPlanTest, PureFunctionOfInputSize) {
  // The determinism contract: the plan must not depend on anything but
  // (n, min_rows) — recomputing it yields identical ranges.
  MorselPlan a = MorselPlan::For(123457, 4096);
  MorselPlan b = MorselPlan::For(123457, 4096);
  ASSERT_EQ(a.morsels.size(), b.morsels.size());
  for (size_t i = 0; i < a.morsels.size(); ++i) {
    EXPECT_EQ(a.morsels[i].begin, b.morsels[i].begin);
    EXPECT_EQ(a.morsels[i].end, b.morsels[i].end);
  }
}

TEST(ParallelForTest, SerialWithoutPoolVisitsInOrder) {
  std::vector<size_t> seen;
  const size_t morsels =
      ParallelFor(nullptr, 10000, 1000, [&](size_t b, size_t e, size_t m) {
        EXPECT_EQ(m, seen.size() / 1000);  // morsels visited in order
        for (size_t i = b; i < e; ++i) seen.push_back(i);
      });
  EXPECT_EQ(morsels, 10u);
  ASSERT_EQ(seen.size(), 10000u);
  for (size_t i = 0; i < seen.size(); ++i) EXPECT_EQ(seen[i], i);
}

TEST(ParallelForTest, PoolCoversEveryIndexExactlyOnce) {
  ThreadPool pool(3);
  std::vector<std::atomic<int>> hits(20000);
  ParallelFor(&pool, hits.size(), 1000, [&](size_t b, size_t e, size_t) {
    for (size_t i = b; i < e; ++i) hits[i].fetch_add(1);
  });
  for (const auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(ParallelForTest, MorselCountIndependentOfWorkerCount) {
  ThreadPool small(1);
  ThreadPool large(7);
  std::atomic<uint64_t> sink{0};
  const auto fn = [&](size_t b, size_t e, size_t) { sink += e - b; };
  const size_t m1 = ParallelFor(&small, 50000, 4096, fn);
  const size_t m2 = ParallelFor(&large, 50000, 4096, fn);
  const size_t m0 = ParallelFor(nullptr, 50000, 4096, fn);
  EXPECT_EQ(m1, m2);
  EXPECT_EQ(m1, m0);
}

TEST(TaskGroupTest, RunsAllTasks) {
  ThreadPool pool(2);
  std::atomic<int> done{0};
  TaskGroup group(&pool);
  for (int i = 0; i < 100; ++i) {
    group.Spawn([&done] { done.fetch_add(1); });
  }
  group.Wait();
  EXPECT_EQ(done.load(), 100);
}

TEST(TaskGroupTest, ZeroWorkerPoolRunsEverythingInWait) {
  ThreadPool pool(0);
  std::atomic<int> done{0};
  TaskGroup group(&pool);
  for (int i = 0; i < 10; ++i) group.Spawn([&done] { done.fetch_add(1); });
  EXPECT_EQ(pool.num_workers(), 0u);
  group.Wait();
  EXPECT_EQ(done.load(), 10);
  // With no workers every execution is a "help" from the waiter.
  EXPECT_EQ(pool.StatsSnapshot().tasks_helped, 10u);
}

TEST(TaskGroupTest, NullPoolDefersToWaitInSpawnOrder) {
  TaskGroup group(nullptr);
  std::vector<int> order;
  for (int i = 0; i < 5; ++i) group.Spawn([&order, i] { order.push_back(i); });
  EXPECT_TRUE(order.empty());  // deferred, never inline in Spawn
  group.Wait();
  EXPECT_EQ(order, (std::vector<int>{0, 1, 2, 3, 4}));
}

TEST(TaskGroupTest, PropagatesFirstException) {
  ThreadPool pool(2);
  TaskGroup group(&pool);
  std::atomic<int> completed{0};
  group.Spawn([] { throw std::runtime_error("task failed"); });
  for (int i = 0; i < 20; ++i) {
    group.Spawn([&completed] { completed.fetch_add(1); });
  }
  EXPECT_THROW(group.Wait(), std::runtime_error);
  // Every non-throwing task still ran to completion before the rethrow.
  EXPECT_EQ(completed.load(), 20);
}

TEST(TaskGroupTest, NestedForkJoinDoesNotDeadlock) {
  // A task on the pool forks its own ParallelFor onto the same pool —
  // the propagate-wave-calls-parallel-GroupBy shape. Help-while-waiting
  // must drain the inner tasks even though every worker may be blocked
  // in an outer Wait.
  ThreadPool pool(2);
  std::atomic<uint64_t> total{0};
  TaskGroup outer(&pool);
  for (int t = 0; t < 8; ++t) {
    outer.Spawn([&pool, &total] {
      ParallelFor(&pool, 10000, 500, [&total](size_t b, size_t e, size_t) {
        uint64_t local = 0;
        for (size_t i = b; i < e; ++i) local += i;
        total.fetch_add(local);
      });
    });
  }
  outer.Wait();
  const uint64_t per_task = 10000ull * 9999ull / 2;
  EXPECT_EQ(total.load(), 8 * per_task);
}

TEST(ThreadPoolTest, StatsCountScheduledAndExecuted) {
  ThreadPool pool(2);
  const PoolStats before = pool.StatsSnapshot();
  TaskGroup group(&pool);
  for (int i = 0; i < 50; ++i) group.Spawn([] {});
  group.Wait();
  const PoolStats after = pool.StatsSnapshot();
  EXPECT_EQ(after.tasks_scheduled - before.tasks_scheduled, 50u);
  EXPECT_EQ((after.tasks_executed + after.tasks_helped) -
                (before.tasks_executed + before.tasks_helped),
            50u);
}

TEST(ThreadPoolTest, ParallelForRecordsMorsels) {
  ThreadPool pool(2);
  const PoolStats before = pool.StatsSnapshot();
  const size_t morsels = ParallelFor(&pool, 10000, 1000,
                                     [](size_t, size_t, size_t) {});
  const PoolStats after = pool.StatsSnapshot();
  EXPECT_EQ(morsels, 10u);
  EXPECT_EQ(after.morsels_scheduled - before.morsels_scheduled, 10u);
}

}  // namespace
}  // namespace sdelta::exec
