// Operator-level accounting (exec::OperatorStats): every relational
// operator records calls, rows in/out, morsel counts, and the join
// build/probe split — and the counts (everything but wall time) are
// identical with and without a thread pool, because morsel plans are a
// pure function of input sizes.
#include "exec/operator_stats.h"

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "exec/thread_pool.h"
#include "relational/operators.h"

namespace sdelta::rel {
namespace {

using E = Expression;

Table MakeSales(size_t rows) {
  Schema s;
  s.AddColumn("store", ValueType::kInt64);
  s.AddColumn("item", ValueType::kInt64);
  s.AddColumn("qty", ValueType::kInt64);
  Table t(s, "sales");
  for (size_t i = 0; i < rows; ++i) {
    t.Insert({Value::Int64(static_cast<int64_t>(i % 5)),
              Value::Int64(static_cast<int64_t>(10 + i % 2)),
              Value::Int64(static_cast<int64_t>(i % 7))});
  }
  return t;
}

Table MakeItems() {
  Schema s;
  s.AddColumn("item", ValueType::kInt64);
  s.AddColumn("cat", ValueType::kString);
  Table t(s, "items");
  t.Insert({Value::Int64(10), Value::String("food")});
  t.Insert({Value::Int64(11), Value::String("toys")});
  return t;
}

exec::OperatorStats RunPipeline(exec::ThreadPool* pool) {
  exec::OperatorStats stats;
  Table sales = MakeSales(100);
  Table filtered = Select(
      sales, E::Ge(E::Column("qty"), E::Literal(Value::Int64(1))), pool,
      &stats);
  Table projected = Project(filtered, {{"item", E::Column("item")},
                                       {"qty", E::Column("qty")}},
                            pool, &stats);
  Table joined = HashJoin(projected, MakeItems(), {{"item", "item"}}, "items",
                          /*drop_right_keys=*/true, pool, &stats);
  Table grouped =
      GroupBy(joined, GroupCols({"items.cat"}),
              {Sum(E::Column("qty"), "total")}, pool, &stats);
  Table unioned = UnionAll(grouped, grouped, &stats);
  return stats;
}

TEST(OperatorStatsTest, EveryOperatorRecordsRowsAndCalls) {
  const exec::OperatorStats stats = RunPipeline(nullptr);
  EXPECT_EQ(stats.select.calls, 1u);
  EXPECT_EQ(stats.select.rows_in, 100u);
  // qty in {0..6}: rows with qty == 0 (i % 7 == 0) drop out.
  EXPECT_EQ(stats.select.rows_out, 85u);
  EXPECT_EQ(stats.project.calls, 1u);
  EXPECT_EQ(stats.project.rows_in, 85u);
  EXPECT_EQ(stats.project.rows_out, 85u);
  EXPECT_EQ(stats.hash_join.calls, 1u);
  EXPECT_EQ(stats.hash_join.rows_in, 85u + 2u);  // probe + build
  EXPECT_EQ(stats.join_build_rows, 2u);
  EXPECT_EQ(stats.join_probe_rows, 85u);
  EXPECT_EQ(stats.hash_join.rows_out, 85u);
  EXPECT_EQ(stats.group_by.calls, 1u);
  EXPECT_EQ(stats.group_by.rows_in, 85u);
  EXPECT_EQ(stats.group_by.rows_out, 2u);  // food, toys
  EXPECT_EQ(stats.union_all.calls, 1u);
  EXPECT_EQ(stats.union_all.rows_out, 4u);
  EXPECT_EQ(stats.total_calls(), 5u);
}

TEST(OperatorStatsTest, CountsMatchAcrossSerialAndPooled) {
  const exec::OperatorStats serial = RunPipeline(nullptr);
  exec::ThreadPool pool(3);
  const exec::OperatorStats pooled = RunPipeline(&pool);

  // Everything but wall time is part of the determinism contract.
  auto counts_of = [](const exec::OperatorStats& s) {
    std::vector<uint64_t> out;
    exec::ForEachOperator(s, [&](const char*,
                                 const exec::OperatorCounters& c) {
      out.insert(out.end(), {c.calls, c.rows_in, c.rows_out, c.morsels});
    });
    out.push_back(s.join_build_rows);
    out.push_back(s.join_probe_rows);
    return out;
  };
  EXPECT_EQ(counts_of(serial), counts_of(pooled));
}

TEST(OperatorStatsTest, MergeFromAddsEverything) {
  exec::OperatorStats a = RunPipeline(nullptr);
  const exec::OperatorStats b = RunPipeline(nullptr);
  a.MergeFrom(b);
  EXPECT_EQ(a.select.calls, 2u);
  EXPECT_EQ(a.select.rows_in, 200u);
  EXPECT_EQ(a.join_build_rows, 4u);
  EXPECT_EQ(a.total_calls(), 10u);
}

TEST(OperatorStatsTest, NullStatsIsANoOp) {
  // The accounting hook must be optional: same results, no crash.
  Table out = Select(MakeSales(10),
                     E::Ge(E::Column("qty"), E::Literal(Value::Int64(0))));
  EXPECT_EQ(out.NumRows(), 10u);
}

}  // namespace
}  // namespace sdelta::rel
