// Satellite (c) of the parallel-engine issue: Warehouse::RunBatch must
// produce byte-identical summary tables at num_threads = 1, 2, and 8 on
// the retail schema, across randomized update- and insertion-generating
// batches with fixed seeds — and the pipeline's counter metrics must be
// identical too (modulo the exec.* family, which only exists when a
// pool is attached but is itself deterministic across pool sizes).
//
// Byte-identical means CSV-identical here: same rows, same order, same
// formatting. The retail views aggregate only int64 columns, so the
// double-SUM addition-order caveat (operators.h) does not apply.
#include <gtest/gtest.h>

#include <cstdint>
#include <filesystem>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "core/delta.h"
#include "obs/metrics.h"
#include "relational/csv.h"
#include "relational/packed_key.h"
#include "service/service.h"
#include "warehouse/retail_schema.h"
#include "warehouse/warehouse.h"
#include "warehouse/workload.h"

namespace sdelta::warehouse {
namespace {

RetailConfig SmallConfig() {
  RetailConfig config;
  config.num_stores = 15;
  config.num_cities = 6;
  config.num_regions = 3;
  config.num_items = 80;
  config.num_categories = 8;
  config.num_dates = 30;
  config.num_pos_rows = 2500;
  config.seed = 913;
  return config;
}

struct Instance {
  size_t threads;
  obs::MetricsRegistry metrics;
  Warehouse wh;

  explicit Instance(size_t num_threads)
      : threads(num_threads),
        wh(MakeRetailCatalog(SmallConfig()), MakeOptions(num_threads, &metrics)) {
    wh.DefineSummaryTables(RetailSummaryTables());
  }

  static Warehouse::Options MakeOptions(size_t num_threads,
                                        obs::MetricsRegistry* metrics) {
    Warehouse::Options options;
    options.num_threads = num_threads;
    options.metrics = metrics;
    return options;
  }

  /// All summary tables rendered to CSV, keyed by view name.
  std::map<std::string, std::string> Snapshot() const {
    std::map<std::string, std::string> out;
    for (const core::AugmentedView& av : wh.vlattice().views) {
      out[av.name()] = rel::ToCsvString(wh.summary(av.name()).ToTable());
    }
    return out;
  }

  /// Counters split into the exec.* family and everything else.
  std::map<std::string, uint64_t> PipelineCounters() const {
    std::map<std::string, uint64_t> out;
    for (const auto& [name, value] : metrics.Snapshot().counters) {
      if (name.rfind("exec.", 0) != 0) out[name] = value;
    }
    return out;
  }
  std::map<std::string, uint64_t> ExecCounters() const {
    std::map<std::string, uint64_t> out;
    for (const auto& [name, value] : metrics.Snapshot().counters) {
      if (name.rfind("exec.", 0) == 0) out[name] = value;
    }
    return out;
  }
};

TEST(DeterminismTest, RunBatchByteIdenticalAcrossThreadCounts) {
  Instance serial(1);
  Instance two(2);
  Instance eight(8);
  ASSERT_EQ(serial.wh.num_threads(), 1u);
  ASSERT_EQ(serial.wh.pool(), nullptr);
  ASSERT_EQ(two.wh.num_threads(), 2u);
  ASSERT_NE(two.wh.pool(), nullptr);
  ASSERT_EQ(eight.wh.num_threads(), 8u);

  // Initial materialization must already agree.
  EXPECT_EQ(serial.Snapshot(), two.Snapshot());
  EXPECT_EQ(serial.Snapshot(), eight.Snapshot());

  struct BatchSpec {
    bool insertion;
    size_t size;
    uint64_t seed;
  };
  const std::vector<BatchSpec> batches = {
      {false, 400, 101}, {true, 300, 202}, {false, 500, 303}, {true, 200, 404}};

  for (const BatchSpec& b : batches) {
    SCOPED_TRACE("batch seed " + std::to_string(b.seed));
    for (Instance* inst : {&serial, &two, &eight}) {
      // Catalogs evolve in lockstep, so each instance generates an
      // identical change set from its own catalog with the shared seed.
      const core::ChangeSet changes =
          b.insertion
              ? MakeInsertionGeneratingChanges(inst->wh.catalog(), b.size, b.seed)
              : MakeUpdateGeneratingChanges(inst->wh.catalog(), b.size, b.seed);
      inst->wh.RunBatch(changes);
    }
    const auto expected = serial.Snapshot();
    EXPECT_EQ(expected, two.Snapshot());
    EXPECT_EQ(expected, eight.Snapshot());
  }

  // Pipeline counters (rows scanned, delta rows, refresh updates, ...)
  // must not depend on the thread count at all.
  const auto base_counters = serial.PipelineCounters();
  EXPECT_FALSE(base_counters.empty());
  EXPECT_EQ(base_counters, two.PipelineCounters());
  EXPECT_EQ(base_counters, eight.PipelineCounters());

  // exec.* counters (tasks, morsels, waves) are a pure function of the
  // work, never of the worker count — 2 threads and 8 threads agree.
  EXPECT_TRUE(serial.ExecCounters().empty());  // no pool, no exec metrics
  const auto exec_counters = two.ExecCounters();
  EXPECT_FALSE(exec_counters.empty());
  EXPECT_EQ(exec_counters, eight.ExecCounters());
}

TEST(DeterminismTest, PackedAndBoxedKeyPathsProduceIdenticalBatches) {
  // The packed-key fast path must be invisible in the results: the same
  // batch sequence with packed keys globally disabled yields the same
  // CSV snapshots, serial and parallel alike.
  ASSERT_TRUE(rel::PackedKeysEnabled());
  Instance packed(2);
  std::map<std::string, std::string> packed_snapshot;
  {
    const core::ChangeSet changes =
        MakeUpdateGeneratingChanges(packed.wh.catalog(), 400, 555);
    packed.wh.RunBatch(changes);
    packed_snapshot = packed.Snapshot();
  }
  rel::SetPackedKeysEnabled(false);
  std::map<std::string, std::string> boxed_snapshot;
  try {
    Instance boxed(2);
    const core::ChangeSet changes =
        MakeUpdateGeneratingChanges(boxed.wh.catalog(), 400, 555);
    boxed.wh.RunBatch(changes);
    boxed_snapshot = boxed.Snapshot();
  } catch (...) {
    rel::SetPackedKeysEnabled(true);
    throw;
  }
  rel::SetPackedKeysEnabled(true);
  EXPECT_EQ(packed_snapshot, boxed_snapshot);
}

// ISSUE 5 satellite: every service.* counter must be thread-count
// invariant. With explicit flushes the batch boundaries are
// deterministic, so two services differing only in worker count do the
// same appends, WAL writes, batches, coalescing, and epoch view
// rebuild/share decisions — and their whole non-exec counter maps
// (pipeline + service.*) must agree.
TEST(DeterminismTest, ServiceCountersInvariantAcrossThreadCounts) {
  namespace fs = std::filesystem;
  struct ServiceInstance {
    fs::path dir;
    rel::Catalog mirror;
    std::unique_ptr<service::WarehouseService> svc;

    explicit ServiceInstance(size_t num_threads)
        : dir(fs::temp_directory_path() /
              ("sdelta_det_svc_" + std::to_string(::getpid()) + "_t" +
               std::to_string(num_threads))),
          mirror(MakeRetailCatalog(SmallConfig())) {
      fs::remove_all(dir);
      service::WarehouseService::Options options;
      options.auto_batching = false;  // deterministic batch boundaries
      options.warehouse.num_threads = num_threads;
      svc = service::WarehouseService::Open(dir.string(),
                                            MakeRetailCatalog(SmallConfig()),
                                            RetailSummaryTables(), options);
    }
    ~ServiceInstance() {
      svc.reset();
      fs::remove_all(dir);
    }

    std::map<std::string, uint64_t> NonExecCounters() {
      std::map<std::string, uint64_t> out;
      for (const auto& [name, value] : svc->metrics().Snapshot().counters) {
        if (name.rfind("exec.", 0) != 0) out[name] = value;
      }
      return out;
    }
  };

  ServiceInstance serial(1);
  ServiceInstance eight(8);
  for (ServiceInstance* inst : {&serial, &eight}) {
    // Identical trajectory per instance: two coalesced appends, a flush,
    // then a single append + flush, then a checkpoint.
    for (uint64_t seed : {31u, 32u}) {
      core::ChangeSet changes =
          MakeUpdateGeneratingChanges(inst->mirror, 200, seed);
      core::ApplyChangeSet(inst->mirror, changes);
      inst->svc->Append(std::move(changes));
    }
    inst->svc->Flush();
    core::ChangeSet more = MakeInsertionGeneratingChanges(inst->mirror, 150, 33);
    core::ApplyChangeSet(inst->mirror, more);
    inst->svc->Append(std::move(more));
    inst->svc->Flush();
    inst->svc->Checkpoint();
  }

  const auto counters = serial.NonExecCounters();
  EXPECT_FALSE(counters.empty());
  EXPECT_GT(counters.count("service.appends"), 0u);
  EXPECT_GT(counters.count("service.wal_bytes"), 0u);
  EXPECT_GT(counters.count("service.batches"), 0u);
  EXPECT_EQ(counters, eight.NonExecCounters());
}

// PR 9 satellite: MQO must be invisible in the results. On a view
// family with real subplan sharing, the same randomized batch sequence
// yields byte-identical summary tables with mqo_enabled on and off, at
// every thread count — and the mqo.* counters themselves are a pure
// function of the plan and change set, identical at 1, 2, and 8
// threads.
TEST(DeterminismTest, MqoOnAndOffByteIdenticalAcrossThreadCounts) {
  auto sharing_views = [] {
    auto view = [](const std::string& name,
                   std::vector<core::DimensionJoin> joins,
                   std::vector<std::string> group_by) {
      core::ViewDef v;
      v.name = name;
      v.fact_table = "pos";
      v.joins = std::move(joins);
      v.group_by = std::move(group_by);
      v.aggregates = {rel::CountStar("TotalCount"),
                      rel::Sum(rel::Expression::Column("qty"),
                               "TotalQuantity")};
      return v;
    };
    const core::DimensionJoin stores{"stores", "storeID", "storeID"};
    return std::vector<core::ViewDef>{
        view("SID_sales", {}, {"storeID", "itemID", "date"}),
        view("vCityItem", {stores}, {"city", "itemID"}),
        view("vRegionDate", {stores}, {"region", "date"}),
        view("vCityDate", {stores}, {"city", "date"})};
  };

  struct MqoInstance {
    obs::MetricsRegistry metrics;
    Warehouse wh;
    MqoInstance(size_t num_threads, bool mqo,
                const std::vector<core::ViewDef>& views)
        : wh(MakeRetailCatalog(SmallConfig()), [&] {
            Warehouse::Options options;
            options.lattice_friendly = false;
            options.num_threads = num_threads;
            options.propagate.mqo_enabled = mqo;
            options.metrics = &metrics;
            return options;
          }()) {
      wh.DefineSummaryTables(views);
    }
    std::map<std::string, std::string> Snapshot() const {
      std::map<std::string, std::string> out;
      for (const core::AugmentedView& av : wh.vlattice().views) {
        out[av.name()] = rel::ToCsvString(wh.summary(av.name()).ToTable());
      }
      return out;
    }
    std::map<std::string, uint64_t> MqoCounters() const {
      std::map<std::string, uint64_t> out;
      for (const auto& [name, value] : metrics.Snapshot().counters) {
        if (name.rfind("mqo.", 0) == 0) out[name] = value;
      }
      return out;
    }
  };

  const std::vector<core::ViewDef> views = sharing_views();
  MqoInstance on1(1, true, views);
  MqoInstance on2(2, true, views);
  MqoInstance on8(8, true, views);
  MqoInstance off1(1, false, views);

  for (uint64_t seed : {71u, 72u, 73u}) {
    SCOPED_TRACE("batch seed " + std::to_string(seed));
    for (MqoInstance* inst : {&on1, &on2, &on8, &off1}) {
      const core::ChangeSet changes =
          seed == 72u
              ? MakeInsertionGeneratingChanges(inst->wh.catalog(), 300, seed)
              : MakeUpdateGeneratingChanges(inst->wh.catalog(), 450, seed);
      inst->wh.RunBatch(changes);
    }
    const auto expected = on1.Snapshot();
    EXPECT_EQ(expected, on2.Snapshot());
    EXPECT_EQ(expected, on8.Snapshot());
    EXPECT_EQ(expected, off1.Snapshot());
  }

  const auto counters = on1.MqoCounters();
  EXPECT_FALSE(counters.empty());
  EXPECT_GT(counters.at("mqo.subplans_materialized"), 0u);
  EXPECT_GT(counters.at("mqo.rows_reused"), 0u);
  EXPECT_EQ(counters, on2.MqoCounters());
  EXPECT_EQ(counters, on8.MqoCounters());
  // mqo off: the series are absent entirely (no spurious zero counters
  // from a disabled subsystem).
  EXPECT_TRUE(off1.MqoCounters().empty());
}

TEST(DeterminismTest, PropagateOnlyStatsMatchAcrossThreadCounts) {
  Instance serial(1);
  Instance four(4);
  const core::ChangeSet serial_changes =
      MakeUpdateGeneratingChanges(serial.wh.catalog(), 600, 777);
  const core::ChangeSet four_changes =
      MakeUpdateGeneratingChanges(four.wh.catalog(), 600, 777);
  core::PropagateStats s1;
  core::PropagateStats s4;
  serial.wh.PropagateOnly(serial_changes, &s1);
  four.wh.PropagateOnly(four_changes, &s4);
  EXPECT_EQ(s1.prepared_tuples, s4.prepared_tuples);
  EXPECT_EQ(s1.delta_groups, s4.delta_groups);
  EXPECT_EQ(s1.preaggregated, s4.preaggregated);
}

}  // namespace
}  // namespace sdelta::warehouse
