#include "obs/metrics.h"

#include <gtest/gtest.h>

namespace sdelta::obs {
namespace {

TEST(MetricsRegistryTest, CountersAccumulate) {
  MetricsRegistry m;
  EXPECT_EQ(m.counter("propagate.rows_scanned"), 0u);  // absent reads zero
  m.Add("propagate.rows_scanned", 10);
  m.Add("propagate.rows_scanned", 5);
  m.Add("propagate.delta_rows");  // default delta 1
  EXPECT_EQ(m.counter("propagate.rows_scanned"), 15u);
  EXPECT_EQ(m.counter("propagate.delta_rows"), 1u);
}

TEST(MetricsRegistryTest, GaugesKeepLastValue) {
  MetricsRegistry m;
  EXPECT_EQ(m.gauge("batch.propagate_seconds"), 0.0);
  m.Set("batch.propagate_seconds", 1.5);
  m.Set("batch.propagate_seconds", 0.25);
  EXPECT_EQ(m.gauge("batch.propagate_seconds"), 0.25);
}

TEST(MetricsRegistryTest, HistogramsTrackDistribution) {
  MetricsRegistry m;
  EXPECT_EQ(m.histogram("plan.edge_cost").count, 0u);
  m.Observe("plan.edge_cost", 4.0);
  m.Observe("plan.edge_cost", 2.0);
  m.Observe("plan.edge_cost", 6.0);
  const Histogram h = m.histogram("plan.edge_cost");
  EXPECT_EQ(h.count, 3u);
  EXPECT_EQ(h.sum, 12.0);
  EXPECT_EQ(h.min, 2.0);
  EXPECT_EQ(h.max, 6.0);
  EXPECT_EQ(h.Mean(), 4.0);
}

TEST(MetricsRegistryTest, SeriesAreSortedByName) {
  MetricsRegistry m;
  m.Add("b.second");
  m.Add("a.first");
  m.Add("c.third");
  std::vector<std::string> names;
  for (const auto& [name, v] : m.counters()) names.push_back(name);
  EXPECT_EQ(names, (std::vector<std::string>{"a.first", "b.second",
                                             "c.third"}));
}

TEST(MetricsRegistryTest, EmptyAndClear) {
  MetricsRegistry m;
  EXPECT_TRUE(m.empty());
  m.Add("x");
  m.Set("y", 1);
  m.Observe("z", 1);
  EXPECT_FALSE(m.empty());
  m.Clear();
  EXPECT_TRUE(m.empty());
  EXPECT_EQ(m.counter("x"), 0u);
}

TEST(MetricsRegistryTest, MergeFromCombinesSeries) {
  MetricsRegistry a;
  a.Add("events", 3);
  a.Set("level", 1.0);
  a.Observe("cost", 2.0);

  MetricsRegistry b;
  b.Add("events", 4);
  b.Add("only_b", 1);
  b.Set("level", 2.0);
  b.Observe("cost", 6.0);

  a.MergeFrom(b);
  EXPECT_EQ(a.counter("events"), 7u);       // counters add
  EXPECT_EQ(a.counter("only_b"), 1u);
  EXPECT_EQ(a.gauge("level"), 2.0);         // gauges overwrite
  const Histogram h = a.histogram("cost");  // histograms merge
  EXPECT_EQ(h.count, 2u);
  EXPECT_EQ(h.sum, 8.0);
  EXPECT_EQ(h.min, 2.0);
  EXPECT_EQ(h.max, 6.0);
}

}  // namespace
}  // namespace sdelta::obs
