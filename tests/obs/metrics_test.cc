#include "obs/metrics.h"

#include <gtest/gtest.h>

namespace sdelta::obs {
namespace {

TEST(MetricsRegistryTest, CountersAccumulate) {
  MetricsRegistry m;
  EXPECT_EQ(m.counter("propagate.rows_scanned"), 0u);  // absent reads zero
  m.Add("propagate.rows_scanned", 10);
  m.Add("propagate.rows_scanned", 5);
  m.Add("propagate.delta_rows");  // default delta 1
  EXPECT_EQ(m.counter("propagate.rows_scanned"), 15u);
  EXPECT_EQ(m.counter("propagate.delta_rows"), 1u);
}

TEST(MetricsRegistryTest, GaugesKeepLastValue) {
  MetricsRegistry m;
  EXPECT_EQ(m.gauge("batch.propagate_seconds"), 0.0);
  m.Set("batch.propagate_seconds", 1.5);
  m.Set("batch.propagate_seconds", 0.25);
  EXPECT_EQ(m.gauge("batch.propagate_seconds"), 0.25);
}

TEST(MetricsRegistryTest, HistogramsTrackDistribution) {
  MetricsRegistry m;
  EXPECT_EQ(m.histogram("plan.edge_cost").count, 0u);
  m.Observe("plan.edge_cost", 4.0);
  m.Observe("plan.edge_cost", 2.0);
  m.Observe("plan.edge_cost", 6.0);
  const Histogram h = m.histogram("plan.edge_cost");
  EXPECT_EQ(h.count, 3u);
  EXPECT_EQ(h.sum, 12.0);
  EXPECT_EQ(h.min, 2.0);
  EXPECT_EQ(h.max, 6.0);
  EXPECT_EQ(h.Mean(), 4.0);
}

TEST(MetricsRegistryTest, SeriesAreSortedByName) {
  MetricsRegistry m;
  m.Add("b.second");
  m.Add("a.first");
  m.Add("c.third");
  std::vector<std::string> names;
  for (const auto& [name, v] : m.Snapshot().counters) names.push_back(name);
  EXPECT_EQ(names, (std::vector<std::string>{"a.first", "b.second",
                                             "c.third"}));
}

TEST(MetricsRegistryTest, SnapshotIsADeepCopy) {
  MetricsRegistry m;
  m.Add("events", 2);
  m.Set("level", 1.5);
  m.Observe("cost", 4.0);
  const MetricsSnapshot snap = m.Snapshot();
  m.Add("events", 5);  // mutations after the snapshot are not visible
  m.Observe("cost", 64.0);
  EXPECT_EQ(snap.counters.at("events"), 2u);
  EXPECT_EQ(snap.gauges.at("level"), 1.5);
  EXPECT_EQ(snap.histograms.at("cost").count, 1u);
  EXPECT_FALSE(snap.empty());
  EXPECT_TRUE(MetricsRegistry().Snapshot().empty());
}

TEST(HistogramTest, BucketsAreLogTwoSpaced) {
  // Bucket i covers (2^(i + kMinExp - 1), 2^(i + kMinExp)]: exact powers
  // of two land in the bucket they upper-bound.
  EXPECT_EQ(Histogram::BucketOf(0.0), 0);    // non-positive clamps low
  EXPECT_EQ(Histogram::BucketOf(-3.0), 0);
  EXPECT_EQ(Histogram::BucketOf(1.0), 32 - 1 + 1);  // 2^0 upper-bounds b32
  EXPECT_EQ(Histogram::BucketUpperBound(Histogram::BucketOf(1.0)), 1.0);
  EXPECT_EQ(Histogram::BucketUpperBound(Histogram::BucketOf(2.0)), 2.0);
  EXPECT_EQ(Histogram::BucketUpperBound(Histogram::BucketOf(1024.0)), 1024.0);
  // A value just above a power of two falls in the next bucket.
  EXPECT_EQ(Histogram::BucketOf(2.5), Histogram::BucketOf(4.0));
  EXPECT_EQ(Histogram::kNumBuckets, 64);
}

TEST(HistogramTest, PercentilesInterpolateAndClampToRange) {
  // Single-observation buckets: the rank is the bucket's last (and only)
  // observation, so interpolation resolves to the bucket upper bound —
  // exact for these power-of-two values.
  Histogram h;
  h.Observe(2.0);
  h.Observe(4.0);
  EXPECT_EQ(h.P50(), 2.0);
  EXPECT_EQ(h.P95(), 4.0);
  EXPECT_EQ(h.P99(), 4.0);

  Histogram skew;
  for (int i = 0; i < 99; ++i) skew.Observe(1.0);
  skew.Observe(1000.0);
  // Rank 50 interpolates inside the (0.5, 1] bucket, below min = 1.0,
  // and the min clamp restores exactness.
  EXPECT_EQ(skew.P50(), 1.0);
  EXPECT_EQ(skew.P95(), 1.0);
  // The tail bucket's interpolated value is 1024 but the max clamps it.
  EXPECT_EQ(skew.Percentile(100.0), 1000.0);

  Histogram empty;
  EXPECT_EQ(empty.Percentile(50.0), 0.0);
}

TEST(HistogramTest, PercentilesInterpolateWithinBucket) {
  // Two observations in the (4, 8] bucket: rank 1 sits halfway up the
  // bucket (4 + 4 * 1/2 = 6), rank 2 at the top (8) — no bucket-edge
  // quantization to 8.0 for both, as the pre-interpolation code gave.
  Histogram h;
  h.Observe(5.0);
  h.Observe(7.0);
  EXPECT_EQ(h.P50(), 6.0);
  EXPECT_EQ(h.Percentile(100.0), 7.0);  // max clamp

  // 4 observations in (2, 4]: ranks 1..4 map to 2.5, 3.0, 3.5, 4.0.
  Histogram quarters;
  for (int i = 0; i < 4; ++i) quarters.Observe(3.0);
  EXPECT_EQ(quarters.Percentile(25.0), 3.0);  // 2.5 clamped up to min
  EXPECT_EQ(quarters.Percentile(50.0), 3.0);
  EXPECT_EQ(quarters.Percentile(75.0), 3.0);  // 3.5 clamped down to max
}

TEST(HistogramTest, MergePreservesBuckets) {
  Histogram a;
  a.Observe(2.0);
  Histogram b;
  b.Observe(4.0);
  b.Observe(4.0);
  a.MergeFrom(b);
  EXPECT_EQ(a.count, 3u);
  EXPECT_EQ(a.min, 2.0);
  EXPECT_EQ(a.max, 4.0);
  // Rank 2 of 3 is the first of the (2, 4] bucket's two observations:
  // 2 + 2 * 1/2 = 3 under within-bucket interpolation.
  EXPECT_EQ(a.P50(), 3.0);
}

TEST(MetricsRegistryTest, EmptyAndClear) {
  MetricsRegistry m;
  EXPECT_TRUE(m.empty());
  m.Add("x");
  m.Set("y", 1);
  m.Observe("z", 1);
  EXPECT_FALSE(m.empty());
  m.Clear();
  EXPECT_TRUE(m.empty());
  EXPECT_EQ(m.counter("x"), 0u);
}

TEST(MetricsRegistryTest, MergeFromCombinesSeries) {
  MetricsRegistry a;
  a.Add("events", 3);
  a.Set("level", 1.0);
  a.Observe("cost", 2.0);

  MetricsRegistry b;
  b.Add("events", 4);
  b.Add("only_b", 1);
  b.Set("level", 2.0);
  b.Observe("cost", 6.0);

  a.MergeFrom(b);
  EXPECT_EQ(a.counter("events"), 7u);       // counters add
  EXPECT_EQ(a.counter("only_b"), 1u);
  EXPECT_EQ(a.gauge("level"), 2.0);         // gauges overwrite
  const Histogram h = a.histogram("cost");  // histograms merge
  EXPECT_EQ(h.count, 2u);
  EXPECT_EQ(h.sum, 8.0);
  EXPECT_EQ(h.min, 2.0);
  EXPECT_EQ(h.max, 6.0);
}

}  // namespace
}  // namespace sdelta::obs
