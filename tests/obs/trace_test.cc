#include "obs/trace.h"

#include <gtest/gtest.h>

#include <stdexcept>

namespace sdelta::obs {
namespace {

TEST(TracerTest, StackNestingSetsParents) {
  Tracer t;
  const uint64_t outer = t.BeginSpan("outer");
  const uint64_t inner = t.BeginSpan("inner");
  EXPECT_EQ(t.CurrentSpan(), inner);
  t.EndSpan(inner);
  EXPECT_EQ(t.CurrentSpan(), outer);
  t.EndSpan(outer);
  EXPECT_EQ(t.CurrentSpan(), 0u);

  ASSERT_EQ(t.spans().size(), 2u);
  EXPECT_EQ(t.spans()[0].name, "outer");
  EXPECT_EQ(t.spans()[0].parent_id, 0u);
  EXPECT_EQ(t.spans()[1].name, "inner");
  EXPECT_EQ(t.spans()[1].parent_id, outer);
}

TEST(TracerTest, SpansRecordedInStartOrderWithMonotonicTimes) {
  Tracer t;
  const uint64_t a = t.BeginSpan("a");
  t.EndSpan(a);
  const uint64_t b = t.BeginSpan("b");
  t.EndSpan(b);
  ASSERT_EQ(t.spans().size(), 2u);
  EXPECT_LT(a, b);  // ids are issued in start order
  EXPECT_LE(t.spans()[0].start_ns, t.spans()[1].start_ns);
  for (const SpanRecord& s : t.spans()) {
    EXPECT_GE(s.end_ns, s.start_ns);
    EXPECT_GE(s.duration_seconds(), 0.0);
  }
}

TEST(TracerTest, ExplicitParentOfClosedSpan) {
  // The propagate plan parents a step on its D-lattice source view,
  // whose span has already closed by the time the step runs.
  Tracer t;
  const uint64_t phase = t.BeginSpan("propagate");
  const uint64_t parent_view = t.BeginSpan("SID_sales");
  t.EndSpan(parent_view);
  const uint64_t child_view = t.BeginSpan("sR_sales", parent_view);
  // The explicit-parent span still joins the stack: nested spans land
  // beneath it.
  const uint64_t nested = t.BeginSpan("sd.compute");
  t.EndSpan(nested);
  t.EndSpan(child_view);
  t.EndSpan(phase);

  ASSERT_EQ(t.spans().size(), 4u);
  EXPECT_EQ(t.spans()[1].parent_id, phase);
  EXPECT_EQ(t.spans()[2].parent_id, parent_view);
  EXPECT_EQ(t.spans()[3].parent_id, child_view);
}

TEST(TracerTest, NonLifoCloseThrows) {
  Tracer t;
  const uint64_t outer = t.BeginSpan("outer");
  t.BeginSpan("inner");
  EXPECT_THROW(t.EndSpan(outer), std::logic_error);
}

TEST(TracerTest, AttributesAttachToTheNamedSpan) {
  Tracer t;
  const uint64_t id = t.BeginSpan("s");
  t.AddAttribute(id, "view", "SID_sales");
  t.AddAttribute(id, "rows", "42");
  t.EndSpan(id);
  ASSERT_EQ(t.spans().size(), 1u);
  const SpanRecord& s = t.spans()[0];
  ASSERT_EQ(s.attributes.size(), 2u);
  EXPECT_EQ(s.attributes[0].first, "view");
  EXPECT_EQ(s.attributes[0].second, "SID_sales");
  EXPECT_EQ(s.attributes[1].second, "42");
}

TEST(TracerTest, ClearResetsEverything) {
  Tracer t;
  t.EndSpan(t.BeginSpan("s"));
  t.Clear();
  EXPECT_TRUE(t.spans().empty());
  EXPECT_EQ(t.CurrentSpan(), 0u);
}

TEST(TraceSpanTest, RaiiOpensAndCloses) {
  Tracer t;
  {
    TraceSpan outer(&t, "outer");
    TraceSpan inner(&t, "inner");
    inner.Attr("k", "v");
    inner.Attr("n", static_cast<uint64_t>(7));
    inner.Attr("flag", true);
    EXPECT_NE(inner.id(), 0u);
  }
  ASSERT_EQ(t.spans().size(), 2u);
  EXPECT_EQ(t.spans()[1].parent_id, t.spans()[0].id);
  EXPECT_NE(t.spans()[0].end_ns, 0u);  // both closed by RAII
  EXPECT_NE(t.spans()[1].end_ns, 0u);
  ASSERT_EQ(t.spans()[1].attributes.size(), 3u);
  EXPECT_EQ(t.spans()[1].attributes[1].second, "7");
  EXPECT_EQ(t.spans()[1].attributes[2].second, "true");
}

TEST(TraceSpanTest, NullTracerIsANoOp) {
  TraceSpan span(nullptr, "ignored");
  span.Attr("k", "v");
  span.Attr("n", static_cast<uint64_t>(1));
  span.Attr("b", false);
  EXPECT_EQ(span.id(), 0u);  // destructor must also tolerate null
}

TEST(TraceSpanTest, ExplicitParentConstructor) {
  Tracer t;
  uint64_t first_id = 0;
  {
    TraceSpan first(&t, "first");
    first_id = first.id();
  }
  {
    TraceSpan second(&t, "second", first_id);
    EXPECT_NE(second.id(), 0u);
  }
  ASSERT_EQ(t.spans().size(), 2u);
  EXPECT_EQ(t.spans()[1].parent_id, first_id);
}

}  // namespace
}  // namespace sdelta::obs
