#include "obs/json.h"

#include <gtest/gtest.h>

#include <stdexcept>

namespace sdelta::obs {
namespace {

TEST(JsonTest, BuildAndDumpCompact) {
  Json doc = Json::Object();
  doc.Set("name", Json::Str("sdelta"));
  doc.Set("n", Json::Int(42));
  doc.Set("pi", Json::Double(0.5));
  doc.Set("ok", Json::Bool(true));
  doc.Set("none", Json());
  Json arr = Json::Array();
  arr.Append(Json::Int(1));
  arr.Append(Json::Int(2));
  doc.Set("xs", std::move(arr));
  EXPECT_EQ(doc.Dump(),
            "{\"name\":\"sdelta\",\"n\":42,\"pi\":0.5,\"ok\":true,"
            "\"none\":null,\"xs\":[1,2]}");
}

TEST(JsonTest, ObjectPreservesInsertionOrderAndSetReplaces) {
  Json doc = Json::Object();
  doc.Set("z", Json::Int(1));
  doc.Set("a", Json::Int(2));
  doc.Set("z", Json::Int(3));  // replaces in place, order unchanged
  EXPECT_EQ(doc.Dump(), "{\"z\":3,\"a\":2}");
  ASSERT_NE(doc.Find("a"), nullptr);
  EXPECT_EQ(doc.Find("a")->as_int(), 2);
  EXPECT_EQ(doc.Find("missing"), nullptr);
}

TEST(JsonTest, StringEscaping) {
  Json s = Json::Str("a\"b\\c\nd\te\x01");
  EXPECT_EQ(s.Dump(), "\"a\\\"b\\\\c\\nd\\te\\u0001\"");
}

TEST(JsonTest, ParseRoundTrip) {
  const std::string text =
      "{\"schema\":\"sdelta.obs.v1\",\"xs\":[1,-2,0.5,true,false,null],"
      "\"nested\":{\"k\":\"v\"},\"empty_obj\":{},\"empty_arr\":[]}";
  Json doc = Json::Parse(text);
  EXPECT_EQ(doc.Dump(), text);  // dump(parse(x)) == x for canonical input
  EXPECT_EQ(doc.Find("schema")->as_string(), "sdelta.obs.v1");
  const std::vector<Json>& xs = doc.Find("xs")->items();
  ASSERT_EQ(xs.size(), 6u);
  EXPECT_EQ(xs[0].as_int(), 1);
  EXPECT_EQ(xs[1].as_int(), -2);
  EXPECT_EQ(xs[2].as_double(), 0.5);
  EXPECT_TRUE(xs[3].as_bool());
  EXPECT_EQ(xs[5].kind(), Json::Kind::kNull);
}

TEST(JsonTest, ParseWhitespaceAndUnicodeEscapes) {
  Json doc = Json::Parse("  { \"k\" : \"caf\\u00e9\" , \"n\" : 1e2 }  ");
  EXPECT_EQ(doc.Find("k")->as_string(), "caf\xc3\xa9");
  EXPECT_EQ(doc.Find("n")->as_double(), 100.0);
}

TEST(JsonTest, ParseErrorsCarryOffset) {
  EXPECT_THROW(Json::Parse("{\"k\": }"), std::runtime_error);
  EXPECT_THROW(Json::Parse("[1, 2"), std::runtime_error);
  EXPECT_THROW(Json::Parse("{} trailing"), std::runtime_error);
  EXPECT_THROW(Json::Parse(""), std::runtime_error);
}

TEST(JsonTest, PrettyPrintIsStable) {
  Json doc = Json::Object();
  doc.Set("a", Json::Int(1));
  Json arr = Json::Array();
  arr.Append(Json::Str("x"));
  doc.Set("b", std::move(arr));
  EXPECT_EQ(doc.Dump(2),
            "{\n  \"a\": 1,\n  \"b\": [\n    \"x\"\n  ]\n}");
}

// ---- Adversarial / untrusted input (the parser backs /events and any
// externally supplied obs document, so it must fail cleanly, never
// crash or emit invalid UTF-8). ----

TEST(JsonTest, TruncatedDocumentsThrow) {
  const char* cases[] = {
      "{",          "[",           "{\"k\"",        "{\"k\":",
      "{\"k\":1,",  "[1,",         "\"unterminated", "tru",
      "nul",        "-",           "1e",            "{\"k\":\"v\"",
      "[[1,2],[3",  "{\"a\":{\"b\":1}",
  };
  for (const char* text : cases) {
    EXPECT_THROW(Json::Parse(text), std::runtime_error) << text;
  }
}

TEST(JsonTest, DeepNestingIsCappedNotACrash) {
  // 256 levels parse; one more is a clean error instead of a stack
  // overflow on "[[[[[...".
  std::string ok(256, '[');
  ok += std::string(256, ']');
  EXPECT_NO_THROW(Json::Parse(ok));

  std::string too_deep(257, '[');
  too_deep += std::string(257, ']');
  EXPECT_THROW(Json::Parse(too_deep), std::runtime_error);

  // Same cap through objects.
  std::string objs;
  for (int i = 0; i < 300; ++i) objs += "{\"k\":";
  objs += "1";
  for (int i = 0; i < 300; ++i) objs += "}";
  EXPECT_THROW(Json::Parse(objs), std::runtime_error);

  // A pathological all-open-brackets document must also terminate.
  EXPECT_THROW(Json::Parse(std::string(100000, '[')), std::runtime_error);
}

TEST(JsonTest, InvalidEscapesThrow) {
  EXPECT_THROW(Json::Parse("\"\\x41\""), std::runtime_error);
  EXPECT_THROW(Json::Parse("\"\\u12\""), std::runtime_error);    // short
  EXPECT_THROW(Json::Parse("\"\\u12g4\""), std::runtime_error);  // non-hex
  EXPECT_THROW(Json::Parse("\"\\\""), std::runtime_error);       // dangling
}

TEST(JsonTest, SurrogateEscapesAreRejectedNotMojibake) {
  // Lone (and even paired) UTF-16 surrogates would decode to invalid
  // UTF-8; the parser rejects them outright.
  EXPECT_THROW(Json::Parse("\"\\ud800\""), std::runtime_error);
  EXPECT_THROW(Json::Parse("\"\\udfff\""), std::runtime_error);
  EXPECT_THROW(Json::Parse("\"\\ud83d\\ude00\""), std::runtime_error);
  // The BMP boundary neighbours still decode.
  EXPECT_EQ(Json::Parse("\"\\ud7ff\"").as_string(), "\xed\x9f\xbf");
  EXPECT_EQ(Json::Parse("\"\\ue000\"").as_string(), "\xee\x80\x80");
}

TEST(JsonTest, HugeAndMalformedNumbersAreRangeChecked) {
  EXPECT_THROW(Json::Parse("1e999"), std::runtime_error);   // overflows
  EXPECT_THROW(Json::Parse("-1e999"), std::runtime_error);
  EXPECT_THROW(Json::Parse("01"), std::runtime_error);      // leading zero
  EXPECT_THROW(Json::Parse("+1"), std::runtime_error);
  EXPECT_THROW(Json::Parse("1."), std::runtime_error);
  EXPECT_THROW(Json::Parse(".5"), std::runtime_error);
  EXPECT_THROW(Json::Parse("--1"), std::runtime_error);
  EXPECT_THROW(Json::Parse("0x10"), std::runtime_error);
  EXPECT_THROW(Json::Parse("NaN"), std::runtime_error);
  EXPECT_THROW(Json::Parse("Infinity"), std::runtime_error);
  // Extremes that DO fit round-trip.
  EXPECT_EQ(Json::Parse("9223372036854775807").as_int(),
            INT64_MAX);
  EXPECT_DOUBLE_EQ(Json::Parse("1e308").as_double(), 1e308);
  EXPECT_DOUBLE_EQ(Json::Parse("2.2250738585072014e-308").as_double(),
                   2.2250738585072014e-308);  // the classic parser DoS value
}

TEST(JsonTest, GarbageBytesThrowWithoutSideEffects) {
  EXPECT_THROW(Json::Parse("\x00\x01\x02"), std::runtime_error);
  EXPECT_THROW(Json::Parse("{\"k\":1}{\"k\":2}"), std::runtime_error);
  EXPECT_THROW(Json::Parse("[1 2]"), std::runtime_error);
  EXPECT_THROW(Json::Parse("{'k':1}"), std::runtime_error);
  EXPECT_THROW(Json::Parse("{k:1}"), std::runtime_error);
  EXPECT_THROW(Json::Parse("[,1]"), std::runtime_error);
  EXPECT_THROW(Json::Parse("[1,]"), std::runtime_error);
}

TEST(JsonTest, KindMismatchThrows) {
  Json i = Json::Int(1);
  EXPECT_THROW(i.as_string(), std::runtime_error);
  EXPECT_THROW(i.items(), std::runtime_error);
  Json arr = Json::Array();
  EXPECT_THROW(arr.Set("k", Json::Int(1)), std::runtime_error);
}

}  // namespace
}  // namespace sdelta::obs
