#include "obs/json.h"

#include <gtest/gtest.h>

#include <stdexcept>

namespace sdelta::obs {
namespace {

TEST(JsonTest, BuildAndDumpCompact) {
  Json doc = Json::Object();
  doc.Set("name", Json::Str("sdelta"));
  doc.Set("n", Json::Int(42));
  doc.Set("pi", Json::Double(0.5));
  doc.Set("ok", Json::Bool(true));
  doc.Set("none", Json());
  Json arr = Json::Array();
  arr.Append(Json::Int(1));
  arr.Append(Json::Int(2));
  doc.Set("xs", std::move(arr));
  EXPECT_EQ(doc.Dump(),
            "{\"name\":\"sdelta\",\"n\":42,\"pi\":0.5,\"ok\":true,"
            "\"none\":null,\"xs\":[1,2]}");
}

TEST(JsonTest, ObjectPreservesInsertionOrderAndSetReplaces) {
  Json doc = Json::Object();
  doc.Set("z", Json::Int(1));
  doc.Set("a", Json::Int(2));
  doc.Set("z", Json::Int(3));  // replaces in place, order unchanged
  EXPECT_EQ(doc.Dump(), "{\"z\":3,\"a\":2}");
  ASSERT_NE(doc.Find("a"), nullptr);
  EXPECT_EQ(doc.Find("a")->as_int(), 2);
  EXPECT_EQ(doc.Find("missing"), nullptr);
}

TEST(JsonTest, StringEscaping) {
  Json s = Json::Str("a\"b\\c\nd\te\x01");
  EXPECT_EQ(s.Dump(), "\"a\\\"b\\\\c\\nd\\te\\u0001\"");
}

TEST(JsonTest, ParseRoundTrip) {
  const std::string text =
      "{\"schema\":\"sdelta.obs.v1\",\"xs\":[1,-2,0.5,true,false,null],"
      "\"nested\":{\"k\":\"v\"},\"empty_obj\":{},\"empty_arr\":[]}";
  Json doc = Json::Parse(text);
  EXPECT_EQ(doc.Dump(), text);  // dump(parse(x)) == x for canonical input
  EXPECT_EQ(doc.Find("schema")->as_string(), "sdelta.obs.v1");
  const std::vector<Json>& xs = doc.Find("xs")->items();
  ASSERT_EQ(xs.size(), 6u);
  EXPECT_EQ(xs[0].as_int(), 1);
  EXPECT_EQ(xs[1].as_int(), -2);
  EXPECT_EQ(xs[2].as_double(), 0.5);
  EXPECT_TRUE(xs[3].as_bool());
  EXPECT_EQ(xs[5].kind(), Json::Kind::kNull);
}

TEST(JsonTest, ParseWhitespaceAndUnicodeEscapes) {
  Json doc = Json::Parse("  { \"k\" : \"caf\\u00e9\" , \"n\" : 1e2 }  ");
  EXPECT_EQ(doc.Find("k")->as_string(), "caf\xc3\xa9");
  EXPECT_EQ(doc.Find("n")->as_double(), 100.0);
}

TEST(JsonTest, ParseErrorsCarryOffset) {
  EXPECT_THROW(Json::Parse("{\"k\": }"), std::runtime_error);
  EXPECT_THROW(Json::Parse("[1, 2"), std::runtime_error);
  EXPECT_THROW(Json::Parse("{} trailing"), std::runtime_error);
  EXPECT_THROW(Json::Parse(""), std::runtime_error);
}

TEST(JsonTest, PrettyPrintIsStable) {
  Json doc = Json::Object();
  doc.Set("a", Json::Int(1));
  Json arr = Json::Array();
  arr.Append(Json::Str("x"));
  doc.Set("b", std::move(arr));
  EXPECT_EQ(doc.Dump(2),
            "{\n  \"a\": 1,\n  \"b\": [\n    \"x\"\n  ]\n}");
}

TEST(JsonTest, KindMismatchThrows) {
  Json i = Json::Int(1);
  EXPECT_THROW(i.as_string(), std::runtime_error);
  EXPECT_THROW(i.items(), std::runtime_error);
  Json arr = Json::Array();
  EXPECT_THROW(arr.Set("k", Json::Int(1)), std::runtime_error);
}

}  // namespace
}  // namespace sdelta::obs
