// End-to-end observability: a traced RunBatch over the retail schema
// must produce (a) a span tree that mirrors the D-lattice propagation
// plan — one span per summary table, parented on the edge's source
// view — and (b) a registry whose counters reproduce the BatchReport.
#include <gtest/gtest.h>

#include <string>

#include "obs/export_chrome.h"
#include "obs/export_json.h"
#include "warehouse/retail_schema.h"
#include "warehouse/warehouse.h"
#include "warehouse/workload.h"

namespace sdelta::warehouse {
namespace {

RetailConfig SmallConfig() {
  RetailConfig config;
  config.num_stores = 15;
  config.num_cities = 6;
  config.num_regions = 3;
  config.num_items = 80;
  config.num_categories = 8;
  config.num_dates = 30;
  config.num_pos_rows = 2500;
  config.seed = 55;
  return config;
}

const obs::SpanRecord* FindSpan(const obs::Tracer& t,
                                const std::string& name) {
  for (const obs::SpanRecord& s : t.spans()) {
    if (s.name == name) return &s;
  }
  return nullptr;
}

std::string AttrOf(const obs::SpanRecord& s, const std::string& key) {
  for (const auto& [k, v] : s.attributes) {
    if (k == key) return v;
  }
  return "";
}

class ObsWarehouseTest : public ::testing::Test {
 protected:
  ObsWarehouseTest() : wh_(MakeRetailCatalog(SmallConfig()), MakeOptions()) {
    wh_.DefineSummaryTables(RetailSummaryTables());
    tracer_.Clear();  // drop the Rebuild trace; tests watch the batch
    metrics_.Clear();
  }

  Warehouse::Options MakeOptions() {
    Warehouse::Options o;
    o.tracer = &tracer_;
    o.metrics = &metrics_;
    return o;
  }

  obs::Tracer tracer_;
  obs::MetricsRegistry metrics_;
  Warehouse wh_;
};

TEST_F(ObsWarehouseTest, RunBatchSpanTreeMirrorsThePlan) {
  wh_.RunBatch(MakeUpdateGeneratingChanges(wh_.catalog(), 300, 61));

  const obs::SpanRecord* batch = FindSpan(tracer_, "warehouse.RunBatch");
  ASSERT_NE(batch, nullptr);
  EXPECT_EQ(batch->parent_id, 0u);
  const obs::SpanRecord* phase = FindSpan(tracer_, "propagate");
  ASSERT_NE(phase, nullptr);
  EXPECT_EQ(phase->parent_id, batch->id);

  // One propagate span per summary table, named after the view and
  // parented on its plan source: the phase span for base-computed
  // deltas, the source view's span for edge-derived ones.
  size_t via_edge = 0;
  for (const lattice::PlanStep& step : wh_.plan().steps) {
    const std::string& view = wh_.vlattice().views[step.view].name();
    SCOPED_TRACE(view);
    const obs::SpanRecord* span = FindSpan(tracer_, view);
    ASSERT_NE(span, nullptr);
    const std::string source = AttrOf(*span, "source");
    if (source == "base") {
      EXPECT_EQ(span->parent_id, phase->id);
    } else {
      const obs::SpanRecord* parent = FindSpan(tracer_, source);
      ASSERT_NE(parent, nullptr);
      EXPECT_EQ(span->parent_id, parent->id);
      ++via_edge;
    }
    EXPECT_NE(AttrOf(*span, "delta_rows"), "");
  }
  // The retail plan (Figure 8) derives at least one view through the
  // lattice rather than from base changes.
  EXPECT_GT(via_edge, 0u);

  // Refresh: one refresh.view span per summary table, under the refresh
  // phase span.
  const obs::SpanRecord* refresh = FindSpan(tracer_, "refresh");
  ASSERT_NE(refresh, nullptr);
  EXPECT_EQ(refresh->parent_id, batch->id);
  size_t refreshed = 0;
  for (const obs::SpanRecord& s : tracer_.spans()) {
    if (s.name != "refresh.view") continue;
    EXPECT_EQ(s.parent_id, refresh->id);
    ++refreshed;
  }
  EXPECT_EQ(refreshed, wh_.NumSummaryTables());

  // Every span is closed with sane timestamps.
  for (const obs::SpanRecord& s : tracer_.spans()) {
    EXPECT_NE(s.end_ns, 0u) << s.name;
    EXPECT_GE(s.end_ns, s.start_ns) << s.name;
  }
}

TEST_F(ObsWarehouseTest, ChromeTraceIsValidJsonWithOneEventPerSpan) {
  wh_.RunBatch(MakeUpdateGeneratingChanges(wh_.catalog(), 300, 61));

  obs::Json doc = obs::Json::Parse(obs::ExportChromeTrace(tracer_));
  const std::vector<obs::Json>& events =
      doc.Find("traceEvents")->items();
  ASSERT_EQ(events.size(), tracer_.spans().size());
  for (size_t i = 0; i < events.size(); ++i) {
    const obs::Json& e = events[i];
    EXPECT_EQ(e.Find("ph")->as_string(), "X");
    EXPECT_GE(e.Find("ts")->as_int(), 0);
    EXPECT_GE(e.Find("dur")->as_int(), 0);
    EXPECT_EQ(e.Find("args")->Find("span_id")->as_int(),
              static_cast<int64_t>(tracer_.spans()[i].id));
  }
  // The lattice parentage is recoverable from args.parent.
  for (const lattice::PlanStep& step : wh_.plan().steps) {
    if (!step.edge.has_value()) continue;
    const std::string& view = wh_.vlattice().views[step.view].name();
    for (const obs::Json& e : events) {
      if (e.Find("name")->as_string() != view) continue;
      const obs::Json* args = e.Find("args");
      if (args->Find("source") != nullptr &&
          args->Find("source")->as_string() != "base") {
        EXPECT_EQ(args->Find("parent")->as_string(),
                  args->Find("source")->as_string());
      }
    }
  }
}

TEST_F(ObsWarehouseTest, BatchReportIsDerivedFromTheRegistry) {
  BatchReport report =
      wh_.RunBatch(MakeUpdateGeneratingChanges(wh_.catalog(), 300, 61));

  EXPECT_EQ(report.propagate.delta_groups,
            metrics_.counter("propagate.delta_rows"));
  EXPECT_GT(report.propagate.delta_groups, 0u);
  EXPECT_EQ(report.propagate_seconds,
            metrics_.gauge("batch.propagate_seconds"));
  EXPECT_EQ(report.refresh_seconds, metrics_.gauge("batch.refresh_seconds"));

  const core::RefreshStats total = report.TotalRefresh();
  EXPECT_EQ(total.updated, metrics_.counter("refresh.updates"));
  EXPECT_EQ(total.inserted, metrics_.counter("refresh.inserts"));
  EXPECT_EQ(total.deleted, metrics_.counter("refresh.deletes"));
  EXPECT_EQ(total.minmax_recomputes,
            metrics_.counter("refresh.minmax_recomputes"));
  EXPECT_GT(total.updated + total.inserted + total.deleted, 0u);

  EXPECT_EQ(metrics_.histogram("batch.maintenance_seconds").count, 1u);

  // A second batch accumulates counters; the report covers its batch.
  BatchReport second =
      wh_.RunBatch(MakeUpdateGeneratingChanges(wh_.catalog(), 200, 62));
  EXPECT_EQ(metrics_.counter("propagate.delta_rows"),
            report.propagate.delta_groups + second.propagate.delta_groups);
  EXPECT_EQ(metrics_.histogram("batch.maintenance_seconds").count, 2u);
}

TEST_F(ObsWarehouseTest, NullSinksStillProduceAFullReport) {
  Warehouse plain(MakeRetailCatalog(SmallConfig()));
  plain.DefineSummaryTables(RetailSummaryTables());
  BatchReport report =
      plain.RunBatch(MakeUpdateGeneratingChanges(plain.catalog(), 300, 61));
  EXPECT_GT(report.propagate.delta_groups, 0u);
  EXPECT_GT(report.views.size(), 0u);
  EXPECT_GE(report.maintenance_seconds(), 0.0);
}

TEST_F(ObsWarehouseTest, QueriesCountHitsAndFallbacks) {
  const std::string sql =
      "SELECT region, SUM(qty) AS q FROM pos, stores "
      "WHERE pos.storeID = stores.storeID GROUP BY region";
  wh_.Query(sql);
  EXPECT_EQ(metrics_.counter("answer.view_hits"), 1u);
  EXPECT_EQ(metrics_.counter("answer.base_fallbacks"), 0u);
  const obs::SpanRecord* span = FindSpan(tracer_, "answer.query");
  ASSERT_NE(span, nullptr);
  EXPECT_NE(AttrOf(*span, "source"), "");
  EXPECT_NE(AttrOf(*span, "source"), "base");
  EXPECT_GT(metrics_.counter("answer.rows_read"), 0u);
}

TEST_F(ObsWarehouseTest, PropagateOnlyAndRematerializeAreInstrumented) {
  const core::ChangeSet changes =
      MakeUpdateGeneratingChanges(wh_.catalog(), 200, 63);
  wh_.PropagateOnly(changes);
  EXPECT_NE(FindSpan(tracer_, "warehouse.PropagateOnly"), nullptr);
  EXPECT_EQ(metrics_.histogram("propagate.seconds").count, 1u);

  wh_.RematerializeAll(changes);
  EXPECT_NE(FindSpan(tracer_, "warehouse.RematerializeAll"), nullptr);
  EXPECT_EQ(metrics_.counter("rematerialize.runs"), 1u);
  EXPECT_EQ(metrics_.histogram("rematerialize.seconds").count, 1u);
}

}  // namespace
}  // namespace sdelta::warehouse
