#include "obs/export_prometheus.h"

#include <gtest/gtest.h>

#include "obs/metrics.h"

namespace sdelta::obs {
namespace {

TEST(PrometheusNameTest, PrefixesAndSanitizes) {
  EXPECT_EQ(PrometheusName("propagate.rows_scanned"),
            "sdelta_propagate_rows_scanned");
  EXPECT_EQ(PrometheusName("op.hash_join.seconds"),
            "sdelta_op_hash_join_seconds");
  EXPECT_EQ(PrometheusName("exec.worker_utilization.0"),
            "sdelta_exec_worker_utilization_0");
  EXPECT_EQ(PrometheusName("weird name-2"), "sdelta_weird_name_2");
}

TEST(ExportPrometheusTest, GoldenExposition) {
  MetricsRegistry m;
  m.Add("a.counter", 3);
  m.Set("b.gauge", 0.5);
  m.Observe("c.hist", 2.0);
  m.Observe("c.hist", 4.0);

  EXPECT_EQ(ExportPrometheus(m),
            "# HELP sdelta_a_counter_total Monotonic event count.\n"
            "# TYPE sdelta_a_counter_total counter\n"
            "sdelta_a_counter_total 3\n"
            "# HELP sdelta_b_gauge Last-written value.\n"
            "# TYPE sdelta_b_gauge gauge\n"
            "sdelta_b_gauge 0.5\n"
            "# HELP sdelta_c_hist Observed value distribution.\n"
            "# TYPE sdelta_c_hist histogram\n"
            "sdelta_c_hist_bucket{le=\"2\"} 1\n"
            "sdelta_c_hist_bucket{le=\"4\"} 2\n"
            "sdelta_c_hist_bucket{le=\"+Inf\"} 2\n"
            "sdelta_c_hist_sum 6\n"
            "sdelta_c_hist_count 2\n"
            "# HELP sdelta_c_hist_quantiles Approximate quantiles (legacy).\n"
            "# TYPE sdelta_c_hist_quantiles gauge\n"
            "sdelta_c_hist_quantiles{quantile=\"0.5\"} 2\n"
            "sdelta_c_hist_quantiles{quantile=\"0.95\"} 4\n"
            "sdelta_c_hist_quantiles{quantile=\"0.99\"} 4\n"
            "# HELP sdelta_c_hist_min Minimum observed value.\n"
            "# TYPE sdelta_c_hist_min gauge\n"
            "sdelta_c_hist_min 2\n"
            "# HELP sdelta_c_hist_max Maximum observed value.\n"
            "# TYPE sdelta_c_hist_max gauge\n"
            "sdelta_c_hist_max 4\n");
}

TEST(ExportPrometheusTest, EmptyHistogramMinMaxRenderAsZero) {
  MetricsSnapshot snap;
  snap.histograms["idle"];  // default-constructed: count 0, min/max inf
  const std::string out = ExportPrometheus(snap);
  EXPECT_NE(out.find("sdelta_idle_min 0\n"), std::string::npos);
  EXPECT_NE(out.find("sdelta_idle_max 0\n"), std::string::npos);
  EXPECT_NE(out.find("sdelta_idle_count 0\n"), std::string::npos);
  // Even with no observations the mandatory +Inf bucket is present.
  EXPECT_NE(out.find("sdelta_idle_bucket{le=\"+Inf\"} 0\n"),
            std::string::npos);
}

TEST(ExportPrometheusTest, BucketsAreCumulativeAcrossThePopulatedRange) {
  MetricsRegistry m;
  // 0.5, 1, and 3 land in buckets with upper bounds 0.5, 1, and 4; the
  // gap bucket (le="2") must still appear with the running total so the
  // series is cumulative, and sub-one bounds exercise fractional le
  // rendering.
  m.Observe("h", 0.5);
  m.Observe("h", 1.0);
  m.Observe("h", 3.0);
  const std::string out = ExportPrometheus(m);
  EXPECT_NE(out.find("sdelta_h_bucket{le=\"0.5\"} 1\n"), std::string::npos);
  EXPECT_NE(out.find("sdelta_h_bucket{le=\"1\"} 2\n"), std::string::npos);
  EXPECT_NE(out.find("sdelta_h_bucket{le=\"2\"} 2\n"), std::string::npos);
  EXPECT_NE(out.find("sdelta_h_bucket{le=\"4\"} 3\n"), std::string::npos);
  EXPECT_NE(out.find("sdelta_h_bucket{le=\"+Inf\"} 3\n"), std::string::npos);
}

TEST(ExportPrometheusTest, EmptyRegistryExportsNothing) {
  MetricsRegistry m;
  EXPECT_EQ(ExportPrometheus(m), "");
}

}  // namespace
}  // namespace sdelta::obs
