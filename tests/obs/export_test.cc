#include <gtest/gtest.h>

#include <cstdio>
#include <string>

#include "obs/export_chrome.h"
#include "obs/export_json.h"
#include "obs/json.h"
#include "obs/metrics.h"
#include "obs/trace.h"

namespace sdelta::obs {
namespace {

/// A tiny fixed workload: one root span with an attribute and a child,
/// plus one of each instrument kind.
void RunWorkload(Tracer& t, MetricsRegistry& m) {
  TraceSpan root(&t, "root");
  root.Attr("view", "SID_sales");
  {
    TraceSpan child(&t, "child");
  }
  m.Add("a.counter", 3);
  m.Set("b.gauge", 0.5);
  m.Observe("c.hist", 2.0);
  m.Observe("c.hist", 4.0);
}

TEST(ExportJsonTest, GoldenSchema) {
  // The exported document — after zeroing wall-clock fields — must be
  // byte-for-byte this golden string: the schema is deterministic.
  Tracer t;
  MetricsRegistry m;
  RunWorkload(t, m);

  Json doc = Json::Parse(ExportJson(&m, &t));
  NormalizeSpanTimes(doc);
  EXPECT_EQ(
      doc.Dump(),
      "{\"schema\":\"sdelta.obs.v2\","
      "\"metrics\":{"
      "\"counters\":{\"a.counter\":3},"
      "\"gauges\":{\"b.gauge\":0.5},"
      "\"histograms\":{\"c.hist\":"
      "{\"count\":2,\"sum\":6,\"min\":2,\"max\":4,\"mean\":3,"
      "\"p50\":2,\"p95\":4,\"p99\":4}}},"
      "\"spans\":["
      "{\"id\":1,\"parent\":0,\"name\":\"root\",\"start_us\":0,"
      "\"dur_us\":0,\"attrs\":{\"view\":\"SID_sales\"}},"
      "{\"id\":2,\"parent\":1,\"name\":\"child\",\"start_us\":0,"
      "\"dur_us\":0,\"attrs\":{}}]}");
}

TEST(ExportJsonTest, TwoRunsNormalizeIdentically) {
  auto run = [] {
    Tracer t;
    MetricsRegistry m;
    RunWorkload(t, m);
    Json doc = Json::Parse(ExportJson(&m, &t));
    NormalizeSpanTimes(doc);
    return doc.Dump(2);
  };
  EXPECT_EQ(run(), run());
}

TEST(ExportJsonTest, SectionsAreOptional) {
  MetricsRegistry m;
  m.Add("x");
  Json metrics_only = Json::Parse(ExportJson(&m, nullptr));
  EXPECT_NE(metrics_only.Find("metrics"), nullptr);
  EXPECT_EQ(metrics_only.Find("spans"), nullptr);

  Tracer t;
  t.EndSpan(t.BeginSpan("s"));
  Json spans_only = Json::Parse(ExportJson(nullptr, &t));
  EXPECT_EQ(spans_only.Find("metrics"), nullptr);
  ASSERT_NE(spans_only.Find("spans"), nullptr);
  EXPECT_EQ(spans_only.Find("spans")->items().size(), 1u);
}

TEST(ExportJsonTest, RebaseMakesFirstSpanStartAtZero) {
  Tracer t;
  t.EndSpan(t.BeginSpan("s"));
  Json spans = SpansToJson(t, /*rebase_timestamps=*/true);
  ASSERT_EQ(spans.items().size(), 1u);
  EXPECT_EQ(spans.items()[0].Find("start_us")->as_int(), 0);
}

TEST(ChromeTraceTest, EventsCarrySpanTreeInArgs) {
  Tracer t;
  const uint64_t phase = t.BeginSpan("propagate");
  const uint64_t parent = t.BeginSpan("SID_sales");
  t.AddAttribute(parent, "source", "base");
  t.EndSpan(parent);
  const uint64_t child = t.BeginSpan("sR_sales", parent);
  t.EndSpan(child);
  t.EndSpan(phase);

  Json doc = Json::Parse(ExportChromeTrace(t));
  EXPECT_EQ(doc.Find("displayTimeUnit")->as_string(), "ms");
  const std::vector<Json>& events = doc.Find("traceEvents")->items();
  ASSERT_EQ(events.size(), 3u);
  for (const Json& e : events) {
    EXPECT_EQ(e.Find("ph")->as_string(), "X");
    EXPECT_EQ(e.Find("cat")->as_string(), "sdelta");
    EXPECT_NE(e.Find("ts"), nullptr);
    EXPECT_NE(e.Find("dur"), nullptr);
  }
  // The D-lattice parent (closed before the child started) survives in
  // args, both as an id and as a resolved name.
  const Json& sr = events[2];
  EXPECT_EQ(sr.Find("name")->as_string(), "sR_sales");
  const Json* args = sr.Find("args");
  ASSERT_NE(args, nullptr);
  EXPECT_EQ(args->Find("parent_id")->as_int(),
            static_cast<int64_t>(parent));
  EXPECT_EQ(args->Find("parent")->as_string(), "SID_sales");
  EXPECT_EQ(events[1].Find("args")->Find("source")->as_string(), "base");
}

TEST(MergeBenchJsonTest, UpsertsByKeyAndSortsDeterministically) {
  const std::string path =
      ::testing::TempDir() + "/sdelta_bench_merge_test.json";
  std::remove(path.c_str());

  auto entry = [](const std::string& series, int64_t n, double ms) {
    Json e = Json::Object();
    e.Set("series", Json::Str(series));
    e.Set("n", Json::Int(n));
    e.Set("ms", Json::Double(ms));
    return e;
  };

  MergeBenchJson(path, "demo", {"series", "n"},
                 {entry("b", 1, 10.0), entry("a", 2, 20.0)});
  std::string contents;
  ASSERT_TRUE(ReadFile(path, contents));
  Json doc = Json::Parse(contents);
  EXPECT_EQ(doc.Find("schema")->as_string(), "sdelta.bench.v1");
  EXPECT_EQ(doc.Find("bench")->as_string(), "demo");
  ASSERT_EQ(doc.Find("entries")->items().size(), 2u);
  // Sorted by key: "a" before "b".
  EXPECT_EQ(doc.Find("entries")->items()[0].Find("series")->as_string(),
            "a");

  // Second write: replaces ("b",1), keeps ("a",2), adds ("c",3).
  MergeBenchJson(path, "demo", {"series", "n"},
                 {entry("b", 1, 99.0), entry("c", 3, 30.0)});
  ASSERT_TRUE(ReadFile(path, contents));
  doc = Json::Parse(contents);
  const std::vector<Json>& entries = doc.Find("entries")->items();
  ASSERT_EQ(entries.size(), 3u);
  EXPECT_EQ(entries[0].Find("series")->as_string(), "a");
  EXPECT_EQ(entries[1].Find("series")->as_string(), "b");
  EXPECT_EQ(entries[1].Find("ms")->as_double(), 99.0);
  EXPECT_EQ(entries[2].Find("series")->as_string(), "c");

  // Identical input -> identical bytes.
  MergeBenchJson(path, "demo", {"series", "n"}, {});
  std::string again;
  ASSERT_TRUE(ReadFile(path, again));
  EXPECT_EQ(contents, again);
  std::remove(path.c_str());
}

TEST(MergeBenchJsonTest, MalformedPreviousFileIsDiscarded) {
  const std::string path =
      ::testing::TempDir() + "/sdelta_bench_malformed_test.json";
  WriteFile(path, "not json at all {");
  Json e = Json::Object();
  e.Set("k", Json::Str("v"));
  MergeBenchJson(path, "demo", {"k"}, {e});
  std::string contents;
  ASSERT_TRUE(ReadFile(path, contents));
  EXPECT_EQ(Json::Parse(contents).Find("entries")->items().size(), 1u);
  std::remove(path.c_str());
}

}  // namespace
}  // namespace sdelta::obs
