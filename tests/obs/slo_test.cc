#include "obs/slo.h"

#include <gtest/gtest.h>

#include <limits>

#include "obs/metrics.h"

namespace sdelta::obs {
namespace {

TEST(SloTrackerTest, DefaultTargetsNeverViolate) {
  MetricsRegistry m;
  SloTracker slo(SloTracker::Targets{}, &m);
  slo.ObserveStaleness(1e9);
  slo.ObserveWindow(1e9);
  EXPECT_EQ(slo.staleness_violations(), 0u);
  EXPECT_EQ(slo.window_violations(), 0u);
  EXPECT_EQ(slo.observations(), 2u);
  EXPECT_DOUBLE_EQ(slo.BurnRate(), 0.0);
  EXPECT_TRUE(slo.Healthy());
}

TEST(SloTrackerTest, CountersArePreRegisteredAtZero) {
  MetricsRegistry m;
  SloTracker slo(SloTracker::Targets{}, &m);
  const MetricsSnapshot snap = m.Snapshot();
  ASSERT_TRUE(snap.counters.count("service.slo.staleness_violations"));
  ASSERT_TRUE(snap.counters.count("service.slo.window_violations"));
  EXPECT_EQ(snap.counters.at("service.slo.staleness_violations"), 0u);
  EXPECT_EQ(snap.counters.at("service.slo.window_violations"), 0u);
  ASSERT_TRUE(snap.gauges.count("service.slo.burn_rate"));
}

TEST(SloTrackerTest, ViolationsCountAndDriveMetrics) {
  MetricsRegistry m;
  SloTracker::Targets targets;
  targets.staleness_seconds = 1.0;
  targets.refresh_window_seconds = 0.01;
  targets.error_budget = 0.5;
  SloTracker slo(targets, &m);

  slo.ObserveStaleness(0.5);  // within target
  slo.ObserveStaleness(2.0);  // violates
  slo.ObserveWindow(0.005);   // within target
  slo.ObserveWindow(0.02);    // violates

  EXPECT_EQ(slo.staleness_violations(), 1u);
  EXPECT_EQ(slo.window_violations(), 1u);
  EXPECT_EQ(slo.observations(), 4u);
  EXPECT_EQ(m.counter("service.slo.staleness_violations"), 1u);
  EXPECT_EQ(m.counter("service.slo.window_violations"), 1u);
  // 2 violations / 4 observations / 0.5 budget = burn 1.0: exactly at
  // budget, still healthy.
  EXPECT_DOUBLE_EQ(slo.BurnRate(), 1.0);
  EXPECT_TRUE(slo.Healthy());

  slo.ObserveWindow(0.02);  // 3/5/0.5 = 1.2: burning too fast
  EXPECT_GT(slo.BurnRate(), 1.0);
  EXPECT_FALSE(slo.Healthy());
  EXPECT_DOUBLE_EQ(m.gauge("service.slo.burn_rate"), slo.BurnRate());
}

TEST(SloTrackerTest, StalenessWithinTargetDoesNotRecord) {
  MetricsRegistry m;
  SloTracker::Targets targets;
  targets.staleness_seconds = 1.0;
  SloTracker slo(targets, &m);
  EXPECT_TRUE(slo.StalenessWithinTarget(0.5));
  EXPECT_FALSE(slo.StalenessWithinTarget(2.0));
  // The healthz-style check moved no counters and took no observation.
  EXPECT_EQ(slo.observations(), 0u);
  EXPECT_EQ(m.counter("service.slo.staleness_violations"), 0u);
}

TEST(SloTrackerTest, NullRegistryIsSafe) {
  SloTracker::Targets targets;
  targets.staleness_seconds = 0.0;  // everything violates
  SloTracker slo(targets, nullptr);
  slo.ObserveStaleness(1.0);
  EXPECT_EQ(slo.staleness_violations(), 1u);
}

TEST(SloTrackerTest, ToJsonRendersInfiniteTargetsAsNull) {
  MetricsRegistry m;
  SloTracker::Targets targets;
  targets.refresh_window_seconds = 0.25;
  SloTracker slo(targets, &m);
  slo.ObserveWindow(0.5);
  const Json doc = slo.ToJson();
  EXPECT_EQ(doc.Find("targets")->Find("staleness_seconds")->kind(),
            Json::Kind::kNull);
  EXPECT_DOUBLE_EQ(
      doc.Find("targets")->Find("refresh_window_seconds")->as_double(), 0.25);
  EXPECT_EQ(doc.Find("window_violations")->as_int(), 1);
  EXPECT_EQ(doc.Find("observations")->as_int(), 1);
  EXPECT_FALSE(doc.Find("healthy")->as_bool());  // 1/1/0.01 = burn 100
}

TEST(SloTrackerTest, ZeroTargetViolatesDeterministically) {
  // A zero window target turns every install into a violation — the
  // deterministic configuration the thread-invariance suite uses.
  MetricsRegistry m;
  SloTracker::Targets targets;
  targets.refresh_window_seconds = 0.0;
  SloTracker slo(targets, &m);
  for (int i = 0; i < 5; ++i) slo.ObserveWindow(1e-9);
  EXPECT_EQ(slo.window_violations(), 5u);
  EXPECT_EQ(m.counter("service.slo.window_violations"), 5u);
}

}  // namespace
}  // namespace sdelta::obs
