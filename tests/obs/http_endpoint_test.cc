#include "obs/http_endpoint.h"

#include <gtest/gtest.h>

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <stdexcept>
#include <string>

namespace sdelta::obs {
namespace {

/// Minimal test client: one HTTP/1.0 round trip against 127.0.0.1.
std::string RoundTrip(uint16_t port, const std::string& request) {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  EXPECT_GE(fd, 0);
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof addr) != 0) {
    ::close(fd);
    ADD_FAILURE() << "connect failed";
    return {};
  }
  EXPECT_EQ(::send(fd, request.data(), request.size(), 0),
            static_cast<ssize_t>(request.size()));
  std::string response;
  char buf[4096];
  ssize_t n = 0;
  while ((n = ::recv(fd, buf, sizeof buf, 0)) > 0) {
    response.append(buf, static_cast<size_t>(n));
  }
  ::close(fd);
  return response;
}

std::string Get(uint16_t port, const std::string& path) {
  return RoundTrip(port, "GET " + path + " HTTP/1.0\r\n\r\n");
}

TEST(HttpEndpointTest, ServesRegisteredRoute) {
  HttpEndpoint http;
  http.Route("/ping", [](const HttpRequest&) {
    HttpResponse r;
    r.content_type = "text/plain";
    r.body = "pong\n";
    return r;
  });
  http.Start(0);
  ASSERT_GT(http.port(), 0);
  const std::string response = Get(http.port(), "/ping");
  EXPECT_NE(response.find("HTTP/1.0 200 OK"), std::string::npos);
  EXPECT_NE(response.find("Content-Type: text/plain"), std::string::npos);
  EXPECT_NE(response.find("Content-Length: 5"), std::string::npos);
  EXPECT_NE(response.find("\r\n\r\npong\n"), std::string::npos);
  EXPECT_EQ(http.requests_served(), 1u);
  http.Stop();
}

TEST(HttpEndpointTest, HandlerSeesPathAndQuery) {
  HttpEndpoint http;
  http.Route("/echo", [](const HttpRequest& req) {
    HttpResponse r;
    r.body = req.method + " " + req.path + " [" + req.query + "]";
    return r;
  });
  http.Start(0);
  const std::string response = Get(http.port(), "/echo?a=1&b=2");
  EXPECT_NE(response.find("GET /echo [a=1&b=2]"), std::string::npos);
  http.Stop();
}

TEST(HttpEndpointTest, UnknownRouteIs404AndServerSurvives) {
  HttpEndpoint http;
  http.Route("/ok", [](const HttpRequest&) { return HttpResponse{}; });
  http.Start(0);
  EXPECT_NE(Get(http.port(), "/missing").find("HTTP/1.0 404"),
            std::string::npos);
  EXPECT_NE(Get(http.port(), "/ok").find("HTTP/1.0 200"), std::string::npos);
  EXPECT_EQ(http.requests_served(), 2u);
  http.Stop();
}

TEST(HttpEndpointTest, NonGetIs405) {
  HttpEndpoint http;
  http.Route("/ok", [](const HttpRequest&) { return HttpResponse{}; });
  http.Start(0);
  const std::string response =
      RoundTrip(http.port(), "POST /ok HTTP/1.0\r\n\r\n");
  EXPECT_NE(response.find("HTTP/1.0 405"), std::string::npos);
  http.Stop();
}

TEST(HttpEndpointTest, HeadOmitsTheBodyButKeepsHeaders) {
  HttpEndpoint http;
  http.Route("/doc", [](const HttpRequest&) {
    HttpResponse r;
    r.body = "0123456789";
    return r;
  });
  http.Start(0);
  const std::string response =
      RoundTrip(http.port(), "HEAD /doc HTTP/1.0\r\n\r\n");
  EXPECT_NE(response.find("HTTP/1.0 200"), std::string::npos);
  EXPECT_NE(response.find("Content-Length: 10"), std::string::npos);
  EXPECT_EQ(response.find("0123456789"), std::string::npos);
  http.Stop();
}

TEST(HttpEndpointTest, ThrowingHandlerAnswers503) {
  HttpEndpoint http;
  http.Route("/boom", [](const HttpRequest&) -> HttpResponse {
    throw std::runtime_error("kaput");
  });
  http.Start(0);
  const std::string response = Get(http.port(), "/boom");
  EXPECT_NE(response.find("HTTP/1.0 503"), std::string::npos);
  EXPECT_NE(response.find("kaput"), std::string::npos);
  // Still serving afterwards.
  EXPECT_NE(Get(http.port(), "/boom").find("503"), std::string::npos);
  http.Stop();
}

TEST(HttpEndpointTest, MalformedRequestLineIs400) {
  HttpEndpoint http;
  http.Route("/ok", [](const HttpRequest&) { return HttpResponse{}; });
  http.Start(0);
  EXPECT_NE(RoundTrip(http.port(), "NONSENSE\r\n\r\n").find("HTTP/1.0 400"),
            std::string::npos);
  http.Stop();
}

TEST(HttpEndpointTest, StartTwiceThrowsAndStopIsIdempotent) {
  HttpEndpoint http;
  http.Route("/ok", [](const HttpRequest&) { return HttpResponse{}; });
  http.Start(0);
  EXPECT_THROW(http.Start(0), std::logic_error);
  http.Stop();
  http.Stop();  // no-op
  EXPECT_FALSE(http.running());
}

TEST(HttpEndpointTest, StopWithoutAnyRequestReturnsPromptly) {
  HttpEndpoint http;
  http.Start(0);  // no routes, no traffic: Stop must not hang in accept
  http.Stop();
  SUCCEED();
}

TEST(HttpEndpointTest, PortInUseThrows) {
  HttpEndpoint a;
  a.Start(0);
  HttpEndpoint b;
  EXPECT_THROW(b.Start(a.port()), std::runtime_error);
  a.Stop();
}

TEST(HttpEndpointTest, RouteAfterStartThrows) {
  HttpEndpoint http;
  http.Start(0);
  EXPECT_THROW(
      http.Route("/late", [](const HttpRequest&) { return HttpResponse{}; }),
      std::logic_error);
  http.Stop();
}

}  // namespace
}  // namespace sdelta::obs
