#include "obs/event_log.h"

#include <gtest/gtest.h>

#include <thread>
#include <vector>

namespace sdelta::obs {
namespace {

TEST(EventTypeTest, NamesRoundTrip) {
  const EventType all[] = {
      EventType::kBatchStart,     EventType::kBatchEnd,
      EventType::kEpochInstall,   EventType::kWalCheckpoint,
      EventType::kQueueSaturated, EventType::kSlowQuery,
      EventType::kRecoveryReplay,
  };
  for (EventType t : all) {
    EventType parsed;
    ASSERT_TRUE(EventTypeFromName(EventTypeName(t), &parsed))
        << EventTypeName(t);
    EXPECT_EQ(parsed, t);
  }
  EventType unused;
  EXPECT_FALSE(EventTypeFromName("NotAnEvent", &unused));
}

TEST(EventLogTest, RecordAssignsMonotonicIdsAndTimestamps) {
  EventLog log(8);
  EXPECT_EQ(log.Record(EventType::kBatchStart, 1), 1u);
  EXPECT_EQ(log.Record(EventType::kBatchEnd, 1), 2u);
  const std::vector<Event> events = log.Snapshot();
  ASSERT_EQ(events.size(), 2u);
  EXPECT_EQ(events[0].id, 1u);
  EXPECT_EQ(events[1].id, 2u);
  EXPECT_LE(events[0].ts_ns, events[1].ts_ns);
  EXPECT_EQ(log.total_recorded(), 2u);
  EXPECT_EQ(log.dropped_count(), 0u);
}

TEST(EventLogTest, CorrelationFieldsSurviveTheRing) {
  EventLog log;
  log.Record(EventType::kSlowQuery, /*batch_id=*/0, /*request_id=*/42,
             /*seq=*/0, /*value=*/0.25, "region query");
  const std::vector<Event> events = log.Snapshot();
  ASSERT_EQ(events.size(), 1u);
  EXPECT_EQ(events[0].request_id, 42u);
  EXPECT_DOUBLE_EQ(events[0].value, 0.25);
  EXPECT_EQ(events[0].detail, "region query");
}

TEST(EventLogTest, RingOverwritesOldestAndCountsDrops) {
  EventLog log(4);
  for (uint64_t i = 1; i <= 10; ++i) {
    log.Record(EventType::kBatchStart, i);
  }
  EXPECT_EQ(log.total_recorded(), 10u);
  EXPECT_EQ(log.dropped_count(), 6u);
  const std::vector<Event> events = log.Snapshot();
  ASSERT_EQ(events.size(), 4u);
  // Oldest-to-newest: batches 7, 8, 9, 10 survive.
  for (size_t i = 0; i < events.size(); ++i) {
    EXPECT_EQ(events[i].batch_id, 7 + i);
    EXPECT_EQ(events[i].id, 7 + i);
  }
}

TEST(EventLogTest, CountByTypeSeesOnlyRetainedEvents) {
  EventLog log(3);
  log.Record(EventType::kBatchStart);
  log.Record(EventType::kBatchEnd);
  log.Record(EventType::kBatchStart);
  log.Record(EventType::kBatchEnd);  // evicts the first BatchStart
  EXPECT_EQ(log.count(EventType::kBatchStart), 1u);
  EXPECT_EQ(log.count(EventType::kBatchEnd), 2u);
  EXPECT_EQ(log.count(EventType::kWalCheckpoint), 0u);
}

TEST(EventLogTest, ZeroCapacityClampsToOne) {
  EventLog log(0);
  EXPECT_EQ(log.capacity(), 1u);
  log.Record(EventType::kBatchStart, 1);
  log.Record(EventType::kBatchEnd, 1);
  const std::vector<Event> events = log.Snapshot();
  ASSERT_EQ(events.size(), 1u);
  EXPECT_EQ(events[0].type, EventType::kBatchEnd);
}

TEST(EventLogTest, ClearResetsEverything) {
  EventLog log(4);
  log.Record(EventType::kBatchStart);
  log.Clear();
  EXPECT_EQ(log.total_recorded(), 0u);
  EXPECT_TRUE(log.Snapshot().empty());
  EXPECT_EQ(log.Record(EventType::kBatchEnd), 1u);  // ids restart
}

TEST(EventLogTest, ToJsonCarriesSchemaTotalsAndCounts) {
  EventLog log(8);
  log.Record(EventType::kBatchStart, 1, 0, 3, 2.0, "2 changesets");
  log.Record(EventType::kEpochInstall, 1, 0, 3, 0.001, "epoch 2");
  log.Record(EventType::kBatchEnd, 1, 0, 3, 0.125, "1 runs");
  const Json doc = log.ToJson();
  EXPECT_EQ(doc.Find("schema")->as_string(), "sdelta.events.v1");
  EXPECT_EQ(doc.Find("capacity")->as_int(), 8);
  EXPECT_EQ(doc.Find("total_recorded")->as_int(), 3);
  EXPECT_EQ(doc.Find("dropped")->as_int(), 0);
  EXPECT_EQ(doc.Find("counts")->Find("BatchStart")->as_int(), 1);
  EXPECT_EQ(doc.Find("counts")->Find("EpochInstall")->as_int(), 1);
  EXPECT_EQ(doc.Find("counts")->Find("SlowQuery")->as_int(), 0);
  const Json* events = doc.Find("events");
  ASSERT_NE(events, nullptr);
  ASSERT_EQ(events->items().size(), 3u);
  EXPECT_EQ(events->items()[0].Find("type")->as_string(), "BatchStart");
  EXPECT_EQ(events->items()[0].Find("batch_id")->as_int(), 1);
  EXPECT_EQ(events->items()[0].Find("detail")->as_string(), "2 changesets");
}

TEST(EventLogTest, NormalizedJsonIsByteDeterministic) {
  const auto run = [] {
    EventLog log(8);
    log.Record(EventType::kBatchStart, 1, 0, 2, 2.0, "2 changesets");
    log.Record(EventType::kBatchEnd, 1, 0, 2, 0.5, "1 runs");
    Json doc = log.ToJson();
    NormalizeEventTimes(doc);
    return doc.Dump(2);
  };
  EXPECT_EQ(run(), run());
}

TEST(EventLogTest, ConcurrentRecordersLoseNothing) {
  EventLog log(4096);
  constexpr int kThreads = 8;
  constexpr int kPerThread = 200;
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&log, t] {
      for (int i = 0; i < kPerThread; ++i) {
        log.Record(EventType::kSlowQuery, 0,
                   static_cast<uint64_t>(t * kPerThread + i));
      }
    });
  }
  for (std::thread& t : threads) t.join();
  EXPECT_EQ(log.total_recorded(), kThreads * kPerThread);
  EXPECT_EQ(log.dropped_count(), 0u);
  const std::vector<Event> events = log.Snapshot();
  ASSERT_EQ(events.size(), kThreads * kPerThread);
  // Ids are a permutation-free monotonic assignment regardless of the
  // interleaving.
  for (size_t i = 0; i < events.size(); ++i) {
    EXPECT_EQ(events[i].id, i + 1);
  }
}

}  // namespace
}  // namespace sdelta::obs
