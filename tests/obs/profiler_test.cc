#include "obs/profiler.h"

#include <gtest/gtest.h>

#include "obs/trace.h"

namespace sdelta::obs {
namespace {

// Builds the span tree
//   warehouse.RunBatch
//     propagate        (rows attr)
//       step.a
//       step.a         (second call, merged into one frame)
//     refresh
// and returns the tracer's spans.
std::vector<SpanRecord> MakeSpans(Tracer& tracer) {
  {
    TraceSpan batch(&tracer, "warehouse.RunBatch");
    {
      TraceSpan propagate(&tracer, "propagate");
      propagate.Attr("delta_rows", static_cast<uint64_t>(42));
      { TraceSpan step(&tracer, "step.a"); }
      { TraceSpan step(&tracer, "step.a"); }
    }
    { TraceSpan refresh(&tracer, "refresh"); }
  }
  return tracer.spans();
}

TEST(ProfilerTest, FoldsSpansByNamePath) {
  Tracer tracer;
  Profiler profiler;
  profiler.RecordBatch(MakeSpans(tracer), nullptr);

  EXPECT_EQ(profiler.batches(), 1u);
  const ProfileNode root = profiler.last_batch();
  EXPECT_EQ(root.name, "profile");
  ASSERT_EQ(root.children.size(), 1u);
  const ProfileNode& batch = root.children[0];
  EXPECT_EQ(batch.name, "warehouse.RunBatch");
  EXPECT_EQ(batch.calls, 1u);
  ASSERT_EQ(batch.children.size(), 2u);
  // Children are sorted by name.
  EXPECT_EQ(batch.children[0].name, "propagate");
  EXPECT_EQ(batch.children[1].name, "refresh");
  const ProfileNode& propagate = batch.children[0];
  EXPECT_EQ(propagate.rows, 42u);
  ASSERT_EQ(propagate.children.size(), 1u);
  EXPECT_EQ(propagate.children[0].name, "step.a");
  EXPECT_EQ(propagate.children[0].calls, 2u);  // same path merged

  // Inclusive time nests: parent >= sum of children; exclusive is the
  // remainder.
  EXPECT_GE(batch.inclusive_ns,
            propagate.inclusive_ns + batch.children[1].inclusive_ns);
  EXPECT_EQ(batch.exclusive_ns,
            batch.inclusive_ns - propagate.inclusive_ns -
                batch.children[1].inclusive_ns);
}

TEST(ProfilerTest, CumulativeMergesAcrossBatches) {
  Tracer t1;
  Profiler profiler;
  profiler.RecordBatch(MakeSpans(t1), nullptr);
  Tracer t2;
  profiler.RecordBatch(MakeSpans(t2), nullptr);

  EXPECT_EQ(profiler.batches(), 2u);
  const ProfileNode last = profiler.last_batch();
  EXPECT_EQ(last.children[0].calls, 1u);
  const ProfileNode cumulative = profiler.cumulative();
  ASSERT_EQ(cumulative.children.size(), 1u);
  EXPECT_EQ(cumulative.children[0].calls, 2u);
  const ProfileNode* propagate = cumulative.children[0].FindChild("propagate");
  ASSERT_NE(propagate, nullptr);
  EXPECT_EQ(propagate->rows, 84u);
  const ProfileNode* step = propagate->FindChild("step.a");
  ASSERT_NE(step, nullptr);
  EXPECT_EQ(step->calls, 4u);
}

TEST(ProfilerTest, OperatorStatsBecomeFrames) {
  Tracer tracer;
  exec::OperatorStats ops;
  ops.select.calls = 3;
  ops.select.rows_out = 100;
  ops.select.wall_seconds = 0.001;
  ops.group_by.calls = 1;
  ops.group_by.rows_out = 10;
  Profiler profiler;
  profiler.RecordBatch(MakeSpans(tracer), &ops);

  const ProfileNode root = profiler.last_batch();
  const ProfileNode* container = root.FindChild("operators");
  ASSERT_NE(container, nullptr);
  ASSERT_EQ(container->children.size(), 2u);  // only operators with calls
  EXPECT_EQ(container->children[0].name, "op.group_by");
  EXPECT_EQ(container->children[1].name, "op.select");
  EXPECT_EQ(container->children[1].calls, 3u);
  EXPECT_EQ(container->children[1].rows, 100u);
  EXPECT_EQ(container->children[1].exclusive_ns, 1000000u);
}

TEST(ProfilerTest, OpenSpansCountAsZeroDuration) {
  Tracer tracer;
  const uint64_t id = tracer.BeginSpan("stuck");
  Profiler profiler;
  profiler.RecordBatch(tracer.spans(), nullptr);
  const ProfileNode root = profiler.last_batch();
  const ProfileNode* stuck = root.FindChild("stuck");
  ASSERT_NE(stuck, nullptr);
  EXPECT_EQ(stuck->calls, 1u);
  EXPECT_EQ(stuck->inclusive_ns, 0u);
  tracer.EndSpan(id);
}

TEST(ProfilerTest, CollapsedStacksAndText) {
  Tracer tracer;
  Profiler profiler;
  profiler.RecordBatch(MakeSpans(tracer), nullptr);

  const std::string collapsed = profiler.ToCollapsed();
  EXPECT_NE(collapsed.find("warehouse.RunBatch;propagate;step.a "),
            std::string::npos);
  EXPECT_NE(collapsed.find("warehouse.RunBatch;refresh "), std::string::npos);

  const std::string text = profiler.ToText();
  EXPECT_NE(text.find("profile"), std::string::npos);
  EXPECT_NE(text.find("step.a  calls=2"), std::string::npos);
}

TEST(ProfilerTest, JsonExportNormalizesDeterministically) {
  Tracer t1;
  Profiler p1;
  p1.RecordBatch(MakeSpans(t1), nullptr);
  Tracer t2;
  Profiler p2;
  p2.RecordBatch(MakeSpans(t2), nullptr);

  Json a = p1.ToJson();
  Json b = p2.ToJson();
  EXPECT_EQ(a.Find("schema")->as_string(), "sdelta.profile.v1");
  // Wall times differ run to run; after normalization the documents are
  // byte-identical (same span structure, calls, rows).
  NormalizeProfileTimes(a);
  NormalizeProfileTimes(b);
  EXPECT_EQ(a.Dump(2), b.Dump(2));

  // The collapsed renderer also works from the exported JSON.
  const std::string collapsed = CollapsedFromProfileJson(a);
  EXPECT_NE(collapsed.find("warehouse.RunBatch;propagate;step.a 0"),
            std::string::npos);
}

}  // namespace
}  // namespace sdelta::obs
