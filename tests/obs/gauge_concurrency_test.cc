// ISSUE 5 satellite (metrics polish): gauges written by one thread
// (the service's maintenance loop) while other threads snapshot the
// registry (Prometheus scrapes, `service stats`) must race-free yield
// point-in-time-consistent values: every observed value is one that was
// actually written, and values never run backwards when the writer is
// monotone. CI runs this under TSAN too.
#include <gtest/gtest.h>

#include <atomic>
#include <thread>
#include <vector>

#include "obs/metrics.h"

namespace sdelta::obs {
namespace {

TEST(GaugeConcurrencyTest, SnapshotsSeeConsistentMonotoneValues) {
  MetricsRegistry registry;
  registry.Set("svc.queue_depth", 0.0);
  registry.Set("svc.epoch", 0.0);

  constexpr int kWrites = 20000;
  constexpr int kReaders = 4;
  std::atomic<bool> done{false};
  std::atomic<bool> failed{false};

  std::thread writer([&] {
    for (int i = 1; i <= kWrites; ++i) {
      registry.Set("svc.queue_depth", static_cast<double>(i));
      registry.Set("svc.epoch", static_cast<double>(i));
      registry.Add("svc.batches");
      registry.Observe("svc.window", 1e-6 * i);
    }
    done.store(true, std::memory_order_release);
  });

  std::vector<std::thread> readers;
  readers.reserve(kReaders);
  for (int r = 0; r < kReaders; ++r) {
    readers.emplace_back([&] {
      double last_depth = 0;
      double last_epoch = 0;
      uint64_t last_batches = 0;
      uint64_t last_window_count = 0;
      while (!done.load(std::memory_order_acquire)) {
        const MetricsSnapshot snap = registry.Snapshot();
        const double depth = snap.gauges.count("svc.queue_depth")
                                 ? snap.gauges.at("svc.queue_depth")
                                 : 0;
        const double epoch =
            snap.gauges.count("svc.epoch") ? snap.gauges.at("svc.epoch") : 0;
        const uint64_t batches = snap.counters.count("svc.batches")
                                     ? snap.counters.at("svc.batches")
                                     : 0;
        const uint64_t window_count = snap.histograms.count("svc.window")
                                          ? snap.histograms.at("svc.window").count
                                          : 0;
        // Written values only (integers in [0, kWrites]), and monotone
        // per reader — a torn read or lost update breaks one of these.
        if (depth < last_depth || epoch < last_epoch ||
            batches < last_batches || window_count < last_window_count ||
            depth != static_cast<double>(static_cast<int64_t>(depth)) ||
            depth > kWrites || batches > kWrites) {
          failed.store(true);
          return;
        }
        last_depth = depth;
        last_epoch = epoch;
        last_batches = batches;
        last_window_count = window_count;
      }
    });
  }

  writer.join();
  for (std::thread& t : readers) t.join();
  EXPECT_FALSE(failed.load());

  // The final snapshot is exact.
  const MetricsSnapshot final_snap = registry.Snapshot();
  EXPECT_EQ(final_snap.gauges.at("svc.queue_depth"), kWrites);
  EXPECT_EQ(final_snap.gauges.at("svc.epoch"), kWrites);
  EXPECT_EQ(final_snap.counters.at("svc.batches"),
            static_cast<uint64_t>(kWrites));
  EXPECT_EQ(final_snap.histograms.at("svc.window").count,
            static_cast<uint64_t>(kWrites));
}

}  // namespace
}  // namespace sdelta::obs
