#include "obs/anomaly.h"

#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>

#include "obs/slo.h"
#include "obs/timeseries.h"

namespace sdelta::obs {
namespace {

namespace fs = std::filesystem;

AnomalyRule WindowRule() {
  AnomalyRule rule;
  rule.metric = "service.refresh_window_seconds";
  rule.factor = 3.0;
  rule.min_threshold = 0.01;
  rule.window = 16;
  rule.warmup = 4;
  return rule;
}

void AppendGauge(TimeSeriesStore& ts, uint64_t batch, double value) {
  MetricsRegistry m;
  m.Set("service.refresh_window_seconds", value);
  ts.Append(batch, m.Snapshot());
}

TEST(AnomalyDetectorTest, RollingThresholdDetectsRegression) {
  MetricsRegistry metrics;
  AnomalyConfig config;
  config.enabled = true;
  config.rules = {WindowRule()};
  AnomalyDetector detector(std::move(config), &metrics);
  TimeSeriesStore ts(64);

  // Ten quiet batches around 1ms, then a 100ms spike.
  uint64_t batch = 0;
  for (int i = 0; i < 10; ++i) {
    AppendGauge(ts, ++batch, 0.001);
    EXPECT_TRUE(detector.Check(ts, batch).empty());
  }
  AppendGauge(ts, ++batch, 0.1);
  const std::vector<Anomaly> fired = detector.Check(ts, batch);
  ASSERT_EQ(fired.size(), 1u);
  EXPECT_EQ(fired[0].kind, "threshold");
  EXPECT_EQ(fired[0].metric, "service.refresh_window_seconds");
  EXPECT_EQ(fired[0].batch_id, batch);
  EXPECT_EQ(fired[0].value, 0.1);
  EXPECT_NEAR(fired[0].baseline, 0.001, 1e-9);

  EXPECT_EQ(detector.checks(), 11u);
  EXPECT_EQ(detector.detections(), 1u);
  EXPECT_EQ(metrics.counter("anomaly.checks"), 11u);
  EXPECT_EQ(metrics.counter("anomaly.detections"), 1u);
  ASSERT_EQ(detector.recent().size(), 1u);
}

TEST(AnomalyDetectorTest, WarmupAndFloorSuppressFiring) {
  AnomalyConfig config;
  config.enabled = true;
  config.rules = {WindowRule()};
  AnomalyDetector detector(std::move(config), nullptr);
  TimeSeriesStore ts(64);

  // A spike with fewer than `warmup` prior samples must not fire.
  AppendGauge(ts, 1, 0.001);
  AppendGauge(ts, 2, 0.5);
  EXPECT_TRUE(detector.Check(ts, 2).empty());

  // Values above 3x the mean but under the absolute floor must not
  // fire either (microsecond noise on a quiet service).
  TimeSeriesStore quiet(64);
  AnomalyConfig config2;
  config2.enabled = true;
  config2.rules = {WindowRule()};
  AnomalyDetector detector2(std::move(config2), nullptr);
  for (uint64_t b = 1; b <= 6; ++b) AppendGauge(quiet, b, 0.0001);
  AppendGauge(quiet, 7, 0.005);  // 50x the mean, below the 0.01 floor
  EXPECT_TRUE(detector2.Check(quiet, 7).empty());
}

TEST(AnomalyDetectorTest, CounterRulesEvaluatePerBatchDeltas) {
  AnomalyConfig config;
  config.enabled = true;
  AnomalyRule rule;
  rule.metric = "service.append_rows";
  rule.delta = true;
  rule.factor = 3.0;
  rule.min_threshold = 100;
  rule.warmup = 3;
  config.rules = {rule};
  AnomalyDetector detector(std::move(config), nullptr);

  TimeSeriesStore ts(64);
  MetricsRegistry m;
  uint64_t batch = 0;
  // Six batches of 50 rows each: deltas are flat at 50.
  for (int i = 0; i < 6; ++i) {
    m.Add("service.append_rows", 50);
    ts.Append(++batch, m.Snapshot());
    EXPECT_TRUE(detector.Check(ts, batch).empty());
  }
  // One batch of 5000 rows: the raw counter grows monotonically, but
  // the *delta* jumps 100x, which is what the rule evaluates.
  m.Add("service.append_rows", 5000);
  ts.Append(++batch, m.Snapshot());
  const auto fired = detector.Check(ts, batch);
  ASSERT_EQ(fired.size(), 1u);
  EXPECT_EQ(fired[0].value, 5000.0);
  EXPECT_NEAR(fired[0].baseline, 50.0, 1e-9);
}

TEST(AnomalyDetectorTest, SloBurnFiresOnNewViolations) {
  AnomalyConfig config;
  config.enabled = true;
  AnomalyDetector detector(std::move(config), nullptr);

  SloTracker::Targets targets;
  targets.staleness_seconds = 0.0;  // every observation violates
  targets.error_budget = 0.01;
  SloTracker slo(targets, nullptr);

  // No violations yet: no trigger.
  EXPECT_TRUE(detector.CheckSlo(slo, 1).empty());

  slo.ObserveStaleness(1.0);  // violation; burn = 1/1/0.01 = 100
  const auto fired = detector.CheckSlo(slo, 2);
  ASSERT_EQ(fired.size(), 1u);
  EXPECT_EQ(fired[0].kind, "slo_burn");
  EXPECT_EQ(fired[0].metric, "slo.burn_rate");
  EXPECT_GT(fired[0].value, 1.0);

  // Same violation count again: no re-trigger without new violations.
  EXPECT_TRUE(detector.CheckSlo(slo, 3).empty());
}

TEST(FlightRecorderTest, WritesCompleteBundlesAndPrunes) {
  const fs::path dir =
      fs::temp_directory_path() / "sdelta_flightrec_test";
  fs::remove_all(dir);

  MetricsRegistry metrics;
  FlightRecorder::Options options;
  options.dir = dir.string();
  options.max_bundles = 2;
  FlightRecorder recorder(options, &metrics);

  Anomaly a;
  a.batch_id = 7;
  a.kind = "threshold";
  a.metric = "service.refresh_window_seconds";
  a.value = 0.1;
  Json artifact = Json::Object();
  artifact.Set("hello", Json::Str("world"));

  const std::string name =
      recorder.WriteBundle(7, {a}, {{"events", artifact}});
  EXPECT_EQ(name, "bundle-000001-batch7");
  ASSERT_TRUE(fs::exists(dir / name / "manifest.json"));
  ASSERT_TRUE(fs::exists(dir / name / "events.json"));

  // The manifest names the batch, the anomalies, and the artifacts.
  std::ifstream in(dir / name / "manifest.json");
  std::string text((std::istreambuf_iterator<char>(in)),
                   std::istreambuf_iterator<char>());
  const Json manifest = Json::Parse(text);
  EXPECT_EQ(manifest.Find("schema")->as_string(), "sdelta.flightrec.v1");
  EXPECT_EQ(manifest.Find("batch_id")->as_int(), 7);
  ASSERT_EQ(manifest.Find("anomalies")->items().size(), 1u);
  EXPECT_EQ(manifest.Find("anomalies")->items()[0].Find("metric")->as_string(),
            "service.refresh_window_seconds");
  EXPECT_EQ(manifest.Find("artifacts")->items()[0].as_string(),
            "events.json");

  // Retention: the third bundle evicts the first.
  recorder.WriteBundle(8, {a}, {});
  recorder.WriteBundle(9, {a}, {});
  const auto bundles = recorder.ListBundles();
  ASSERT_EQ(bundles.size(), 2u);
  EXPECT_EQ(bundles[0], "bundle-000002-batch8");
  EXPECT_EQ(bundles[1], "bundle-000003-batch9");
  EXPECT_EQ(recorder.bundles_written(), 3u);
  EXPECT_EQ(metrics.counter("anomaly.bundles_written"), 3u);
  EXPECT_EQ(metrics.counter("anomaly.bundles_pruned"), 1u);

  // A new recorder over the same directory resumes the sequence.
  FlightRecorder resumed(options, nullptr);
  const std::string next = resumed.WriteBundle(10, {a}, {});
  EXPECT_EQ(next, "bundle-000004-batch10");

  fs::remove_all(dir);
}

TEST(AnomalyDetectorTest, ToJsonCarriesRulesAndRecent) {
  MetricsRegistry metrics;
  AnomalyConfig config;
  config.enabled = true;
  config.rules = AnomalyConfig::DefaultRules();
  AnomalyDetector detector(std::move(config), &metrics);

  const Json doc = detector.ToJson();
  EXPECT_EQ(doc.Find("schema")->as_string(), "sdelta.anomaly.v1");
  EXPECT_TRUE(doc.Find("enabled")->as_bool());
  EXPECT_EQ(doc.Find("rules")->items().size(), 4u);
  EXPECT_EQ(doc.Find("anomalies")->items().size(), 0u);
}

}  // namespace
}  // namespace sdelta::obs
