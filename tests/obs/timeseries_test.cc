#include "obs/timeseries.h"

#include <gtest/gtest.h>

namespace sdelta::obs {
namespace {

MetricsSnapshot Snap(uint64_t counter, double gauge) {
  MetricsRegistry m;
  m.Add("service.appends", counter);
  m.Set("service.queue_depth", gauge);
  return m.Snapshot();
}

TEST(TimeSeriesTest, AppendAndQuery) {
  TimeSeriesStore ts(8);
  ts.Append(1, Snap(10, 5.0));
  ts.Append(2, Snap(20, 0.0));
  ts.Append(3, Snap(35, 2.0));

  EXPECT_EQ(ts.size(), 3u);
  EXPECT_EQ(ts.appended(), 3u);
  EXPECT_EQ(ts.dropped(), 0u);

  const auto points = ts.Query("service.appends");
  ASSERT_EQ(points.size(), 3u);
  EXPECT_EQ(points[0].batch_id, 1u);
  EXPECT_EQ(points[0].value, 10.0);
  EXPECT_EQ(points[2].value, 35.0);

  // Range restriction by batch id.
  const auto mid = ts.Query("service.queue_depth", 2, 2);
  ASSERT_EQ(mid.size(), 1u);
  EXPECT_EQ(mid[0].value, 0.0);

  EXPECT_TRUE(ts.Query("no.such.metric").empty());
}

TEST(TimeSeriesTest, DeltaEncodingOnlyStoresChanges) {
  // An unchanged value between appends must still reconstruct at every
  // batch (the delta encoding stores it once, Query re-materializes).
  TimeSeriesStore ts(8);
  ts.Append(1, Snap(10, 7.0));
  ts.Append(2, Snap(10, 7.0));  // nothing changed
  ts.Append(3, Snap(12, 7.0));  // only the counter moved

  const auto counter = ts.Query("service.appends");
  ASSERT_EQ(counter.size(), 3u);
  EXPECT_EQ(counter[0].value, 10.0);
  EXPECT_EQ(counter[1].value, 10.0);
  EXPECT_EQ(counter[2].value, 12.0);

  const auto gauge = ts.Query("service.queue_depth");
  ASSERT_EQ(gauge.size(), 3u);
  for (const auto& p : gauge) EXPECT_EQ(p.value, 7.0);
}

TEST(TimeSeriesTest, WrapAroundFoldsEvictedEntriesIntoBase) {
  TimeSeriesStore ts(3);
  for (uint64_t b = 1; b <= 10; ++b) {
    ts.Append(b, Snap(b * 10, static_cast<double>(b)));
  }
  EXPECT_EQ(ts.size(), 3u);
  EXPECT_EQ(ts.appended(), 10u);
  EXPECT_EQ(ts.dropped(), 7u);

  // Only the newest three batches remain, with correct absolute values
  // (the evicted deltas were folded into the base map).
  const auto points = ts.Query("service.appends");
  ASSERT_EQ(points.size(), 3u);
  EXPECT_EQ(points[0].batch_id, 8u);
  EXPECT_EQ(points[0].value, 80.0);
  EXPECT_EQ(points[2].batch_id, 10u);
  EXPECT_EQ(points[2].value, 100.0);
}

TEST(TimeSeriesTest, WrapAroundReconstructsUnchangedSeries) {
  // A series that last changed before the retained window must still
  // reconstruct from the base map after eviction.
  TimeSeriesStore ts(2);
  ts.Append(1, Snap(5, 1.0));
  ts.Append(2, Snap(5, 2.0));
  ts.Append(3, Snap(5, 3.0));
  ts.Append(4, Snap(5, 4.0));  // counter unchanged since batch 1 (evicted)

  const auto points = ts.Query("service.appends");
  ASSERT_EQ(points.size(), 2u);
  EXPECT_EQ(points[0].batch_id, 3u);
  EXPECT_EQ(points[0].value, 5.0);
  EXPECT_EQ(points[1].value, 5.0);
}

TEST(TimeSeriesTest, HistogramsSampleAsPercentileSeries) {
  MetricsRegistry m;
  m.Observe("service.refresh_window", 2.0);
  m.Observe("service.refresh_window", 4.0);
  TimeSeriesStore ts(4);
  ts.Append(1, m.Snapshot());

  const auto names = ts.SeriesNames();
  ASSERT_EQ(names.size(), 3u);
  EXPECT_EQ(names[0].first, "service.refresh_window.p50");
  EXPECT_EQ(names[0].second, SampleKind::kPercentile);
  EXPECT_EQ(names[2].first, "service.refresh_window.p99");

  const auto p50 = ts.Query("service.refresh_window.p50");
  ASSERT_EQ(p50.size(), 1u);
  EXPECT_EQ(p50[0].value, 2.0);
}

TEST(TimeSeriesTest, SeriesAppearingMidStreamHaveNoEarlierPoints) {
  TimeSeriesStore ts(8);
  MetricsRegistry a;
  a.Add("service.appends", 1);
  ts.Append(1, a.Snapshot());
  a.Set("service.late_gauge", 9.0);
  ts.Append(2, a.Snapshot());

  EXPECT_EQ(ts.Query("service.appends").size(), 2u);
  const auto late = ts.Query("service.late_gauge");
  ASSERT_EQ(late.size(), 1u);
  EXPECT_EQ(late[0].batch_id, 2u);

  // The JSON export fills the missing leading point with null.
  const Json doc = ts.ToJson();
  const Json* series = doc.Find("series");
  ASSERT_NE(series, nullptr);
  const Json* lg = series->Find("service.late_gauge");
  ASSERT_NE(lg, nullptr);
  const auto& points = lg->Find("points")->items();
  ASSERT_EQ(points.size(), 2u);
  EXPECT_EQ(points[0].kind(), Json::Kind::kNull);
  EXPECT_EQ(points[1].as_double(), 9.0);
}

TEST(TimeSeriesTest, ToJsonRoundTripsThroughParse) {
  TimeSeriesStore ts(4);
  ts.Append(7, Snap(3, 1.5));
  ts.Append(8, Snap(6, 1.5));

  const std::string text = ts.ToJson().Dump(2);
  const Json parsed = Json::Parse(text);
  EXPECT_EQ(parsed.Find("schema")->as_string(), "sdelta.timeseries.v1");
  EXPECT_EQ(parsed.Find("appended")->as_int(), 2);
  const Json* batches = parsed.Find("batches");
  ASSERT_EQ(batches->items().size(), 2u);
  EXPECT_EQ(batches->items()[0].as_int(), 7);
  const Json* counter =
      parsed.Find("series")->Find("service.appends");
  ASSERT_NE(counter, nullptr);
  EXPECT_EQ(counter->Find("kind")->as_string(), "counter");
  EXPECT_EQ(counter->Find("points")->items()[1].as_double(), 6.0);
}

TEST(TimeSeriesTest, NormalizeDropsExecAndZeroesNonCounters) {
  TimeSeriesStore ts(4);
  MetricsRegistry m;
  m.Add("service.appends", 2);
  m.Set("exec.tasks_run", 17.0);
  m.Set("service.staleness_seconds", 0.25);
  m.Observe("service.refresh_window", 4.0);
  ts.Append(1, m.Snapshot());

  Json doc = ts.ToJson();
  NormalizeTimeSeries(doc);
  const Json* series = doc.Find("series");
  ASSERT_NE(series, nullptr);
  EXPECT_EQ(series->Find("exec.tasks_run"), nullptr);
  // Counter values survive; gauge and percentile points are zeroed.
  EXPECT_EQ(series->Find("service.appends")
                ->Find("points")->items()[0].as_double(), 2.0);
  EXPECT_EQ(series->Find("service.staleness_seconds")
                ->Find("points")->items()[0].as_double(), 0.0);
  EXPECT_EQ(series->Find("service.refresh_window.p99")
                ->Find("points")->items()[0].as_double(), 0.0);
}

}  // namespace
}  // namespace sdelta::obs
