#ifndef SDELTA_TESTS_ORACLE_H_
#define SDELTA_TESTS_ORACLE_H_

#include <functional>
#include <vector>

#include "core/maintenance.h"
#include "core/propagate.h"
#include "core/refresh.h"
#include "core/self_maintenance.h"
#include "core/summary_table.h"
#include "test_util.h"

namespace sdelta::testing {

/// The fundamental correctness oracle: maintaining summary tables
/// incrementally (propagate + refresh) must leave them identical to
/// recomputing them from scratch over the updated base data.
///
/// `make_catalog` must be deterministic (called twice: once for the
/// incremental run, once for the recomputation oracle). Changes are
/// built once against the first catalog and applied to both.
inline void ExpectMaintainedEqualsRecomputed(
    const std::function<rel::Catalog()>& make_catalog,
    const std::vector<core::ViewDef>& views,
    const std::function<core::ChangeSet(const rel::Catalog&)>& make_changes,
    const core::RefreshOptions& ropts = {},
    const core::PropagateOptions& popts = {}) {
  rel::Catalog catalog = make_catalog();
  std::vector<core::AugmentedView> augmented;
  std::vector<core::SummaryTable> summaries;
  for (const core::ViewDef& v : views) {
    augmented.push_back(core::AugmentForSelfMaintenance(catalog, v));
    summaries.emplace_back(augmented.back(), catalog);
    summaries.back().MaterializeFrom(catalog);
  }
  const core::ChangeSet changes = make_changes(catalog);

  // Propagate against the pre-change state, then enter the batch window.
  std::vector<rel::Table> deltas;
  for (const core::AugmentedView& av : augmented) {
    deltas.push_back(core::ComputeSummaryDelta(catalog, av, changes, popts));
  }
  core::ApplyChangeSet(catalog, changes);
  for (size_t i = 0; i < summaries.size(); ++i) {
    core::Refresh(catalog, summaries[i], deltas[i], ropts);
  }

  // Oracle: recompute from a fresh catalog with the same changes applied.
  rel::Catalog oracle = make_catalog();
  core::ApplyChangeSet(oracle, changes);
  for (size_t i = 0; i < summaries.size(); ++i) {
    const rel::Table expected =
        core::EvaluateView(oracle, augmented[i].physical);
    SCOPED_TRACE("view " + augmented[i].name());
    ExpectBagEq(expected, summaries[i].ToTable());
  }
}

}  // namespace sdelta::testing

#endif  // SDELTA_TESTS_ORACLE_H_
