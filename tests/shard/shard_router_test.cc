// The shard routing invariant (DESIGN.md §15): the shard of a row is a
// pure function of its group-key *values* — summary rows and
// summary-delta rows of the same group always land on the same shard,
// and re-partitioning a partition is the identity.
#include "shard/router.h"

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "core/summary_table.h"
#include "core/view_def.h"
#include "lattice/plan.h"
#include "relational/csv.h"
#include "warehouse/retail_schema.h"
#include "warehouse/warehouse.h"
#include "warehouse/workload.h"

namespace sdelta::shard {
namespace {

warehouse::RetailConfig SmallConfig() {
  warehouse::RetailConfig config;
  config.num_stores = 15;
  config.num_cities = 6;
  config.num_regions = 3;
  config.num_items = 80;
  config.num_categories = 8;
  config.num_dates = 30;
  config.num_pos_rows = 2500;
  config.seed = 913;
  return config;
}

warehouse::Warehouse MakeWarehouse() {
  warehouse::Warehouse wh(warehouse::MakeRetailCatalog(SmallConfig()));
  wh.DefineSummaryTables(warehouse::RetailSummaryTables());
  return wh;
}

TEST(ShardRouterTest, PartitionIsExhaustiveAndDisjoint) {
  warehouse::Warehouse wh = MakeWarehouse();
  const core::SummaryTable& view = wh.summary(wh.vlattice().views[0].name());
  const rel::Table rows = view.ToTable();
  ASSERT_GT(rows.NumRows(), 0u);

  ShardRouter router(view, 4);
  const std::vector<rel::Table> parts = router.Partition(rows);
  ASSERT_EQ(parts.size(), 4u);
  size_t total = 0;
  for (const rel::Table& part : parts) {
    EXPECT_EQ(part.schema().NumColumns(), rows.schema().NumColumns());
    EXPECT_EQ(part.name(), rows.name());
    total += part.NumRows();
  }
  EXPECT_EQ(total, rows.NumRows());

  // Concatenating the parts is a permutation of the input: canonical
  // forms agree.
  rel::Table merged(rows.schema(), rows.name());
  merged.Reserve(rows.NumRows());
  for (const rel::Table& part : parts) merged.AppendColumnsFrom(part);
  EXPECT_EQ(rel::ToCsvString(core::CanonicalizeRows(merged)),
            rel::ToCsvString(core::CanonicalizeRows(rows)));
}

TEST(ShardRouterTest, RoutingIsAPureFunctionOfKeyValues) {
  warehouse::Warehouse wh = MakeWarehouse();
  for (const core::AugmentedView& av : wh.vlattice().views) {
    const core::SummaryTable& view = wh.summary(av.name());
    ShardRouter router(view, 8);
    const std::vector<rel::Table> parts = router.Partition(view.ToTable());
    // Re-routing any row of any part must yield that part's index:
    // membership depends only on the row's group-key values, never on
    // which physical table the row sits in.
    for (size_t s = 0; s < parts.size(); ++s) {
      for (size_t r = 0; r < parts[s].NumRows(); ++r) {
        ASSERT_EQ(router.ShardOfRow(parts[s], r), s)
            << av.name() << " shard " << s << " row " << r;
      }
    }
  }
}

TEST(ShardRouterTest, DeltaRowsFollowTheirSummaryRows) {
  // A summary-delta row (summary schema + trailing tainted column) of
  // group g must route to the same shard as g's summary row — the
  // no-cross-shard-merge guarantee.
  warehouse::Warehouse wh = MakeWarehouse();
  const core::ChangeSet changes =
      warehouse::MakeUpdateGeneratingChanges(wh.catalog(), 400, 77);
  const lattice::LatticePropagateResult deltas =
      lattice::PropagateAll(wh.catalog(), wh.vlattice(), wh.plan(), changes);

  const lattice::VLattice& lat = wh.vlattice();
  for (size_t v = 0; v < lat.views.size(); ++v) {
    const core::SummaryTable& view = wh.summary(lat.views[v].name());
    ShardRouter router(view, 8);
    const rel::Table& delta = deltas.deltas[v];
    if (delta.NumRows() == 0) continue;
    const rel::Table summary = view.ToTable();
    // Index the summary rows by shard, then check each delta row whose
    // group exists in the summary routes identically. (Group columns
    // lead both schemas, so ShardOfRow reads the same values.)
    for (size_t r = 0; r < delta.NumRows(); ++r) {
      const size_t delta_shard = router.ShardOfRow(delta, r);
      for (size_t sr = 0; sr < summary.NumRows(); ++sr) {
        bool same_group = true;
        for (size_t c = 0; c < view.num_group_columns(); ++c) {
          if (rel::Value::Compare(delta.ValueAt(r, c),
                                  summary.ValueAt(sr, c)) != 0) {
            same_group = false;
            break;
          }
        }
        if (same_group) {
          ASSERT_EQ(delta_shard, router.ShardOfRow(summary, sr))
              << lat.views[v].name() << " delta row " << r;
          break;
        }
      }
    }
  }
}

TEST(ShardRouterTest, SingleShardTakesEverything) {
  warehouse::Warehouse wh = MakeWarehouse();
  const core::SummaryTable& view = wh.summary(wh.vlattice().views[0].name());
  ShardRouter router(view, 1);
  const rel::Table rows = view.ToTable();
  for (size_t r = 0; r < rows.NumRows(); ++r) {
    EXPECT_EQ(router.ShardOfRow(rows, r), 0u);
  }
  // num_shards = 0 normalizes to 1 rather than dividing by zero.
  ShardRouter degenerate(view, 0);
  EXPECT_EQ(degenerate.num_shards(), 1u);
}

TEST(ShardRouterTest, SpreadsRowsAcrossShards) {
  // Not a distribution-quality bound — just that hashing actually
  // splits a few thousand retail groups instead of clumping them all
  // into one shard.
  warehouse::Warehouse wh = MakeWarehouse();
  const core::SummaryTable& view = wh.summary(wh.vlattice().views[0].name());
  ShardRouter router(view, 8);
  const std::vector<rel::Table> parts = router.Partition(view.ToTable());
  size_t populated = 0;
  for (const rel::Table& part : parts) {
    if (part.NumRows() > 0) ++populated;
  }
  EXPECT_GE(populated, 6u);
}

}  // namespace
}  // namespace sdelta::shard
