// The per-shard pipeline must be invisible in the results: a sharded
// batch cycle lands on exactly the unsharded warehouse's summaries
// (canonical row order), per-shard epochs stay in lockstep, and the
// shard.delta_rows counters partition the propagate.delta_rows counter.
#include "shard/sharded_maintenance.h"

#include <gtest/gtest.h>

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "core/delta.h"
#include "core/summary_table.h"
#include "obs/metrics.h"
#include "relational/csv.h"
#include "warehouse/retail_schema.h"
#include "warehouse/warehouse.h"
#include "warehouse/workload.h"

namespace sdelta::shard {
namespace {

warehouse::RetailConfig SmallConfig() {
  warehouse::RetailConfig config;
  config.num_stores = 15;
  config.num_cities = 6;
  config.num_regions = 3;
  config.num_items = 80;
  config.num_categories = 8;
  config.num_dates = 30;
  config.num_pos_rows = 2500;
  config.seed = 913;
  return config;
}

struct Sharded {
  obs::MetricsRegistry metrics;
  warehouse::Warehouse wh;
  ShardedMaintenance shards;

  explicit Sharded(size_t num_shards, size_t num_threads = 1)
      : wh(warehouse::MakeRetailCatalog(SmallConfig()),
           [&] {
             warehouse::Warehouse::Options options;
             options.num_threads = num_threads;
             options.metrics = &metrics;
             return options;
           }()),
        shards((wh.DefineSummaryTables(warehouse::RetailSummaryTables()), &wh),
               num_shards, &metrics) {}

  std::map<std::string, std::string> CanonicalSnapshot() const {
    std::map<std::string, std::string> out;
    const lattice::VLattice& lat = wh.vlattice();
    for (size_t v = 0; v < lat.views.size(); ++v) {
      out[lat.views[v].name()] = rel::ToCsvString(shards.ComposeView(v));
    }
    return out;
  }
};

std::map<std::string, std::string> CanonicalSnapshot(
    const warehouse::Warehouse& wh) {
  std::map<std::string, std::string> out;
  for (const core::AugmentedView& av : wh.vlattice().views) {
    out[av.name()] =
        rel::ToCsvString(wh.summary(av.name()).ToCanonicalTable());
  }
  return out;
}

TEST(ShardedMaintenanceTest, MatchesUnshardedBatchesCanonically) {
  warehouse::Warehouse plain(warehouse::MakeRetailCatalog(SmallConfig()));
  plain.DefineSummaryTables(warehouse::RetailSummaryTables());
  Sharded sharded(4);

  // Slicing the initial materialization must already compose back.
  EXPECT_EQ(sharded.CanonicalSnapshot(), CanonicalSnapshot(plain));

  for (uint64_t seed : {11u, 12u, 13u}) {
    SCOPED_TRACE("batch seed " + std::to_string(seed));
    const core::ChangeSet for_plain =
        seed == 12u
            ? warehouse::MakeInsertionGeneratingChanges(plain.catalog(), 300,
                                                        seed)
            : warehouse::MakeUpdateGeneratingChanges(plain.catalog(), 400,
                                                     seed);
    const core::ChangeSet for_sharded =
        seed == 12u
            ? warehouse::MakeInsertionGeneratingChanges(sharded.wh.catalog(),
                                                        300, seed)
            : warehouse::MakeUpdateGeneratingChanges(sharded.wh.catalog(), 400,
                                                     seed);
    plain.RunBatch(for_plain);
    sharded.shards.RunBatch(for_sharded);
    EXPECT_EQ(sharded.CanonicalSnapshot(), CanonicalSnapshot(plain));
  }
}

TEST(ShardedMaintenanceTest, ShardDeltaRowsPartitionThePropagateCounter) {
  Sharded sharded(8);
  for (uint64_t seed : {21u, 22u}) {
    const core::ChangeSet changes =
        warehouse::MakeUpdateGeneratingChanges(sharded.wh.catalog(), 400, seed);
    sharded.shards.RunBatch(changes);
  }
  const obs::MetricsSnapshot snap = sharded.metrics.Snapshot();
  uint64_t shard_sum = 0;
  size_t series = 0;
  for (const auto& [name, value] : snap.counters) {
    if (name.rfind("shard.delta_rows.", 0) == 0) {
      shard_sum += value;
      ++series;
    }
  }
  EXPECT_EQ(series, 8u);
  ASSERT_GT(snap.counters.count("propagate.delta_rows"), 0u);
  EXPECT_GT(shard_sum, 0u);
  EXPECT_EQ(shard_sum, snap.counters.at("propagate.delta_rows"));
}

TEST(ShardedMaintenanceTest, EpochsAdvanceInLockstep) {
  Sharded sharded(4);
  for (size_t s = 0; s < 4; ++s) EXPECT_EQ(sharded.shards.shard_epoch(s), 0u);
  for (uint64_t seed : {31u, 32u, 33u}) {
    const core::ChangeSet changes =
        warehouse::MakeUpdateGeneratingChanges(sharded.wh.catalog(), 200, seed);
    sharded.shards.RunBatch(changes);
  }
  for (size_t s = 0; s < 4; ++s) EXPECT_EQ(sharded.shards.shard_epoch(s), 3u);
  // Per-batch routed-row accounting is exposed per shard and sums to
  // something (the workload touches every view).
  uint64_t total = 0;
  for (size_t s = 0; s < 4; ++s) total += sharded.shards.total_delta_rows(s);
  EXPECT_GT(total, 0u);
}

TEST(ShardedMaintenanceTest, SyncIntoWarehouseFoldsSlicesBack) {
  Sharded sharded(4);
  const core::ChangeSet changes =
      warehouse::MakeUpdateGeneratingChanges(sharded.wh.catalog(), 400, 41);
  sharded.shards.RunBatch(changes);
  // The warehouse's own summaries are stale now; Sync writes the
  // composed state back.
  sharded.shards.SyncIntoWarehouse();
  EXPECT_EQ(CanonicalSnapshot(sharded.wh), sharded.CanonicalSnapshot());

  // Slice row counts partition the composed row counts.
  size_t slice_total = 0;
  for (size_t s = 0; s < 4; ++s) slice_total += sharded.shards.ShardRows(s);
  size_t composed_total = 0;
  for (size_t v = 0; v < sharded.wh.vlattice().views.size(); ++v) {
    composed_total += sharded.shards.ComposeView(v).NumRows();
  }
  EXPECT_EQ(slice_total, composed_total);
}

TEST(ShardedMaintenanceTest, RepartitionPreservesStateAndEpochs) {
  Sharded sharded(4);
  const core::ChangeSet changes =
      warehouse::MakeUpdateGeneratingChanges(sharded.wh.catalog(), 400, 51);
  sharded.shards.RunBatch(changes);
  const auto before = sharded.CanonicalSnapshot();
  sharded.shards.SyncIntoWarehouse();
  sharded.shards.Repartition();
  EXPECT_EQ(sharded.CanonicalSnapshot(), before);
  for (size_t s = 0; s < 4; ++s) EXPECT_EQ(sharded.shards.shard_epoch(s), 1u);
}

}  // namespace
}  // namespace sdelta::shard
