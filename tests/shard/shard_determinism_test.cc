// The hard contract of ISSUE 10: summary tables are byte-identical at
// every shard count x thread count — {1, 2, 8} x {1, 2, 8} here — over
// randomized update/insertion batches, and equal to the unsharded
// warehouse's canonical snapshot. Pipeline counters (everything outside
// the exec.*, shard.*, and key.* families) are invariant too: sharding
// a batch never changes what the batch computes, only where.
#include <gtest/gtest.h>

#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "core/delta.h"
#include "obs/metrics.h"
#include "relational/csv.h"
#include "shard/sharded_maintenance.h"
#include "warehouse/retail_schema.h"
#include "warehouse/warehouse.h"
#include "warehouse/workload.h"

namespace sdelta::shard {
namespace {

warehouse::RetailConfig SmallConfig() {
  warehouse::RetailConfig config;
  config.num_stores = 15;
  config.num_cities = 6;
  config.num_regions = 3;
  config.num_items = 80;
  config.num_categories = 8;
  config.num_dates = 30;
  config.num_pos_rows = 2500;
  config.seed = 913;
  return config;
}

struct Instance {
  size_t num_shards;
  size_t num_threads;
  obs::MetricsRegistry metrics;
  warehouse::Warehouse wh;
  std::unique_ptr<ShardedMaintenance> shards;

  Instance(size_t shards_n, size_t threads_n)
      : num_shards(shards_n),
        num_threads(threads_n),
        wh(warehouse::MakeRetailCatalog(SmallConfig()), [&] {
          warehouse::Warehouse::Options options;
          options.num_threads = threads_n;
          options.metrics = &metrics;
          return options;
        }()) {
    wh.DefineSummaryTables(warehouse::RetailSummaryTables());
    shards = std::make_unique<ShardedMaintenance>(&wh, shards_n, &metrics);
  }

  std::map<std::string, std::string> CanonicalSnapshot() const {
    std::map<std::string, std::string> out;
    const lattice::VLattice& lat = wh.vlattice();
    for (size_t v = 0; v < lat.views.size(); ++v) {
      out[lat.views[v].name()] = rel::ToCsvString(shards->ComposeView(v));
    }
    return out;
  }

  /// Counters with the families that legitimately vary by topology
  /// filtered out: exec.* varies with pool presence, shard.* with shard
  /// count, and key.* counts per-call codec encodes, which multiply
  /// with the number of per-shard Refresh invocations. Likewise
  /// refresh.recompute_scan_rows measures MIN/MAX base-table scan WORK,
  /// which each shard's refresh pays separately — the what-was-computed
  /// counters (recomputed_groups, minmax_recomputes) stay invariant.
  std::map<std::string, uint64_t> PipelineCounters() const {
    std::map<std::string, uint64_t> out;
    for (const auto& [name, value] : metrics.Snapshot().counters) {
      if (name.rfind("exec.", 0) == 0) continue;
      if (name.rfind("shard.", 0) == 0) continue;
      if (name.rfind("key.", 0) == 0) continue;
      if (name == "refresh.recompute_scan_rows") continue;
      out[name] = value;
    }
    return out;
  }
};

TEST(ShardDeterminismTest, ByteIdenticalAcrossShardAndThreadCounts) {
  warehouse::Warehouse plain(warehouse::MakeRetailCatalog(SmallConfig()));
  plain.DefineSummaryTables(warehouse::RetailSummaryTables());

  std::vector<std::unique_ptr<Instance>> grid;
  for (size_t shards_n : {1u, 2u, 8u}) {
    for (size_t threads_n : {1u, 2u, 8u}) {
      grid.push_back(std::make_unique<Instance>(shards_n, threads_n));
    }
  }

  struct BatchSpec {
    bool insertion;
    size_t size;
    uint64_t seed;
  };
  const std::vector<BatchSpec> batches = {
      {false, 400, 101}, {true, 300, 202}, {false, 500, 303}};

  for (const BatchSpec& b : batches) {
    SCOPED_TRACE("batch seed " + std::to_string(b.seed));
    {
      const core::ChangeSet changes =
          b.insertion
              ? warehouse::MakeInsertionGeneratingChanges(plain.catalog(),
                                                          b.size, b.seed)
              : warehouse::MakeUpdateGeneratingChanges(plain.catalog(), b.size,
                                                       b.seed);
      plain.RunBatch(changes);
    }
    std::map<std::string, std::string> expected;
    for (const core::AugmentedView& av : plain.vlattice().views) {
      expected[av.name()] =
          rel::ToCsvString(plain.summary(av.name()).ToCanonicalTable());
    }
    for (std::unique_ptr<Instance>& inst : grid) {
      SCOPED_TRACE("shards " + std::to_string(inst->num_shards) + " threads " +
                   std::to_string(inst->num_threads));
      const core::ChangeSet changes =
          b.insertion
              ? warehouse::MakeInsertionGeneratingChanges(inst->wh.catalog(),
                                                          b.size, b.seed)
              : warehouse::MakeUpdateGeneratingChanges(inst->wh.catalog(),
                                                       b.size, b.seed);
      inst->shards->RunBatch(changes);
      EXPECT_EQ(inst->CanonicalSnapshot(), expected);
    }
  }

  // Pipeline counters are invariant across the whole grid: what the
  // batches computed (rows scanned, delta rows, refresh outcomes) does
  // not depend on shard or thread topology.
  const auto base = grid[0]->PipelineCounters();
  EXPECT_FALSE(base.empty());
  EXPECT_GT(base.count("propagate.delta_rows"), 0u);
  for (size_t i = 1; i < grid.size(); ++i) {
    SCOPED_TRACE("instance " + std::to_string(i));
    const auto other = grid[i]->PipelineCounters();
    for (const auto& [name, value] : base) {
      ASSERT_GT(other.count(name), 0u) << "missing counter " << name;
      EXPECT_EQ(value, other.at(name)) << "counter " << name;
    }
    EXPECT_EQ(base.size(), other.size());
  }

  // And the shard.delta_rows partition sums to the same propagate total
  // at every shard count.
  for (const std::unique_ptr<Instance>& inst : grid) {
    uint64_t shard_sum = 0;
    for (const auto& [name, value] : inst->metrics.Snapshot().counters) {
      if (name.rfind("shard.delta_rows.", 0) == 0) shard_sum += value;
    }
    EXPECT_EQ(shard_sum, base.at("propagate.delta_rows"))
        << "shards " << inst->num_shards;
  }
}

}  // namespace
}  // namespace sdelta::shard
