// Lints a Prometheus text exposition document (see prom_lint_lib.h for
// the rules). Reads the named file, or stdin when no argument / "-".
// Exit 0 = clean, 1 = problems found (printed one per line), 2 = usage
// or IO error. Used by the CI endpoint-smoke job against a live
// /metrics scrape.
#include <cstdio>
#include <iostream>
#include <sstream>
#include <string>

#include "prom_lint_lib.h"

int main(int argc, char** argv) {
  if (argc > 2) {
    std::fprintf(stderr, "usage: prom_lint [file|-]\n");
    return 2;
  }
  std::string text;
  if (argc == 2 && std::string(argv[1]) != "-") {
    std::FILE* f = std::fopen(argv[1], "rb");
    if (f == nullptr) {
      std::fprintf(stderr, "prom_lint: cannot open %s\n", argv[1]);
      return 2;
    }
    char buf[1 << 16];
    size_t n = 0;
    while ((n = std::fread(buf, 1, sizeof buf, f)) > 0) text.append(buf, n);
    std::fclose(f);
  } else {
    std::ostringstream ss;
    ss << std::cin.rdbuf();
    text = ss.str();
  }
  const std::vector<std::string> problems =
      sdelta::tools::LintPrometheusText(text);
  for (const std::string& p : problems) {
    std::fprintf(stderr, "%s\n", p.c_str());
  }
  if (problems.empty()) {
    std::fprintf(stderr, "prom_lint: OK (%zu bytes)\n", text.size());
    return 0;
  }
  return 1;
}
