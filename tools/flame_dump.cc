// Renders an aggregated maintenance-path profile as collapsed stacks —
// the input format of Brendan Gregg's flamegraph.pl (and speedscope's
// "collapsed" importer):
//
//   flame_dump profile.json            # a /profile scrape or bundle
//                                      # artifact -> collapsed stacks
//   flame_dump [--json] [--text]       # no file: run the reference
//                                      # retail workload under the
//                                      # profiler and dump its profile
//   flame_dump --changes N --batches N --pos-rows N --threads N --seed S
//
// Typical pipelines:
//   curl -s localhost:9464/profile | flame_dump /dev/stdin > out.folded
//   flamegraph.pl out.folded > flame.svg
#include <cstdio>
#include <cstring>
#include <fstream>
#include <iterator>
#include <string>

#include "core/delta.h"
#include "exec/operator_stats.h"
#include "obs/json.h"
#include "obs/profiler.h"
#include "obs/trace.h"
#include "warehouse/retail_schema.h"
#include "warehouse/warehouse.h"
#include "warehouse/workload.h"

using namespace sdelta;  // NOLINT: tool brevity

namespace {

int Usage() {
  std::fprintf(stderr,
               "usage: flame_dump [profile.json] [--json|--text]\n"
               "                  [--pos-rows N] [--changes N] [--batches N]"
               " [--threads N]\n"
               "                  [--seed S]\n");
  return 2;
}

int DumpFromFile(const std::string& path) {
  std::ifstream in(path);
  if (!in) {
    std::fprintf(stderr, "flame_dump: cannot read %s\n", path.c_str());
    return 1;
  }
  const std::string text((std::istreambuf_iterator<char>(in)),
                         std::istreambuf_iterator<char>());
  try {
    const obs::Json doc = obs::Json::Parse(text);
    std::fputs(obs::CollapsedFromProfileJson(doc).c_str(), stdout);
  } catch (const std::exception& e) {
    std::fprintf(stderr, "flame_dump: %s: %s\n", path.c_str(), e.what());
    return 1;
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  std::string file;
  std::string format = "collapsed";
  size_t pos_rows = 20000;
  size_t changes = 1000;
  size_t batches = 3;
  size_t threads = 1;
  uint64_t seed = 42;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto next = [&](size_t* out) {
      if (i + 1 >= argc) return false;
      *out = std::stoul(argv[++i]);
      return true;
    };
    size_t v = 0;
    if (arg == "--json") {
      format = "json";
    } else if (arg == "--text") {
      format = "text";
    } else if (arg == "--pos-rows" && next(&v)) {
      pos_rows = v;
    } else if (arg == "--changes" && next(&v)) {
      changes = v;
    } else if (arg == "--batches" && next(&v)) {
      batches = v;
    } else if (arg == "--threads" && next(&v)) {
      threads = v;
    } else if (arg == "--seed" && next(&v)) {
      seed = v;
    } else if (!arg.empty() && arg[0] != '-' && file.empty()) {
      file = arg;
    } else {
      return Usage();
    }
  }
  if (!file.empty()) return DumpFromFile(file);

  // Self-contained mode: profile the reference retail workload.
  warehouse::RetailConfig config;
  config.num_pos_rows = pos_rows;
  warehouse::Warehouse::Options options;
  options.num_threads = threads;
  obs::Tracer tracer;
  options.tracer = &tracer;
  warehouse::Warehouse wh(warehouse::MakeRetailCatalog(config), options);
  wh.DefineSummaryTables(warehouse::RetailSummaryTables());
  tracer.Clear();  // profile the batches, not the setup

  obs::Profiler profiler;
  for (size_t b = 0; b < batches; ++b) {
    core::ChangeSet delta = warehouse::MakeUpdateGeneratingChanges(
        wh.catalog(), changes, seed + b);
    exec::OperatorStats ops;
    const warehouse::BatchReport report = wh.RunBatch(delta);
    for (const lattice::StepExecution& se : report.step_execs) {
      ops.MergeFrom(se.ops);
    }
    profiler.RecordBatch(tracer.spans(), &ops);
    tracer.Clear();
  }

  if (format == "json") {
    std::printf("%s\n", profiler.ToJson().Dump(2).c_str());
  } else if (format == "text") {
    std::fputs(profiler.ToText().c_str(), stdout);
  } else {
    std::fputs(profiler.ToCollapsed().c_str(), stdout);
  }
  return 0;
}
