// Library behind the bench_compare tool: diffs two sdelta.bench.v1
// documents entry-by-entry under per-metric tolerances, so CI can gate
// on committed baselines (bench/baselines/) without flaking on
// machine-speed differences.
//
// Semantics:
//   * A tolerance file names the *metric* fields (with either an exact
//     requirement or a relative tolerance) and the *ignored* fields
//     (e.g. host_cpus — baselines are recorded on whatever machine the
//     committer had). Every other field of an entry is part of its
//     identity key.
//   * Entries are matched by key. A current entry with no baseline is
//     new coverage, noted but never a failure; a baseline entry with no
//     current counterpart is noted too (coverage loss is a review
//     concern, not a perf regression).
//   * A metric regresses when current > baseline * (1 + rel_tolerance)
//     — one-sided: getting faster/smaller never fails. `exact` metrics
//     (row counts) fail on any difference, in either direction.
#ifndef SDELTA_TOOLS_BENCH_COMPARE_LIB_H_
#define SDELTA_TOOLS_BENCH_COMPARE_LIB_H_

#include <map>
#include <string>
#include <vector>

#include "obs/json.h"

namespace sdelta::tools {

struct MetricTolerance {
  bool exact = false;
  double rel_tolerance = 0;  ///< fraction: 0.25 allows +25% over baseline
  /// For metrics where larger is better (speedups, QPS): the check
  /// flips to `current < baseline * (1 - rel_tolerance)` and getting
  /// faster/bigger never fails.
  bool higher_is_better = false;
  /// When non-empty, the metric is only compared if BOTH entries carry
  /// this member with a truthy value. Lets recorded-but-conditional
  /// metrics (parallel speedups, which are meaningless on a single-core
  /// host) gate only where the recording host could produce them.
  std::string only_if;
};

struct CompareOptions {
  /// Fields excluded from both the entry key and the comparison.
  std::vector<std::string> ignore;
  /// Metric fields to compare, keyed by field name.
  std::map<std::string, MetricTolerance> metrics;
};

/// Parses a tolerance file:
///   {"schema": "sdelta.tolerances.v1",
///    "ignore": ["host_cpus"],
///    "metrics": {"ms": {"rel_tolerance": 2.0},
///                "delta_rows": {"exact": true}}}
/// Throws std::runtime_error on malformed documents.
CompareOptions ParseTolerances(const obs::Json& doc);

struct CompareIssue {
  std::string key;
  std::string metric;
  double baseline = 0;
  double current = 0;
  double limit = 0;  ///< the value `current` was allowed to reach
  std::string ToString() const;
};

struct CompareReport {
  size_t entries_compared = 0;
  size_t metrics_compared = 0;
  std::vector<CompareIssue> regressions;
  /// Unmatched entries, skipped non-numeric metrics, and similar.
  std::vector<std::string> notes;

  bool ok() const { return regressions.empty(); }
  std::string ToString() const;
};

/// Diffs two sdelta.bench.v1 documents. Throws std::runtime_error when
/// either document is not a bench file or the bench names disagree.
CompareReport CompareBench(const obs::Json& baseline, const obs::Json& current,
                           const CompareOptions& options);

}  // namespace sdelta::tools

#endif  // SDELTA_TOOLS_BENCH_COMPARE_LIB_H_
