// Perf-regression gate over two BENCH_*.json files (sdelta.bench.v1).
//
//   bench_compare --tolerance-file bench/tolerances.json
//       bench/baselines/BENCH_fig9.json BENCH_fig9.json
//
// Exit status: 0 when every matched metric is within tolerance, 1 when
// any metric regressed, 2 on usage or I/O errors. CI runs this against
// the committed baselines after the bench binaries write fresh files.
#include <cstdio>
#include <string>

#include "bench_compare_lib.h"
#include "obs/export_json.h"
#include "obs/json.h"

namespace {

int Usage() {
  std::fprintf(stderr,
               "usage: bench_compare --tolerance-file <tolerances.json> "
               "<baseline.json> <current.json>\n");
  return 2;
}

bool LoadJson(const std::string& path, sdelta::obs::Json* out) {
  std::string contents;
  if (!sdelta::obs::ReadFile(path, contents)) {
    std::fprintf(stderr, "bench_compare: cannot read %s\n", path.c_str());
    return false;
  }
  try {
    *out = sdelta::obs::Json::Parse(contents);
  } catch (const std::exception& e) {
    std::fprintf(stderr, "bench_compare: %s: %s\n", path.c_str(), e.what());
    return false;
  }
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  std::string tolerance_path;
  std::string baseline_path;
  std::string current_path;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--tolerance-file") {
      if (i + 1 >= argc) return Usage();
      tolerance_path = argv[++i];
    } else if (baseline_path.empty()) {
      baseline_path = arg;
    } else if (current_path.empty()) {
      current_path = arg;
    } else {
      return Usage();
    }
  }
  if (tolerance_path.empty() || baseline_path.empty() || current_path.empty()) {
    return Usage();
  }

  sdelta::obs::Json tolerances;
  sdelta::obs::Json baseline;
  sdelta::obs::Json current;
  if (!LoadJson(tolerance_path, &tolerances) ||
      !LoadJson(baseline_path, &baseline) || !LoadJson(current_path, &current)) {
    return 2;
  }

  try {
    const sdelta::tools::CompareOptions options =
        sdelta::tools::ParseTolerances(tolerances);
    const sdelta::tools::CompareReport report =
        sdelta::tools::CompareBench(baseline, current, options);
    std::printf("%s", report.ToString().c_str());
    return report.ok() ? 0 : 1;
  } catch (const std::exception& e) {
    std::fprintf(stderr, "bench_compare: %s\n", e.what());
    return 2;
  }
}
