#include "prom_lint_lib.h"

#include <cctype>
#include <charconv>
#include <cmath>
#include <cstdint>
#include <limits>
#include <map>
#include <optional>
#include <set>
#include <string>

namespace sdelta::tools {
namespace {

bool IsMetricNameStart(char c) {
  return std::isalpha(static_cast<unsigned char>(c)) || c == '_' || c == ':';
}
bool IsMetricNameChar(char c) {
  return IsMetricNameStart(c) || std::isdigit(static_cast<unsigned char>(c));
}
bool IsLabelNameStart(char c) {
  return std::isalpha(static_cast<unsigned char>(c)) || c == '_';
}
bool IsLabelNameChar(char c) {
  return IsLabelNameStart(c) || std::isdigit(static_cast<unsigned char>(c));
}

bool ValidMetricName(std::string_view name) {
  if (name.empty() || !IsMetricNameStart(name[0])) return false;
  for (char c : name) {
    if (!IsMetricNameChar(c)) return false;
  }
  return true;
}

/// One parsed sample line.
struct Sample {
  std::string name;
  std::vector<std::pair<std::string, std::string>> labels;  // in order
  double value = 0;

  std::optional<std::string> Label(std::string_view key) const {
    for (const auto& [k, v] : labels) {
      if (k == key) return v;
    }
    return std::nullopt;
  }

  /// Canonical series identity: name + sorted label set.
  std::string SeriesKey() const {
    std::map<std::string, std::string> sorted(labels.begin(), labels.end());
    std::string key = name;
    for (const auto& [k, v] : sorted) {
      key += '\x1f';
      key += k;
      key += '=';
      key += v;
    }
    return key;
  }
};

/// Parses the exposition value grammar: a Go-style float, or the
/// specials +Inf / -Inf / NaN.
bool ParseValue(std::string_view text, double* out) {
  if (text == "+Inf" || text == "Inf") {
    *out = std::numeric_limits<double>::infinity();
    return true;
  }
  if (text == "-Inf") {
    *out = -std::numeric_limits<double>::infinity();
    return true;
  }
  if (text == "NaN") {
    *out = std::numeric_limits<double>::quiet_NaN();
    return true;
  }
  const auto [ptr, ec] =
      std::from_chars(text.data(), text.data() + text.size(), *out);
  return ec == std::errc() && ptr == text.data() + text.size();
}

/// Parses one sample line; returns false with *error set on failure.
bool ParseSample(std::string_view line, Sample* out, std::string* error) {
  size_t i = 0;
  while (i < line.size() && IsMetricNameChar(line[i])) ++i;
  out->name = std::string(line.substr(0, i));
  if (!ValidMetricName(out->name)) {
    *error = "invalid metric name";
    return false;
  }
  if (i < line.size() && line[i] == '{') {
    ++i;
    while (true) {
      if (i < line.size() && line[i] == '}') {
        ++i;
        break;
      }
      size_t name_start = i;
      while (i < line.size() && IsLabelNameChar(line[i])) ++i;
      std::string label(line.substr(name_start, i - name_start));
      if (label.empty() || !IsLabelNameStart(label[0])) {
        *error = "invalid label name";
        return false;
      }
      if (i >= line.size() || line[i] != '=') {
        *error = "expected '=' after label name";
        return false;
      }
      ++i;
      if (i >= line.size() || line[i] != '"') {
        *error = "label value must be quoted";
        return false;
      }
      ++i;
      std::string value;
      while (i < line.size() && line[i] != '"') {
        if (line[i] == '\\') {
          ++i;
          if (i >= line.size() ||
              (line[i] != '\\' && line[i] != '"' && line[i] != 'n')) {
            *error = "bad escape in label value";
            return false;
          }
          value.push_back(line[i] == 'n' ? '\n' : line[i]);
        } else {
          value.push_back(line[i]);
        }
        ++i;
      }
      if (i >= line.size()) {
        *error = "unterminated label value";
        return false;
      }
      ++i;  // closing quote
      out->labels.emplace_back(std::move(label), std::move(value));
      if (i < line.size() && line[i] == ',') {
        ++i;
        continue;
      }
      if (i < line.size() && line[i] == '}') {
        ++i;
        break;
      }
      *error = "expected ',' or '}' in label block";
      return false;
    }
  }
  if (i >= line.size() || line[i] != ' ') {
    *error = "expected space before value";
    return false;
  }
  ++i;
  // Value, optionally followed by a timestamp (which we never emit but
  // the format allows).
  size_t value_end = line.find(' ', i);
  std::string_view value_text = line.substr(
      i, value_end == std::string_view::npos ? std::string_view::npos
                                             : value_end - i);
  if (!ParseValue(value_text, &out->value)) {
    *error = "unparseable sample value '" + std::string(value_text) + "'";
    return false;
  }
  if (value_end != std::string_view::npos) {
    int64_t ts = 0;
    std::string_view ts_text = line.substr(value_end + 1);
    const auto [ptr, ec] =
        std::from_chars(ts_text.data(), ts_text.data() + ts_text.size(), ts);
    if (ec != std::errc() || ptr != ts_text.data() + ts_text.size()) {
      *error = "unparseable timestamp";
      return false;
    }
  }
  return true;
}

/// Per-family accumulated state, checked when the family ends.
struct FamilyState {
  std::string name;
  std::string type;
  int declared_line = 0;
  std::vector<std::pair<double, double>> buckets;  // (le, cumulative)
  std::optional<double> sum;
  std::optional<double> count;
  size_t samples = 0;
};

class Linter {
 public:
  std::vector<std::string> Run(std::string_view text) {
    int line_no = 0;
    size_t pos = 0;
    while (pos <= text.size()) {
      const size_t eol = text.find('\n', pos);
      std::string_view line = text.substr(
          pos, eol == std::string_view::npos ? std::string_view::npos
                                             : eol - pos);
      ++line_no;
      if (eol == std::string_view::npos) {
        if (!line.empty()) {
          Error(line_no, "final line is missing its trailing newline");
          LintLine(line, line_no);
        }
        break;
      }
      LintLine(line, line_no);
      pos = eol + 1;
    }
    FinishFamily(line_no);
    CrossFamilyChecks();
    return std::move(errors_);
  }

 private:
  void Error(int line_no, std::string message) {
    errors_.push_back("line " + std::to_string(line_no) + ": " +
                      std::move(message));
  }

  void LintLine(std::string_view line, int line_no) {
    if (line.empty()) return;
    if (line[0] == '#') {
      LintComment(line, line_no);
      return;
    }
    Sample sample;
    std::string error;
    if (!ParseSample(line, &sample, &error)) {
      Error(line_no, error);
      return;
    }
    if (!seen_series_.insert(sample.SeriesKey()).second) {
      Error(line_no, "duplicate series '" + sample.name + "'");
    }
    if (sample.labels.empty()) {
      scalar_values_[sample.name] = sample.value;
    }
    // The diagnostic-layer families are all counts: any negative sample
    // is an exporter bug regardless of the declared type.
    if ((sample.name.rfind("sdelta_events_", 0) == 0 ||
         sample.name.rfind("sdelta_anomaly_", 0) == 0) &&
        !(sample.value >= 0)) {
      Error(line_no, "'" + sample.name + "' must be non-negative");
    }
    LintSampleAgainstFamily(sample, line_no);
  }

  void LintComment(std::string_view line, int line_no) {
    // "# HELP name text" / "# TYPE name type"; any other comment is fine.
    if (line.rfind("# HELP ", 0) != 0 && line.rfind("# TYPE ", 0) != 0) {
      return;
    }
    const bool is_type = line.rfind("# TYPE ", 0) == 0;
    std::string_view rest = line.substr(7);
    const size_t space = rest.find(' ');
    std::string name(rest.substr(0, space));
    if (!ValidMetricName(name)) {
      Error(line_no, "invalid metric name in HELP/TYPE comment");
      return;
    }
    if (!is_type) {
      if (space == std::string_view::npos || space + 1 >= rest.size()) {
        Error(line_no, "HELP comment has no help text");
      }
      return;
    }
    std::string type(space == std::string_view::npos ? ""
                                                     : rest.substr(space + 1));
    if (type != "counter" && type != "gauge" && type != "histogram" &&
        type != "summary" && type != "untyped") {
      Error(line_no, "unknown metric type '" + type + "'");
      return;
    }
    FinishFamily(line_no);
    if (!declared_families_.insert(name).second) {
      Error(line_no, "family '" + name + "' declared twice");
    }
    family_ = FamilyState{};
    family_.name = std::move(name);
    family_.type = std::move(type);
    family_.declared_line = line_no;
  }

  void LintSampleAgainstFamily(const Sample& sample, int line_no) {
    if (family_.name.empty()) {
      Error(line_no,
            "sample '" + sample.name + "' precedes any TYPE declaration");
      return;
    }
    const std::string& fam = family_.name;
    if (family_.type == "counter") {
      if (sample.name != fam) {
        Error(line_no, "sample '" + sample.name +
                           "' does not belong to counter family '" + fam +
                           "'");
        return;
      }
      ++family_.samples;
      if (fam.size() < 6 || fam.compare(fam.size() - 6, 6, "_total") != 0) {
        Error(line_no, "counter '" + fam + "' lacks the _total suffix");
      }
      if (!(sample.value >= 0)) {
        Error(line_no, "counter '" + fam + "' has a negative value");
      }
      return;
    }
    if (family_.type == "gauge" || family_.type == "untyped") {
      if (sample.name != fam) {
        Error(line_no, "sample '" + sample.name +
                           "' does not belong to family '" + fam + "'");
      }
      ++family_.samples;
      return;
    }
    if (family_.type == "histogram" || family_.type == "summary") {
      ++family_.samples;
      if (sample.name == fam + "_bucket") {
        const std::optional<std::string> le = sample.Label("le");
        if (!le.has_value()) {
          Error(line_no, "histogram bucket without an le label");
          return;
        }
        double bound = 0;
        if (!ParseValue(*le, &bound)) {
          Error(line_no, "unparseable le value '" + *le + "'");
          return;
        }
        family_.buckets.emplace_back(bound, sample.value);
        return;
      }
      if (sample.name == fam + "_sum") {
        family_.sum = sample.value;
        return;
      }
      if (sample.name == fam + "_count") {
        family_.count = sample.value;
        return;
      }
      if (sample.name == fam) {
        if (family_.type == "summary") {
          // Summaries legitimately carry quantile-labelled samples of
          // the family name itself.
          if (!sample.Label("quantile").has_value()) {
            Error(line_no, "bare sample on summary family '" + fam +
                               "' without a quantile label");
          }
        } else {
          // A histogram family may only contain _bucket/_sum/_count
          // series; quantile samples belong in their own family
          // (export_prometheus emits <name>_quantiles).
          Error(line_no, "histogram family '" + fam +
                             "' may only contain _bucket/_sum/_count "
                             "series");
        }
        return;
      }
      Error(line_no, "sample '" + sample.name +
                         "' does not belong to histogram family '" + fam +
                         "'");
      return;
    }
  }

  /// End-of-family checks (called when the next TYPE line or EOF ends
  /// the current family).
  void FinishFamily(int line_no) {
    if (family_.name.empty()) return;
    const std::string& fam = family_.name;
    const int at = family_.declared_line;
    if (family_.samples == 0) {
      Error(line_no, "family '" + fam + "' (line " + std::to_string(at) +
                         ") has no samples");
    }
    if (family_.type == "histogram") {
      if (family_.buckets.empty()) {
        Error(line_no, "histogram '" + fam + "' has no buckets");
      } else {
        double prev_le = -std::numeric_limits<double>::infinity();
        double prev_count = 0;
        for (const auto& [le, count] : family_.buckets) {
          if (!(le > prev_le)) {
            Error(line_no,
                  "histogram '" + fam + "' le values are not ascending");
            break;
          }
          if (count + 1e-9 < prev_count) {
            Error(line_no, "histogram '" + fam +
                               "' bucket counts are not cumulative");
            break;
          }
          prev_le = le;
          prev_count = count;
        }
        if (!std::isinf(family_.buckets.back().first)) {
          Error(line_no,
                "histogram '" + fam + "' is missing the le=\"+Inf\" bucket");
        } else if (family_.count.has_value() &&
                   family_.buckets.back().second != *family_.count) {
          Error(line_no, "histogram '" + fam +
                             "' +Inf bucket does not equal _count");
        }
      }
      if (!family_.sum.has_value()) {
        Error(line_no, "histogram '" + fam + "' is missing _sum");
      }
      if (!family_.count.has_value()) {
        Error(line_no, "histogram '" + fam + "' is missing _count");
      }
    }
    family_ = FamilyState{};
  }

  /// Whole-document invariants between the diagnostic-layer families
  /// (events.* gauges, anomaly.* counters). Each check only fires when
  /// both series are present, so documents from services with those
  /// subsystems off still lint clean.
  void CrossFamilyChecks() {
    auto value = [&](const char* name) -> std::optional<double> {
      const auto it = scalar_values_.find(name);
      if (it == scalar_values_.end()) return std::nullopt;
      return it->second;
    };
    auto require_le = [&](const char* smaller, const char* larger) {
      const std::optional<double> a = value(smaller);
      const std::optional<double> b = value(larger);
      if (a.has_value() && b.has_value() && *a > *b) {
        errors_.push_back(std::string("document: '") + smaller + "' (" +
                          std::to_string(*a) + ") exceeds '" + larger +
                          "' (" + std::to_string(*b) + ")");
      }
    };
    require_le("sdelta_events_dropped", "sdelta_events_recorded");
    require_le("sdelta_events_occupancy", "sdelta_events_capacity");
    require_le("sdelta_anomaly_detections_total",
               "sdelta_anomaly_checks_total");
    require_le("sdelta_anomaly_bundles_pruned_total",
               "sdelta_anomaly_bundles_written_total");
    // Every bundle is triggered by at least one detection.
    require_le("sdelta_anomaly_bundles_written_total",
               "sdelta_anomaly_detections_total");
    // MQO: only detected subplans can be materialized, and every
    // materialization is an extract-common-subplan rule fire, so total
    // rule fires bound materializations from above.
    require_le("sdelta_mqo_subplans_materialized_total",
               "sdelta_mqo_subplans_detected_total");
    require_le("sdelta_mqo_subplans_materialized_total",
               "sdelta_mqo_rule_fires_total");
    // Replication: a replica can never be ahead of the writer's
    // installed epoch (epochs only exist once the writer ships them).
    require_le("sdelta_replica_applied_epoch",
               "sdelta_writer_installed_epoch");
    // Sharding: the per-shard delta-row counters partition the
    // pipeline-wide propagate counter — their sum must match exactly.
    {
      const std::optional<double> total =
          value("sdelta_propagate_delta_rows_total");
      double shard_sum = 0;
      bool any_shard = false;
      const std::string prefix = "sdelta_shard_delta_rows_";
      const std::string suffix = "_total";
      for (const auto& [name, v] : scalar_values_) {
        if (name.rfind(prefix, 0) != 0) continue;
        if (name.size() < prefix.size() + suffix.size() ||
            name.compare(name.size() - suffix.size(), suffix.size(),
                         suffix) != 0) {
          continue;
        }
        shard_sum += v;
        any_shard = true;
      }
      if (any_shard && total.has_value() && shard_sum != *total) {
        errors_.push_back(
            "document: shard delta-row counters sum to " +
            std::to_string(shard_sum) + " but " +
            "'sdelta_propagate_delta_rows_total' is " +
            std::to_string(*total) +
            " (per-shard counters must partition the propagate total)");
      }
    }
  }

  std::vector<std::string> errors_;
  std::map<std::string, double> scalar_values_;
  std::set<std::string> seen_series_;
  std::set<std::string> declared_families_;
  FamilyState family_;
};

}  // namespace

std::vector<std::string> LintPrometheusText(std::string_view text) {
  return Linter().Run(text);
}

}  // namespace sdelta::tools
