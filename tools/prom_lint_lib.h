#ifndef SDELTA_TOOLS_PROM_LINT_LIB_H_
#define SDELTA_TOOLS_PROM_LINT_LIB_H_

#include <string>
#include <string_view>
#include <vector>

namespace sdelta::tools {

/// Structural validator for the Prometheus text exposition format
/// (version 0.0.4) as produced by obs::ExportPrometheus. Used by the CI
/// endpoint-smoke job and by unit tests, so a format regression fails
/// the build before a real Prometheus server ever sees it.
///
/// Checks:
///   * line structure: HELP/TYPE comments and samples parse; sample
///     values are finite-or-+Inf decimal numbers; label blocks are
///     well-formed (quoted values, escaped specials);
///   * metric names match [a-zA-Z_:][a-zA-Z0-9_:]*, label names match
///     [a-zA-Z_][a-zA-Z0-9_]*;
///   * every sample belongs to a family introduced by a preceding TYPE
///     line; a family's samples are contiguous; no family is declared
///     twice;
///   * counter families: samples carry the `_total` suffix and
///     non-negative values;
///   * histogram families: `_bucket` samples carry an `le` label, their
///     `le` values are sorted ascending and end at "+Inf", cumulative
///     counts are non-decreasing, the +Inf bucket equals `_count`, and
///     `_sum`/`_count` are present. A histogram family may contain ONLY
///     `_bucket`/`_sum`/`_count` series — quantile samples belong in a
///     separate family (our exporter emits `<name>_quantiles` gauges);
///     summary families accept `name{quantile="..."}` samples;
///   * duplicate sample series (same name + label set) are rejected;
///   * diagnostic-layer semantics: events.*/anomaly.* samples are
///     non-negative, events_dropped <= events_recorded, events_occupancy
///     <= events_capacity, anomaly detections <= checks, and bundle
///     counters (pruned <= written <= detections) stay consistent, and
///     mqo counters obey materialized <= detected and materialized <=
///     rule fires — each check applies only when both series appear in
///     the document;
///   * replication/sharding semantics: replica_applied_epoch <=
///     writer_installed_epoch, and the per-shard
///     shard_delta_rows_<s>_total counters sum exactly to
///     propagate_delta_rows_total — again only when the relevant series
///     are present.
///
/// Returns the list of problems, one human-readable line each, with
/// 1-based line numbers; empty = the document lints clean.
std::vector<std::string> LintPrometheusText(std::string_view text);

}  // namespace sdelta::tools

#endif  // SDELTA_TOOLS_PROM_LINT_LIB_H_
