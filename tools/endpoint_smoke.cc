// CI smoke test for the embedded scrape endpoint: boots a small retail
// WarehouseService on an ephemeral 127.0.0.1 port, drives a few batches
// and snapshot queries through it, then scrapes every route with a
// plain POSIX HTTP client and validates the payloads — /metrics through
// the Prometheus format linter, the JSON routes through obs::Json.
// Exit 0 = all routes well-formed; nonzero prints what failed.
//
//   ./build/tools/endpoint_smoke [data_dir]
//   ./build/tools/endpoint_smoke --dump-metrics   # print one /metrics
//       scrape to stdout (for piping through the prom_lint CLI) and
//       exit without running the route checks
#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cstdio>
#include <cstring>
#include <filesystem>
#include <string>
#include <vector>

#include "obs/json.h"
#include "prom_lint_lib.h"
#include "service/service.h"
#include "warehouse/retail_schema.h"
#include "warehouse/workload.h"

namespace {

namespace fs = std::filesystem;
using sdelta::service::WarehouseService;

int g_failures = 0;

void Fail(const std::string& what) {
  std::fprintf(stderr, "FAIL: %s\n", what.c_str());
  ++g_failures;
}

void Check(bool ok, const std::string& what) {
  if (ok) {
    std::fprintf(stderr, "  ok: %s\n", what.c_str());
  } else {
    Fail(what);
  }
}

struct ScrapeResult {
  int status = 0;
  std::string content_type;
  std::string body;
};

/// One HTTP/1.0 GET against 127.0.0.1:port.
bool Scrape(int port, const std::string& path, ScrapeResult* out) {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) return false;
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(static_cast<uint16_t>(port));
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof addr) != 0) {
    ::close(fd);
    return false;
  }
  const std::string request = "GET " + path + " HTTP/1.0\r\n\r\n";
  size_t sent = 0;
  while (sent < request.size()) {
    const ssize_t n = ::send(fd, request.data() + sent, request.size() - sent,
                             0);
    if (n <= 0) {
      ::close(fd);
      return false;
    }
    sent += static_cast<size_t>(n);
  }
  std::string response;
  char buf[4096];
  ssize_t n = 0;
  while ((n = ::recv(fd, buf, sizeof buf, 0)) > 0) {
    response.append(buf, static_cast<size_t>(n));
  }
  ::close(fd);

  const size_t head_end = response.find("\r\n\r\n");
  if (head_end == std::string::npos) return false;
  const std::string head = response.substr(0, head_end);
  out->body = response.substr(head_end + 4);
  if (std::sscanf(head.c_str(), "HTTP/1.%*d %d", &out->status) != 1) {
    return false;
  }
  // Pull Content-Type out of the headers (case-exact: our server).
  const size_t ct = head.find("Content-Type: ");
  if (ct != std::string::npos) {
    const size_t eol = head.find("\r\n", ct);
    out->content_type = head.substr(ct + 14, eol - (ct + 14));
  }
  return true;
}

sdelta::obs::Json ParseJsonOrFail(const std::string& route,
                                  const std::string& body) {
  try {
    return sdelta::obs::Json::Parse(body);
  } catch (const std::exception& e) {
    Fail(route + ": body is not valid JSON: " + e.what());
    return sdelta::obs::Json();
  }
}

sdelta::warehouse::RetailConfig SmallConfig() {
  sdelta::warehouse::RetailConfig config;
  config.num_stores = 10;
  config.num_cities = 5;
  config.num_regions = 3;
  config.num_items = 50;
  config.num_categories = 6;
  config.num_dates = 20;
  config.num_pos_rows = 1200;
  config.seed = 77;
  return config;
}

}  // namespace

int main(int argc, char** argv) {
  const bool dump_metrics =
      argc > 1 && std::strcmp(argv[1], "--dump-metrics") == 0;
  const std::string data_dir =
      argc > 1 && !dump_metrics
          ? argv[1]
          : (fs::temp_directory_path() /
             ("sdelta_smoke_" + std::to_string(::getpid())))
                .string();
  fs::remove_all(data_dir);

  WarehouseService::Options options;
  options.auto_batching = false;
  options.http_port = 0;  // ephemeral
  // The historical layer on, so /timeseries, /profile, and /anomalies
  // serve real documents rather than {"enabled": false}.
  options.profile = true;
  options.anomaly.enabled = true;
  auto svc = WarehouseService::Open(
      data_dir, sdelta::warehouse::MakeRetailCatalog(SmallConfig()),
      sdelta::warehouse::RetailSummaryTables(), options);
  const int port = svc->http_port();
  std::fprintf(stderr, "service up on 127.0.0.1:%d (data %s)\n", port,
               data_dir.c_str());
  Check(port > 0, "ephemeral port resolved");

  // Give the endpoint something to show: two batches, a checkpoint, and
  // a few snapshot queries.
  sdelta::rel::Catalog mirror =
      sdelta::warehouse::MakeRetailCatalog(SmallConfig());
  for (uint64_t seed = 1; seed <= 2; ++seed) {
    sdelta::core::ChangeSet changes =
        sdelta::warehouse::MakeInsertionGeneratingChanges(mirror, 100, seed);
    sdelta::core::ApplyChangeSet(mirror, changes);
    svc->Append(std::move(changes));
    svc->Flush();
  }
  svc->Checkpoint();
  for (int i = 0; i < 3; ++i) {
    svc->Snapshot().Query(
        "SELECT region, SUM(qty) AS q FROM pos, stores "
        "WHERE pos.storeID = stores.storeID GROUP BY region");
  }

  ScrapeResult r;

  if (dump_metrics) {
    if (!Scrape(port, "/metrics", &r) || r.status != 200) {
      std::fprintf(stderr, "--dump-metrics: /metrics scrape failed\n");
      return 1;
    }
    std::fwrite(r.body.data(), 1, r.body.size(), stdout);
    svc->Stop();
    svc.reset();
    std::error_code ec;
    fs::remove_all(data_dir, ec);
    return 0;
  }

  // /metrics: Prometheus exposition, must lint clean.
  if (!Scrape(port, "/metrics", &r)) {
    Fail("/metrics: scrape failed");
  } else {
    Check(r.status == 200, "/metrics status 200");
    Check(r.content_type.rfind("text/plain", 0) == 0,
          "/metrics content type text/plain");
    const std::vector<std::string> problems =
        sdelta::tools::LintPrometheusText(r.body);
    for (const std::string& p : problems) {
      Fail("/metrics lint: " + p);
    }
    Check(problems.empty(), "/metrics lints clean");
    Check(r.body.find("sdelta_service_appends_total 2") != std::string::npos,
          "/metrics carries service.appends");
    Check(r.body.find("sdelta_service_refresh_window_bucket") !=
              std::string::npos,
          "/metrics carries refresh-window histogram buckets");
  }

  // /healthz: healthy JSON, status 200.
  if (!Scrape(port, "/healthz", &r)) {
    Fail("/healthz: scrape failed");
  } else {
    Check(r.status == 200, "/healthz status 200 (healthy)");
    const sdelta::obs::Json doc = ParseJsonOrFail("/healthz", r.body);
    const sdelta::obs::Json* healthy = doc.Find("healthy");
    Check(healthy != nullptr && healthy->as_bool(), "/healthz healthy=true");
    Check(doc.Find("slo") != nullptr, "/healthz embeds the SLO document");
  }

  // /varz: obs JSON document with the metrics section.
  if (!Scrape(port, "/varz", &r)) {
    Fail("/varz: scrape failed");
  } else {
    Check(r.status == 200, "/varz status 200");
    const sdelta::obs::Json doc = ParseJsonOrFail("/varz", r.body);
    const sdelta::obs::Json* schema = doc.Find("schema");
    Check(schema != nullptr && schema->as_string() == "sdelta.obs.v2",
          "/varz schema sdelta.obs.v2");
    Check(doc.Find("metrics") != nullptr, "/varz has metrics");
  }

  // /epochs: epoch number advanced past the two flushes, 4 retail views.
  if (!Scrape(port, "/epochs", &r)) {
    Fail("/epochs: scrape failed");
  } else {
    Check(r.status == 200, "/epochs status 200");
    const sdelta::obs::Json doc = ParseJsonOrFail("/epochs", r.body);
    const sdelta::obs::Json* epoch = doc.Find("epoch");
    Check(epoch != nullptr && epoch->as_int() >= 3, "/epochs epoch >= 3");
    const sdelta::obs::Json* views = doc.Find("views");
    Check(views != nullptr && views->is_array() && views->items().size() == 4,
          "/epochs lists 4 views with row counts");
  }

  // /events: the flight recorder saw both batches and the checkpoint.
  if (!Scrape(port, "/events", &r)) {
    Fail("/events: scrape failed");
  } else {
    Check(r.status == 200, "/events status 200");
    const sdelta::obs::Json doc = ParseJsonOrFail("/events", r.body);
    const sdelta::obs::Json* schema = doc.Find("schema");
    Check(schema != nullptr && schema->as_string() == "sdelta.events.v1",
          "/events schema sdelta.events.v1");
    const sdelta::obs::Json* counts = doc.Find("counts");
    const sdelta::obs::Json* starts =
        counts != nullptr ? counts->Find("BatchStart") : nullptr;
    const sdelta::obs::Json* ckpts =
        counts != nullptr ? counts->Find("WalCheckpoint") : nullptr;
    Check(starts != nullptr && starts->as_int() == 2,
          "/events counted 2 BatchStart");
    Check(ckpts != nullptr && ckpts->as_int() == 1,
          "/events counted 1 WalCheckpoint");
  }

  // /timeseries: the per-batch metric history, full document and the
  // single-series query form.
  if (!Scrape(port, "/timeseries", &r)) {
    Fail("/timeseries: scrape failed");
  } else {
    Check(r.status == 200, "/timeseries status 200");
    const sdelta::obs::Json doc = ParseJsonOrFail("/timeseries", r.body);
    const sdelta::obs::Json* schema = doc.Find("schema");
    Check(schema != nullptr && schema->as_string() == "sdelta.timeseries.v1",
          "/timeseries schema sdelta.timeseries.v1");
    const sdelta::obs::Json* batches = doc.Find("batches");
    Check(batches != nullptr && batches->is_array() &&
              batches->items().size() == 2,
          "/timeseries retained both batches");
    const sdelta::obs::Json* series = doc.Find("series");
    Check(series != nullptr && series->Find("service.appends") != nullptr,
          "/timeseries carries service.appends");
  }
  if (!Scrape(port, "/timeseries?metric=service.appends&from=2", &r)) {
    Fail("/timeseries?metric: scrape failed");
  } else {
    Check(r.status == 200, "/timeseries?metric status 200");
    const sdelta::obs::Json doc =
        ParseJsonOrFail("/timeseries?metric", r.body);
    const sdelta::obs::Json* points = doc.Find("points");
    Check(points != nullptr && points->is_array() &&
              points->items().size() == 1,
          "/timeseries?metric=...&from=2 returns the range-limited series");
  }

  // /profile: the folded maintenance profile, JSON and collapsed forms.
  if (!Scrape(port, "/profile", &r)) {
    Fail("/profile: scrape failed");
  } else {
    Check(r.status == 200, "/profile status 200");
    const sdelta::obs::Json doc = ParseJsonOrFail("/profile", r.body);
    const sdelta::obs::Json* schema = doc.Find("schema");
    Check(schema != nullptr && schema->as_string() == "sdelta.profile.v1",
          "/profile schema sdelta.profile.v1");
    const sdelta::obs::Json* batches = doc.Find("batches");
    Check(batches != nullptr && batches->as_int() == 2,
          "/profile folded both batches");
  }
  if (!Scrape(port, "/profile?format=collapsed", &r)) {
    Fail("/profile?format=collapsed: scrape failed");
  } else {
    Check(r.status == 200, "/profile?format=collapsed status 200");
    Check(r.content_type.rfind("text/plain", 0) == 0,
          "/profile?format=collapsed is text/plain");
    Check(r.body.find("warehouse.RunBatch;") != std::string::npos,
          "collapsed stacks contain the RunBatch frames");
  }

  // /anomalies: detector state; the quiet workload fired nothing.
  if (!Scrape(port, "/anomalies", &r)) {
    Fail("/anomalies: scrape failed");
  } else {
    Check(r.status == 200, "/anomalies status 200");
    const sdelta::obs::Json doc = ParseJsonOrFail("/anomalies", r.body);
    const sdelta::obs::Json* schema = doc.Find("schema");
    Check(schema != nullptr && schema->as_string() == "sdelta.anomaly.v1",
          "/anomalies schema sdelta.anomaly.v1");
    const sdelta::obs::Json* anomalies = doc.Find("anomalies");
    Check(anomalies != nullptr && anomalies->is_array() &&
              anomalies->items().empty(),
          "/anomalies shows no detections for the quiet workload");
    const sdelta::obs::Json* bundles = doc.Find("bundles");
    Check(bundles != nullptr && bundles->is_array() &&
              bundles->items().empty(),
          "/anomalies lists no flight-recorder bundles");
  }

  // Unknown route → 404; the server stays up afterwards.
  if (!Scrape(port, "/nope", &r)) {
    Fail("/nope: scrape failed");
  } else {
    Check(r.status == 404, "unknown route answers 404");
  }
  if (!Scrape(port, "/healthz", &r)) {
    Fail("post-404 /healthz: scrape failed");
  } else {
    Check(r.status == 200, "endpoint still serving after a 404");
  }

  svc->Stop();
  svc.reset();
  if (argc <= 1) {
    std::error_code ec;
    fs::remove_all(data_dir, ec);
  }

  if (g_failures == 0) {
    std::fprintf(stderr, "endpoint smoke: all routes OK\n");
    return 0;
  }
  std::fprintf(stderr, "endpoint smoke: %d failure(s)\n", g_failures);
  return 1;
}
