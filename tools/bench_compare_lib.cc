#include "bench_compare_lib.h"

#include <algorithm>
#include <charconv>
#include <stdexcept>

namespace sdelta::tools {

namespace {

std::string NumberTo(double v) {
  char buf[32];
  auto [ptr, ec] = std::to_chars(buf, buf + sizeof(buf), v);
  if (ec != std::errc{}) return "0";
  return std::string(buf, ptr);
}

bool Contains(const std::vector<std::string>& v, const std::string& s) {
  return std::find(v.begin(), v.end(), s) != v.end();
}

/// The identity key of an entry: every member that is neither a metric
/// nor ignored, as "name=value" pairs in member order (the merge-writer
/// emits key fields in a fixed order, so keys are stable).
std::string EntryKey(const obs::Json& entry, const CompareOptions& options) {
  std::string key;
  for (const auto& [name, value] : entry.members()) {
    if (options.metrics.count(name) > 0) continue;
    if (Contains(options.ignore, name)) continue;
    if (!key.empty()) key += ' ';
    key += name + "=" + value.Dump();
  }
  return key;
}

const obs::Json& Entries(const obs::Json& doc, const char* which) {
  if (!doc.is_object()) {
    throw std::runtime_error(std::string(which) + ": not a JSON object");
  }
  const obs::Json* schema = doc.Find("schema");
  if (schema == nullptr || schema->as_string() != "sdelta.bench.v1") {
    throw std::runtime_error(std::string(which) +
                             ": not an sdelta.bench.v1 document");
  }
  const obs::Json* entries = doc.Find("entries");
  if (entries == nullptr || !entries->is_array()) {
    throw std::runtime_error(std::string(which) + ": no entries array");
  }
  return *entries;
}

bool IsNumeric(const obs::Json& v) {
  return v.kind() == obs::Json::Kind::kInt ||
         v.kind() == obs::Json::Kind::kDouble;
}

/// Truthiness of an entry's flag member: present and true (or a nonzero
/// number). Absent members are falsy.
bool FlagTruthy(const obs::Json& entry, const std::string& member) {
  const obs::Json* v = entry.Find(member);
  if (v == nullptr) return false;
  if (v->kind() == obs::Json::Kind::kBool) return v->as_bool();
  if (IsNumeric(*v)) return v->as_double() != 0;
  return false;
}

}  // namespace

CompareOptions ParseTolerances(const obs::Json& doc) {
  if (!doc.is_object()) {
    throw std::runtime_error("tolerance file: not a JSON object");
  }
  const obs::Json* schema = doc.Find("schema");
  if (schema == nullptr || schema->as_string() != "sdelta.tolerances.v1") {
    throw std::runtime_error(
        "tolerance file: schema is not sdelta.tolerances.v1");
  }
  CompareOptions options;
  if (const obs::Json* ignore = doc.Find("ignore"); ignore != nullptr) {
    for (const obs::Json& field : ignore->items()) {
      options.ignore.push_back(field.as_string());
    }
  }
  const obs::Json* metrics = doc.Find("metrics");
  if (metrics == nullptr || !metrics->is_object()) {
    throw std::runtime_error("tolerance file: no metrics object");
  }
  for (const auto& [name, spec] : metrics->members()) {
    MetricTolerance t;
    if (const obs::Json* exact = spec.Find("exact"); exact != nullptr) {
      t.exact = exact->as_bool();
    }
    if (const obs::Json* rel = spec.Find("rel_tolerance"); rel != nullptr) {
      t.rel_tolerance = rel->as_double();
      if (t.rel_tolerance < 0) {
        throw std::runtime_error("tolerance file: negative rel_tolerance for " +
                                 name);
      }
    }
    if (const obs::Json* hib = spec.Find("higher_is_better"); hib != nullptr) {
      t.higher_is_better = hib->as_bool();
    }
    if (const obs::Json* cond = spec.Find("only_if"); cond != nullptr) {
      t.only_if = cond->as_string();
    }
    options.metrics[name] = t;
  }
  return options;
}

std::string CompareIssue::ToString() const {
  // For higher-is-better metrics the limit is a floor, not a ceiling.
  const char* bound = current < limit ? " allowed>=" : " allowed<=";
  return key + " " + metric + ": baseline=" + NumberTo(baseline) +
         " current=" + NumberTo(current) + bound + NumberTo(limit);
}

std::string CompareReport::ToString() const {
  std::string out;
  for (const std::string& note : notes) out += "note: " + note + "\n";
  for (const CompareIssue& issue : regressions) {
    out += "REGRESSION: " + issue.ToString() + "\n";
  }
  out += "compared " + std::to_string(entries_compared) + " entries, " +
         std::to_string(metrics_compared) + " metrics: " +
         (regressions.empty() ? "OK" :
          std::to_string(regressions.size()) + " regression(s)") + "\n";
  return out;
}

CompareReport CompareBench(const obs::Json& baseline, const obs::Json& current,
                           const CompareOptions& options) {
  const obs::Json& base_entries = Entries(baseline, "baseline");
  const obs::Json& cur_entries = Entries(current, "current");
  const obs::Json* base_bench = baseline.Find("bench");
  const obs::Json* cur_bench = current.Find("bench");
  if (base_bench != nullptr && cur_bench != nullptr &&
      base_bench->as_string() != cur_bench->as_string()) {
    throw std::runtime_error("bench name mismatch: baseline is '" +
                             base_bench->as_string() + "', current is '" +
                             cur_bench->as_string() + "'");
  }

  CompareReport report;
  std::map<std::string, const obs::Json*> by_key;
  for (const obs::Json& entry : base_entries.items()) {
    by_key[EntryKey(entry, options)] = &entry;
  }

  for (const obs::Json& entry : cur_entries.items()) {
    const std::string key = EntryKey(entry, options);
    auto it = by_key.find(key);
    if (it == by_key.end()) {
      report.notes.push_back("no baseline for: " + key);
      continue;
    }
    const obs::Json& base = *it->second;
    by_key.erase(it);
    ++report.entries_compared;

    for (const auto& [metric, tolerance] : options.metrics) {
      const obs::Json* base_value = base.Find(metric);
      const obs::Json* cur_value = entry.Find(metric);
      if (base_value == nullptr || cur_value == nullptr) continue;
      if (!tolerance.only_if.empty() &&
          !(FlagTruthy(base, tolerance.only_if) &&
            FlagTruthy(entry, tolerance.only_if))) {
        report.notes.push_back("skipped " + metric + " (" + tolerance.only_if +
                               " not set on both sides) in: " + key);
        continue;
      }
      if (!IsNumeric(*base_value) || !IsNumeric(*cur_value)) {
        report.notes.push_back("non-numeric metric " + metric + " in: " + key);
        continue;
      }
      ++report.metrics_compared;
      const double b = base_value->as_double();
      const double c = cur_value->as_double();
      if (tolerance.exact) {
        if (c != b) {
          report.regressions.push_back(CompareIssue{key, metric, b, c, b});
        }
      } else if (tolerance.higher_is_better) {
        const double limit = b * (1.0 - tolerance.rel_tolerance);
        if (c < limit) {
          report.regressions.push_back(CompareIssue{key, metric, b, c, limit});
        }
      } else {
        const double limit = b * (1.0 + tolerance.rel_tolerance);
        if (c > limit) {
          report.regressions.push_back(CompareIssue{key, metric, b, c, limit});
        }
      }
    }
  }
  for (const auto& [key, entry] : by_key) {
    report.notes.push_back("baseline entry not in current run: " + key);
  }
  return report;
}

}  // namespace sdelta::tools
