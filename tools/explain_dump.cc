// Dumps the EXPLAIN / EXPLAIN ANALYZE tree for the paper's retail
// lattice — the CLI face of Warehouse::Explain for scripts and CI (the
// bench gate uploads DOT output as a debugging artifact on failure).
//
//   explain_dump [--analyze] [--format text|dot|json] [--timings]
//                [--pos-rows N] [--changes N] [--threads N] [--seed S]
//                [--kind update|insert|backfill|recat]
//
// The default rendering contains only plan-and-data-determined fields:
// two runs with the same arguments produce byte-identical output at any
// --threads value.
#include <cstdio>
#include <string>

#include "lattice/explain.h"
#include "warehouse/retail_schema.h"
#include "warehouse/warehouse.h"
#include "warehouse/workload.h"

using namespace sdelta;  // NOLINT: tool brevity

namespace {

int Usage() {
  std::fprintf(stderr,
               "usage: explain_dump [--analyze] [--format text|dot|json] "
               "[--timings]\n"
               "                    [--pos-rows N] [--changes N] "
               "[--threads N] [--seed S]\n"
               "                    [--kind update|insert|backfill|recat]\n");
  return 2;
}

}  // namespace

int main(int argc, char** argv) {
  bool analyze = false;
  std::string format = "text";
  std::string kind = "update";
  lattice::ExplainRenderOptions render;
  size_t pos_rows = 20000;
  size_t change_rows = 1000;
  size_t threads = 1;
  uint64_t seed = 42;

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto value = [&]() -> const char* {
      return i + 1 < argc ? argv[++i] : nullptr;
    };
    if (arg == "--analyze") {
      analyze = true;
    } else if (arg == "--timings") {
      render.include_timings = true;
    } else if (arg == "--format") {
      const char* v = value();
      if (v == nullptr) return Usage();
      format = v;
    } else if (arg == "--kind") {
      const char* v = value();
      if (v == nullptr) return Usage();
      kind = v;
    } else if (arg == "--pos-rows") {
      const char* v = value();
      if (v == nullptr) return Usage();
      pos_rows = std::stoul(v);
    } else if (arg == "--changes") {
      const char* v = value();
      if (v == nullptr) return Usage();
      change_rows = std::stoul(v);
    } else if (arg == "--threads") {
      const char* v = value();
      if (v == nullptr) return Usage();
      threads = std::stoul(v);
    } else if (arg == "--seed") {
      const char* v = value();
      if (v == nullptr) return Usage();
      seed = std::stoull(v);
    } else {
      return Usage();
    }
  }
  if (format != "text" && format != "dot" && format != "json") return Usage();

  warehouse::RetailConfig config;
  config.num_pos_rows = pos_rows;
  warehouse::Warehouse::Options options;
  options.num_threads = threads;
  warehouse::Warehouse wh(warehouse::MakeRetailCatalog(config), options);
  wh.DefineSummaryTables(warehouse::RetailSummaryTables());

  core::ChangeSet changes;
  if (kind == "update") {
    changes = warehouse::MakeUpdateGeneratingChanges(wh.catalog(), change_rows,
                                                     seed);
  } else if (kind == "insert") {
    changes = warehouse::MakeInsertionGeneratingChanges(wh.catalog(),
                                                        change_rows, seed);
  } else if (kind == "backfill") {
    changes = warehouse::MakeBackfillChanges(wh.catalog(), change_rows, seed);
  } else if (kind == "recat") {
    changes = warehouse::MakeItemRecategorization(wh.catalog(), change_rows,
                                                  seed);
  } else {
    return Usage();
  }

  const lattice::ExplainResult explain =
      analyze ? wh.ExplainAnalyze(changes) : wh.Explain(changes);
  if (format == "dot") {
    std::printf("%s", explain.ToDot(render).c_str());
  } else if (format == "json") {
    std::printf("%s\n", explain.ToJson(render).Dump(1).c_str());
  } else {
    std::printf("%s", explain.ToText(render).c_str());
  }
  return 0;
}
