// Sharded-refresh scaling (DESIGN.md §15): per-batch refresh time with
// the summary state hash-partitioned into 1, 2, and 8 shards, each
// slice refreshing as an independent per-shard pipeline on the parallel
// engine. Results merge into BENCH_shard.json.
//
// The CI bench gate checks two kinds of facts:
//   - exact counts: delta_rows (total routed summary-delta rows) and
//     composed_rows (total rows across composed views after the run)
//     are byte-identity consequences of the routing invariant — any
//     drift means rows crossed shards or got lost;
//   - shard_refresh_speedup vs the single-shard run, gated only when
//     shard_scaling_meaningful (host_cpus > 1): on a one-core host all
//     shards share the core and the speedup honestly hovers around 1x,
//     so the gate falls back to counts alone.
#include <cstdint>
#include <cstdio>
#include <string>
#include <thread>
#include <vector>

#include "bench_common.h"
#include "core/maintenance.h"
#include "obs/export_json.h"
#include "obs/metrics.h"
#include "shard/sharded_maintenance.h"

namespace sdelta::bench {
namespace {

constexpr size_t kPosRows = 200000;
constexpr size_t kChangeRows = 10000;
constexpr int kBatches = 3;

struct Measurement {
  size_t shards = 1;
  double refresh_seconds = 0;  // mean per-batch wall time of RunBatch
  uint64_t delta_rows = 0;     // total routed summary-delta rows
  size_t composed_rows = 0;    // total view rows after the run
};

Measurement MeasureAt(size_t num_shards, size_t num_threads) {
  Measurement m;
  m.shards = num_shards;
  obs::MetricsRegistry metrics;
  warehouse::Warehouse::Options options;
  options.num_threads = num_threads;
  options.metrics = &metrics;
  warehouse::Warehouse wh(
      warehouse::MakeRetailCatalog(PaperConfig(kPosRows)), options);
  wh.DefineSummaryTables(warehouse::RetailSummaryTables());
  shard::ShardedMaintenance shards(&wh, num_shards, &metrics);

  // Same change-set trajectory at every shard count: the warehouses
  // evolve in lockstep, so delta_rows / composed_rows must agree.
  for (int batch = 0; batch < kBatches; ++batch) {
    const core::ChangeSet changes = MakeChanges(
        wh.catalog(), ChangeClass::kUpdate, kChangeRows,
        700 + static_cast<uint64_t>(batch));
    core::Stopwatch sw;
    shards.RunBatch(changes);
    m.refresh_seconds += sw.ElapsedSeconds() / kBatches;
  }
  for (size_t s = 0; s < num_shards; ++s) {
    m.delta_rows += shards.total_delta_rows(s);
  }
  for (size_t v = 0; v < wh.vlattice().views.size(); ++v) {
    m.composed_rows += shards.ComposeView(v).NumRows();
  }
  return m;
}

}  // namespace
}  // namespace sdelta::bench

int main() {
  using namespace sdelta::bench;
  using sdelta::obs::Json;

  const int64_t host_cpus =
      static_cast<int64_t>(std::thread::hardware_concurrency());
  // Threads track the shard count (capped at the host) so each shard's
  // refresh can own an execution context; the single-shard run is the
  // serial baseline.
  std::printf("bench_shard: %zu pos rows, %zu change rows, host_cpus=%lld\n",
              kPosRows, kChangeRows, static_cast<long long>(host_cpus));

  std::vector<Measurement> results;
  for (size_t shards : {1u, 2u, 8u}) {
    const size_t threads =
        shards == 1 ? 1
                    : std::min<size_t>(shards,
                                       host_cpus > 0
                                           ? static_cast<size_t>(host_cpus)
                                           : 1);
    results.push_back(MeasureAt(shards, threads));
    const Measurement& m = results.back();
    std::printf(
        "  shards=%zu threads=%zu  refresh %8.2f ms  delta_rows %llu  "
        "composed_rows %zu\n",
        m.shards, threads, 1e3 * m.refresh_seconds,
        static_cast<unsigned long long>(m.delta_rows), m.composed_rows);
  }

  const double base_refresh = results.front().refresh_seconds;
  std::vector<Json> entries;
  for (const Measurement& m : results) {
    Json e = Json::Object();
    e.Set("shards", Json::Int(static_cast<int64_t>(m.shards)));
    e.Set("pos_rows", Json::Int(static_cast<int64_t>(kPosRows)));
    e.Set("change_rows", Json::Int(static_cast<int64_t>(kChangeRows)));
    e.Set("refresh_ms", Json::Double(1e3 * m.refresh_seconds));
    e.Set("shard_refresh_speedup",
          Json::Double(m.refresh_seconds > 0 ? base_refresh / m.refresh_seconds
                                             : 0));
    e.Set("delta_rows", Json::Int(static_cast<int64_t>(m.delta_rows)));
    e.Set("composed_rows", Json::Int(static_cast<int64_t>(m.composed_rows)));
    e.Set("host_cpus", Json::Int(host_cpus));
    // Speedup gating flag (same contract as the parallel-scaling bench):
    // bench_compare checks refresh_speedup only when both runs had real
    // cores to scale onto.
    e.Set("shard_scaling_meaningful", Json::Bool(host_cpus > 1));
    entries.push_back(std::move(e));
  }
  sdelta::obs::MergeBenchJson("BENCH_shard.json", "shard_scaling",
                              {"shards", "pos_rows", "change_rows"}, entries);
  std::printf("wrote BENCH_shard.json\n");
  return 0;
}
