// Figure 9(c): elapsed time vs change-set size (1k..10k) at |pos| =
// 500k, for INSERTION-GENERATING changes (insertions over new dates,
// existing stores/items).
//
// Expected shape (paper §6): incremental maintenance wins by a larger
// margin than for update-generating changes — the views grouping by
// date see pure inserts, cutting refresh time (~50% in the paper).
#include <benchmark/benchmark.h>

#include "bench_fig9.h"

int main(int argc, char** argv) {
  sdelta::bench::RegisterFig9("c", /*sweep_changes=*/true,
                              sdelta::bench::ChangeClass::kInsertion);
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  sdelta::bench::WriteFig9Json();
  benchmark::Shutdown();
  return 0;
}
