// Figure 9(d): elapsed time vs |pos| (100k..500k) at a fixed 10k-row
// change set, for INSERTION-GENERATING changes.
//
// Expected shape (paper §6): propagate stays flat with |pos|;
// rematerialization scales with |pos|; maintenance stays far below
// rematerialization throughout.
#include <benchmark/benchmark.h>

#include "bench_fig9.h"

int main(int argc, char** argv) {
  sdelta::bench::RegisterFig9("d", /*sweep_changes=*/false,
                              sdelta::bench::ChangeClass::kInsertion);
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  sdelta::bench::WriteFig9Json();
  benchmark::Shutdown();
  return 0;
}
