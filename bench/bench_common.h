#ifndef SDELTA_BENCH_BENCH_COMMON_H_
#define SDELTA_BENCH_BENCH_COMMON_H_

#include <cstdint>
#include <map>
#include <memory>
#include <string>

#include "warehouse/retail_schema.h"
#include "warehouse/warehouse.h"
#include "warehouse/workload.h"

namespace sdelta::bench {

/// The paper's experimental configuration (§6): pos 100k–500k rows over
/// 100 stores / 30 cities / 5 regions / 1000 items / 20 categories, with
/// composite indexes on the summary tables' group-by columns (our
/// SummaryTable provides the equivalent hash index).
inline warehouse::RetailConfig PaperConfig(size_t pos_rows,
                                           uint64_t seed = 4242) {
  warehouse::RetailConfig config;
  config.num_stores = 100;
  config.num_cities = 30;
  config.num_regions = 5;
  config.num_items = 1000;
  config.num_categories = 20;
  config.num_dates = 365;
  config.num_pos_rows = pos_rows;
  config.seed = seed;
  return config;
}

enum class ChangeClass { kUpdate, kInsertion };

inline core::ChangeSet MakeChanges(const rel::Catalog& catalog,
                                   ChangeClass cls, size_t n,
                                   uint64_t seed) {
  return cls == ChangeClass::kUpdate
             ? warehouse::MakeUpdateGeneratingChanges(catalog, n, seed)
             : warehouse::MakeInsertionGeneratingChanges(catalog, n, seed);
}

/// Lazily built, cached warehouses keyed by (pos size, options hash) so
/// a sweep over change sizes shares one instance. Building a 500k-row
/// warehouse with four materialized summary tables takes seconds; the
/// cache keeps bench startup sane.
class WarehouseCache {
 public:
  warehouse::Warehouse& Get(size_t pos_rows,
                            warehouse::Warehouse::Options options = {},
                            const std::string& tag = "") {
    const std::string key = std::to_string(pos_rows) + "/" + tag;
    auto it = cache_.find(key);
    if (it == cache_.end()) {
      auto wh = std::make_unique<warehouse::Warehouse>(
          warehouse::MakeRetailCatalog(PaperConfig(pos_rows)), options);
      wh->DefineSummaryTables(warehouse::RetailSummaryTables());
      it = cache_.emplace(key, std::move(wh)).first;
    }
    return *it->second;
  }

  static WarehouseCache& Instance() {
    static WarehouseCache* cache = new WarehouseCache();
    return *cache;
  }

 private:
  std::map<std::string, std::unique_ptr<warehouse::Warehouse>> cache_;
};

}  // namespace sdelta::bench

#endif  // SDELTA_BENCH_BENCH_COMMON_H_
