// Microbench for the key/compression layer: packed 128-bit keys +
// flat open-addressing maps versus the boxed GroupKey path over
// std::unordered_map, on the retail-shaped key schemas the propagate
// and refresh hot loops actually see.
//
// Cases:
//   groupby_packed / groupby_boxed  - 3-int-column GroupBy (storeID,
//       itemID, date), SUM + COUNT, toggled via SetPackedKeysEnabled
//   join_packed / join_boxed        - fact-to-dimension HashJoin probe
//
// Writes BENCH_keys.json entries {case, rows, ms, groups,
// packed_ratio, probe_len_mean} for the CI bench gate: packed_ratio
// and groups are exact (the codec either packs the schema or the PR
// regressed it), probe_len_mean is tolerance-gated.
#include <benchmark/benchmark.h>

#include <cstdint>
#include <string>
#include <vector>

#include "core/maintenance.h"
#include "exec/operator_stats.h"
#include "obs/export_json.h"
#include "relational/operators.h"
#include "relational/packed_key.h"
#include "relational/table.h"

namespace sdelta::bench {
namespace {

std::vector<obs::Json>& KeyEntries() {
  static auto* entries = new std::vector<obs::Json>();
  return *entries;
}

void AddKeyEntry(const std::string& kase, size_t rows, double mean_seconds,
                 size_t groups, const exec::OperatorStats& stats) {
  const uint64_t keyed = stats.key_packed_rows + stats.key_fallback_rows;
  obs::Json e = obs::Json::Object();
  e.Set("case", obs::Json::Str(kase));
  e.Set("rows", obs::Json::Int(static_cast<int64_t>(rows)));
  e.Set("ms", obs::Json::Double(mean_seconds * 1e3));
  e.Set("groups", obs::Json::Int(static_cast<int64_t>(groups)));
  e.Set("packed_ratio",
        obs::Json::Double(keyed == 0 ? 0.0
                                     : static_cast<double>(
                                           stats.key_packed_rows) /
                                           static_cast<double>(keyed)));
  e.Set("probe_len_mean",
        obs::Json::Double(stats.key_probe_ops == 0
                              ? 0.0
                              : static_cast<double>(stats.key_probe_steps) /
                                    static_cast<double>(stats.key_probe_ops)));
  KeyEntries().push_back(std::move(e));
}

/// A retail-shaped synthetic fact table: dense int dimension keys, the
/// exact key distribution the paper's §6 configuration produces.
rel::Table MakeFact(size_t rows) {
  rel::Schema s;
  s.AddColumn("storeID", rel::ValueType::kInt64);
  s.AddColumn("itemID", rel::ValueType::kInt64);
  s.AddColumn("date", rel::ValueType::kInt64);
  s.AddColumn("qty", rel::ValueType::kInt64);
  rel::Table t(s, "fact");
  t.Reserve(rows);
  uint64_t x = 0x2545F4914F6CDD1DULL;
  for (size_t i = 0; i < rows; ++i) {
    // xorshift64*: cheap, deterministic, and key-collision-rich.
    x ^= x >> 12;
    x ^= x << 25;
    x ^= x >> 27;
    const uint64_t r = x * 0x2545F4914F6CDD1DULL;
    t.Insert({rel::Value::Int64(static_cast<int64_t>(r % 100)),
              rel::Value::Int64(static_cast<int64_t>((r >> 8) % 1000)),
              rel::Value::Int64(static_cast<int64_t>((r >> 24) % 365)),
              rel::Value::Int64(static_cast<int64_t>(r % 7) + 1)});
  }
  return t;
}

rel::Table MakeItemsDim() {
  rel::Schema s;
  s.AddColumn("itemID", rel::ValueType::kInt64);
  s.AddColumn("category", rel::ValueType::kInt64);
  rel::Table t(s, "items");
  t.Reserve(1000);
  for (int64_t i = 0; i < 1000; ++i) {
    t.Insert({rel::Value::Int64(i), rel::Value::Int64(i % 20)});
  }
  return t;
}

/// RAII wrapper: the boxed series flips the global toggle off only for
/// the duration of its iterations.
class ScopedPackedKeys {
 public:
  explicit ScopedPackedKeys(bool enabled) { rel::SetPackedKeysEnabled(enabled); }
  ~ScopedPackedKeys() { rel::SetPackedKeysEnabled(true); }
};

void RunGroupBy(benchmark::State& state, bool packed) {
  const size_t rows = static_cast<size_t>(state.range(0));
  const rel::Table fact = MakeFact(rows);
  ScopedPackedKeys toggle(packed);
  exec::OperatorStats stats;
  size_t groups = 0;
  double total = 0;
  size_t runs = 0;
  for (auto _ : state) {
    core::Stopwatch sw;
    rel::Table out = rel::GroupBy(
        fact, rel::GroupCols({"storeID", "itemID", "date"}),
        {rel::CountStar("TotalCount"),
         rel::Sum(rel::Expression::Column("qty"), "TotalQuantity")},
        nullptr, &stats);
    const double s = sw.ElapsedSeconds();
    state.SetIterationTime(s);
    total += s;
    ++runs;
    groups = out.NumRows();
    benchmark::DoNotOptimize(out.NumRows());
  }
  state.counters["groups"] = static_cast<double>(groups);
  AddKeyEntry(packed ? "groupby_packed" : "groupby_boxed", rows,
              total / static_cast<double>(runs), groups, stats);
}

void RunJoin(benchmark::State& state, bool packed) {
  const size_t rows = static_cast<size_t>(state.range(0));
  const rel::Table fact = MakeFact(rows);
  const rel::Table items = MakeItemsDim();
  ScopedPackedKeys toggle(packed);
  exec::OperatorStats stats;
  size_t matched = 0;
  double total = 0;
  size_t runs = 0;
  for (auto _ : state) {
    core::Stopwatch sw;
    rel::Table out =
        rel::HashJoin(fact, items, {{"itemID", "itemID"}}, "items",
                      /*drop_right_keys=*/true, nullptr, &stats);
    const double s = sw.ElapsedSeconds();
    state.SetIterationTime(s);
    total += s;
    ++runs;
    matched = out.NumRows();
    benchmark::DoNotOptimize(out.NumRows());
  }
  state.counters["matched"] = static_cast<double>(matched);
  AddKeyEntry(packed ? "join_packed" : "join_boxed", rows,
              total / static_cast<double>(runs), matched, stats);
}

void BM_GroupByPacked(benchmark::State& state) { RunGroupBy(state, true); }
void BM_GroupByBoxed(benchmark::State& state) { RunGroupBy(state, false); }
void BM_JoinPacked(benchmark::State& state) { RunJoin(state, true); }
void BM_JoinBoxed(benchmark::State& state) { RunJoin(state, false); }

BENCHMARK(BM_GroupByPacked)
    ->Arg(200000)
    ->UseManualTime()
    ->Unit(benchmark::kMillisecond)
    ->Iterations(5);
BENCHMARK(BM_GroupByBoxed)
    ->Arg(200000)
    ->UseManualTime()
    ->Unit(benchmark::kMillisecond)
    ->Iterations(5);
BENCHMARK(BM_JoinPacked)
    ->Arg(200000)
    ->UseManualTime()
    ->Unit(benchmark::kMillisecond)
    ->Iterations(5);
BENCHMARK(BM_JoinBoxed)
    ->Arg(200000)
    ->UseManualTime()
    ->Unit(benchmark::kMillisecond)
    ->Iterations(5);

}  // namespace
}  // namespace sdelta::bench

int main(int argc, char** argv) {
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  sdelta::obs::MergeBenchJson("BENCH_keys.json", "keys", {"case", "rows"},
                              sdelta::bench::KeyEntries());
  benchmark::Shutdown();
  return 0;
}
