// Ablation (paper §5.5): the value of the D-lattice as the number of
// maintained summary tables grows.
//
// A family of generalized cube views over the retail schema is
// maintained with (a) lattice propagation — children derived from
// parent summary-deltas — and (b) direct propagation from the base
// changes. The paper's claim: the lattice benefit grows with the number
// of views (and with change-set size).
#include <benchmark/benchmark.h>

#include <string>
#include <thread>
#include <vector>

#include "bench_common.h"
#include "core/maintenance.h"
#include "lattice/plan.h"
#include "lattice/vlattice.h"
#include "obs/export_json.h"

namespace sdelta::bench {
namespace {

/// One BENCH_lattice.json entry per (series, family size) cell.
std::vector<obs::Json>& LatticeEntries() {
  static auto* entries = new std::vector<obs::Json>();
  return *entries;
}

void AddLatticeEntry(const std::string& series, size_t num_views,
                     double mean_seconds, size_t from_base) {
  obs::Json e = obs::Json::Object();
  e.Set("series", obs::Json::Str(series));
  e.Set("num_views", obs::Json::Int(static_cast<int64_t>(num_views)));
  e.Set("threads", obs::Json::Int(1));  // this ablation is serial
  e.Set("host_cpus", obs::Json::Int(static_cast<int64_t>(
                         std::thread::hardware_concurrency())));
  e.Set("ms", obs::Json::Double(mean_seconds * 1e3));
  e.Set("views_from_base", obs::Json::Int(static_cast<int64_t>(from_base)));
  LatticeEntries().push_back(std::move(e));
}

constexpr size_t kPosRows = 200000;
constexpr size_t kChangeSize = 10000;

/// A widening family of views: the four paper views plus further points
/// of the Figure 5 combined lattice.
std::vector<core::ViewDef> ViewFamily(size_t count) {
  using rel::Expression;
  std::vector<core::ViewDef> all = warehouse::RetailSummaryTables();

  auto add = [&all](const std::string& name,
                    std::vector<core::DimensionJoin> joins,
                    std::vector<std::string> group_by) {
    core::ViewDef v;
    v.name = name;
    v.fact_table = "pos";
    v.joins = std::move(joins);
    v.group_by = std::move(group_by);
    v.aggregates = {rel::CountStar("TotalCount"),
                    rel::Sum(Expression::Column("qty"), "TotalQuantity")};
    all.push_back(std::move(v));
  };
  add("SI_sales", {}, {"storeID", "itemID"});
  add("SD_sales", {}, {"storeID", "date"});
  add("ID_sales", {}, {"itemID", "date"});
  add("iCD_sales", {{"items", "itemID", "itemID"}}, {"category", "date"});
  add("sC_sales", {{"stores", "storeID", "storeID"}}, {"city"});
  add("S_sales", {}, {"storeID"});
  add("I_sales", {}, {"itemID"});
  add("D_sales", {}, {"date"});
  if (count > all.size()) count = all.size();
  all.resize(count);
  return all;
}

void RunFamily(benchmark::State& state, bool use_lattice) {
  const size_t num_views = static_cast<size_t>(state.range(0));
  static rel::Catalog* catalog = new rel::Catalog(
      warehouse::MakeRetailCatalog(PaperConfig(kPosRows)));

  std::vector<core::ViewDef> friendly =
      lattice::MakeLatticeFriendly(*catalog, ViewFamily(num_views));
  std::vector<core::AugmentedView> augmented;
  for (const core::ViewDef& v : friendly) {
    augmented.push_back(core::AugmentForSelfMaintenance(*catalog, v));
  }
  lattice::VLattice vlattice =
      lattice::BuildVLattice(*catalog, std::move(augmented));
  lattice::MaintenancePlan plan = lattice::ChoosePlan(
      *catalog, vlattice, lattice::PlanOptions{use_lattice});

  const core::ChangeSet changes =
      MakeChanges(*catalog, ChangeClass::kUpdate, kChangeSize, 9);
  size_t from_base = 0;
  for (const lattice::PlanStep& s : plan.steps) {
    from_base += s.edge.has_value() ? 0 : 1;
  }
  double total = 0;
  size_t runs = 0;
  for (auto _ : state) {
    core::Stopwatch sw;
    lattice::LatticePropagateResult result =
        lattice::PropagateAll(*catalog, vlattice, plan, changes);
    const double s = sw.ElapsedSeconds();
    state.SetIterationTime(s);
    total += s;
    ++runs;
    benchmark::DoNotOptimize(result.deltas.data());
  }
  state.counters["views_from_base"] = static_cast<double>(from_base);
  AddLatticeEntry(use_lattice ? "lattice" : "direct", num_views,
                  total / static_cast<double>(runs), from_base);
}

void BM_PropagateLattice(benchmark::State& state) {
  RunFamily(state, true);
}
void BM_PropagateDirect(benchmark::State& state) {
  RunFamily(state, false);
}

BENCHMARK(BM_PropagateLattice)
    ->DenseRange(4, 12, 4)
    ->UseManualTime()
    ->Unit(benchmark::kMillisecond)
    ->Iterations(3);
BENCHMARK(BM_PropagateDirect)
    ->DenseRange(4, 12, 4)
    ->UseManualTime()
    ->Unit(benchmark::kMillisecond)
    ->Iterations(3);

}  // namespace
}  // namespace sdelta::bench

int main(int argc, char** argv) {
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  sdelta::obs::MergeBenchJson("BENCH_lattice.json", "lattice_plans",
                              {"series", "num_views"},
                              sdelta::bench::LatticeEntries());
  benchmark::Shutdown();
  return 0;
}
