// Ablation (paper §4.2): MIN/MAX recomputation strategy in refresh.
//
// MIN/MAX are not self-maintainable under deletions; when a deletion
// ties or beats a group's extremum, the group must be recomputed from
// base data. This bench compares:
//   * Batched   — collect all affected groups, recompute them in ONE
//                 scan of the base data (our default);
//   * PerGroup  — scan the base data once per affected group (the
//                 naive reading of Figure 7).
// The gap grows with the number of affected groups per batch.
#include <benchmark/benchmark.h>

#include "bench_common.h"
#include "core/maintenance.h"
#include "obs/metrics.h"

namespace sdelta::bench {
namespace {

constexpr size_t kPosRows = 100000;

/// Shared metrics sink for every cached warehouse in this binary; the
/// bench reads per-iteration counter deltas off it. Leaked so it
/// outlives the cache.
obs::MetricsRegistry& Registry() {
  static auto* registry = new obs::MetricsRegistry();
  return *registry;
}

void RunMinMaxBench(benchmark::State& state, bool batched,
                    bool trust_untainted = true) {
  warehouse::Warehouse::Options options;
  options.refresh.batch_minmax_recompute = batched;
  options.refresh.trust_untainted_minmax = trust_untainted;
  options.metrics = &Registry();
  warehouse::Warehouse& wh = WarehouseCache::Instance().Get(
      kPosRows, options,
      std::string(batched ? "batched" : "pergroup") +
          (trust_untainted ? "" : "-paper"));
  uint64_t seed = 300;
  double scan_rows = 0;
  double recomputed = 0;
  size_t runs = 0;
  const uint64_t minmax0 = Registry().counter("refresh.minmax_recomputes");
  for (auto _ : state) {
    // Update-generating changes: deletions regularly hit group minima of
    // SiC_sales(MIN(date)).
    const core::ChangeSet changes = MakeChanges(
        wh.catalog(), ChangeClass::kUpdate,
        static_cast<size_t>(state.range(0)), ++seed);
    warehouse::BatchReport report = wh.RunBatch(changes);
    state.SetIterationTime(report.refresh_seconds);
    const core::RefreshStats total = report.TotalRefresh();
    scan_rows += static_cast<double>(total.recompute_scan_rows);
    recomputed += static_cast<double>(total.recomputed_groups);
    ++runs;
  }
  state.counters["recomputed_groups"] = recomputed / runs;
  state.counters["base_rows_scanned"] = scan_rows / runs;
  state.counters["minmax_recomputes"] =
      static_cast<double>(Registry().counter("refresh.minmax_recomputes") -
                          minmax0) /
      static_cast<double>(runs);
}

void BM_MinMaxBatchedRecompute(benchmark::State& state) {
  RunMinMaxBench(state, true);
}
void BM_MinMaxPerGroupRecompute(benchmark::State& state) {
  RunMinMaxBench(state, false);
}
// Figure 7 verbatim: every extremum tie/beat recomputes, even for
// insert-only groups (trust_untainted_minmax = false).
void BM_MinMaxPaperConservative(benchmark::State& state) {
  RunMinMaxBench(state, true, /*trust_untainted=*/false);
}

// Backfill workload: insert-only historical rows beating every touched
// group's MIN(date). The taint optimization eliminates the base scan
// entirely; Figure 7 verbatim rescans for every touched group.
void RunBackfill(benchmark::State& state, bool trust_untainted) {
  warehouse::Warehouse::Options options;
  options.refresh.trust_untainted_minmax = trust_untainted;
  options.metrics = &Registry();
  warehouse::Warehouse& wh = WarehouseCache::Instance().Get(
      kPosRows, options,
      trust_untainted ? "backfill-trust" : "backfill-paper");
  uint64_t seed = 900;
  double scan_rows = 0;
  size_t runs = 0;
  for (auto _ : state) {
    warehouse::BatchReport report = wh.RunBatch(
        warehouse::MakeBackfillChanges(
            wh.catalog(), static_cast<size_t>(state.range(0)), ++seed));
    state.SetIterationTime(report.refresh_seconds);
    scan_rows +=
        static_cast<double>(report.TotalRefresh().recompute_scan_rows);
    ++runs;
  }
  state.counters["base_rows_scanned"] = scan_rows / runs;
}

void BM_BackfillTrustUntainted(benchmark::State& state) {
  RunBackfill(state, true);
}
void BM_BackfillPaperConservative(benchmark::State& state) {
  RunBackfill(state, false);
}

BENCHMARK(BM_MinMaxBatchedRecompute)
    ->RangeMultiplier(4)
    ->Range(1000, 16000)
    ->UseManualTime()
    ->Unit(benchmark::kMillisecond)
    ->Iterations(2);
BENCHMARK(BM_MinMaxPerGroupRecompute)
    ->RangeMultiplier(4)
    ->Range(1000, 16000)
    ->UseManualTime()
    ->Unit(benchmark::kMillisecond)
    ->Iterations(2);
BENCHMARK(BM_MinMaxPaperConservative)
    ->RangeMultiplier(4)
    ->Range(1000, 16000)
    ->UseManualTime()
    ->Unit(benchmark::kMillisecond)
    ->Iterations(2);
BENCHMARK(BM_BackfillTrustUntainted)
    ->RangeMultiplier(4)
    ->Range(1000, 16000)
    ->UseManualTime()
    ->Unit(benchmark::kMillisecond)
    ->Iterations(2);
BENCHMARK(BM_BackfillPaperConservative)
    ->RangeMultiplier(4)
    ->Range(1000, 16000)
    ->UseManualTime()
    ->Unit(benchmark::kMillisecond)
    ->Iterations(2);

}  // namespace
}  // namespace sdelta::bench

BENCHMARK_MAIN();
