// Microbench for the columnar storage layer: vectorized operators over
// typed column vectors versus the legacy row-at-a-time path (ValueAt /
// RowAt materialization per cell), on the retail-shaped tables the
// propagate and refresh hot loops actually see.
//
// Cases (each at 200k rows, vectorized vs rowpath):
//   select_*   - filter qty >= 4 (~4/7 selectivity). Vectorized runs
//       rel::Select (per-morsel selection vectors + columnar gather);
//       the row path materializes each row and re-Inserts survivors.
//   sum_*      - GroupBy(storeID, itemID) with SUM(qty) + COUNT(*).
//       Vectorized runs rel::GroupBy (packed keys + typed aggregate
//       inputs); the row path reproduces the pre-columnar operator
//       shape — materialize each row, extract a boxed GroupKey, probe
//       an unordered_map, aggregate through Value boxes.
//
// Both paths must agree exactly: `selected`/`groups`/`checksum` are
// emitted per entry and gated exact by the CI bench gate, so a
// vectorization bug that changes results fails the gate, not just the
// clock. Writes BENCH_columnar.json entries
// {case, rows, ms, selected|groups, checksum}.
#include <benchmark/benchmark.h>

#include <cstdint>
#include <string>
#include <unordered_map>
#include <vector>

#include "core/maintenance.h"
#include "obs/export_json.h"
#include "relational/operators.h"
#include "relational/table.h"

namespace sdelta::bench {
namespace {

std::vector<obs::Json>& ColumnarEntries() {
  static auto* entries = new std::vector<obs::Json>();
  return *entries;
}

void AddEntry(const std::string& kase, size_t rows, double mean_seconds,
              const char* count_name, size_t count, int64_t checksum) {
  obs::Json e = obs::Json::Object();
  e.Set("case", obs::Json::Str(kase));
  e.Set("rows", obs::Json::Int(static_cast<int64_t>(rows)));
  e.Set("ms", obs::Json::Double(mean_seconds * 1e3));
  e.Set(count_name, obs::Json::Int(static_cast<int64_t>(count)));
  e.Set("checksum", obs::Json::Int(checksum));
  ColumnarEntries().push_back(std::move(e));
}

/// Same retail-shaped synthetic fact table as bench_keys: dense int
/// dimension keys, deterministic xorshift64* stream.
rel::Table MakeFact(size_t rows) {
  rel::Schema s;
  s.AddColumn("storeID", rel::ValueType::kInt64);
  s.AddColumn("itemID", rel::ValueType::kInt64);
  s.AddColumn("date", rel::ValueType::kInt64);
  s.AddColumn("qty", rel::ValueType::kInt64);
  rel::Table t(s, "fact");
  t.Reserve(rows);
  uint64_t x = 0x2545F4914F6CDD1DULL;
  for (size_t i = 0; i < rows; ++i) {
    x ^= x >> 12;
    x ^= x << 25;
    x ^= x >> 27;
    const uint64_t r = x * 0x2545F4914F6CDD1DULL;
    t.Insert({rel::Value::Int64(static_cast<int64_t>(r % 100)),
              rel::Value::Int64(static_cast<int64_t>((r >> 8) % 1000)),
              rel::Value::Int64(static_cast<int64_t>((r >> 24) % 365)),
              rel::Value::Int64(static_cast<int64_t>(r % 7) + 1)});
  }
  return t;
}

/// Order-independent content checksum over the qty column — both paths
/// must produce the same multiset of rows.
int64_t QtyChecksum(const rel::Table& t, size_t qty_col) {
  int64_t sum = 0;
  for (size_t r = 0; r < t.NumRows(); ++r) {
    sum += t.ValueAt(r, qty_col).as_int64();
  }
  return sum;
}

void RunSelect(benchmark::State& state, bool vectorized) {
  const size_t rows = static_cast<size_t>(state.range(0));
  const rel::Table fact = MakeFact(rows);
  const rel::Expression pred =
      rel::Expression::Ge(rel::Expression::Column("qty"),
                          rel::Expression::Literal(rel::Value::Int64(4)));
  size_t selected = 0;
  int64_t checksum = 0;
  double total = 0;
  size_t runs = 0;
  for (auto _ : state) {
    core::Stopwatch sw;
    rel::Table out(fact.schema());
    if (vectorized) {
      out = rel::Select(fact, pred);
    } else {
      // Legacy shape: materialize each row, test, re-insert survivors.
      for (size_t r = 0; r < fact.NumRows(); ++r) {
        rel::Row row = fact.RowAt(r);
        if (row[3].as_int64() >= 4) out.Insert(std::move(row));
      }
    }
    const double s = sw.ElapsedSeconds();
    state.SetIterationTime(s);
    total += s;
    ++runs;
    selected = out.NumRows();
    checksum = QtyChecksum(out, 3);
    benchmark::DoNotOptimize(out.NumRows());
  }
  state.counters["selected"] = static_cast<double>(selected);
  AddEntry(vectorized ? "select_vectorized" : "select_rowpath", rows,
           total / static_cast<double>(runs), "selected", selected, checksum);
}

void RunSum(benchmark::State& state, bool vectorized) {
  const size_t rows = static_cast<size_t>(state.range(0));
  const rel::Table fact = MakeFact(rows);
  size_t groups = 0;
  int64_t checksum = 0;
  double total = 0;
  size_t runs = 0;
  for (auto _ : state) {
    core::Stopwatch sw;
    double s = 0;
    if (vectorized) {
      rel::Table out = rel::GroupBy(
          fact, rel::GroupCols({"storeID", "itemID"}),
          {rel::CountStar("TotalCount"),
           rel::Sum(rel::Expression::Column("qty"), "TotalQuantity")});
      s = sw.ElapsedSeconds();
      groups = out.NumRows();
      checksum = QtyChecksum(out, 3);
    } else {
      // Legacy shape — what GroupBy did before the columnar refactor:
      // materialize each row, box its key columns into a GroupKey, probe
      // a GroupKey-keyed map, and aggregate through Value boxes.
      const std::vector<size_t> key_idx = {0, 1};
      std::unordered_map<rel::GroupKey, std::pair<rel::Value, rel::Value>,
                         rel::GroupKeyHash>
          agg;
      for (size_t r = 0; r < fact.NumRows(); ++r) {
        const rel::Row row = fact.RowAt(r);
        auto [it, inserted] = agg.try_emplace(
            rel::ExtractKey(row, key_idx),
            std::make_pair(rel::Value::Int64(0), rel::Value::Int64(0)));
        it->second.first = rel::Value::Int64(it->second.first.as_int64() + 1);
        it->second.second =
            rel::Value::Int64(it->second.second.as_int64() + row[3].as_int64());
      }
      s = sw.ElapsedSeconds();
      groups = agg.size();
      checksum = 0;
      for (const auto& [k, v] : agg) checksum += v.second.as_int64();
      benchmark::DoNotOptimize(agg.size());
    }
    state.SetIterationTime(s);
    total += s;
    ++runs;
  }
  state.counters["groups"] = static_cast<double>(groups);
  AddEntry(vectorized ? "sum_vectorized" : "sum_rowpath", rows,
           total / static_cast<double>(runs), "groups", groups, checksum);
}

void BM_SelectVectorized(benchmark::State& state) { RunSelect(state, true); }
void BM_SelectRowPath(benchmark::State& state) { RunSelect(state, false); }
void BM_SumVectorized(benchmark::State& state) { RunSum(state, true); }
void BM_SumRowPath(benchmark::State& state) { RunSum(state, false); }

BENCHMARK(BM_SelectVectorized)
    ->Arg(200000)
    ->UseManualTime()
    ->Unit(benchmark::kMillisecond)
    ->Iterations(5);
BENCHMARK(BM_SelectRowPath)
    ->Arg(200000)
    ->UseManualTime()
    ->Unit(benchmark::kMillisecond)
    ->Iterations(5);
BENCHMARK(BM_SumVectorized)
    ->Arg(200000)
    ->UseManualTime()
    ->Unit(benchmark::kMillisecond)
    ->Iterations(5);
BENCHMARK(BM_SumRowPath)
    ->Arg(200000)
    ->UseManualTime()
    ->Unit(benchmark::kMillisecond)
    ->Iterations(5);

}  // namespace
}  // namespace sdelta::bench

int main(int argc, char** argv) {
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  sdelta::obs::MergeBenchJson("BENCH_columnar.json", "columnar",
                              {"case", "rows"},
                              sdelta::bench::ColumnarEntries());
  benchmark::Shutdown();
  return 0;
}
