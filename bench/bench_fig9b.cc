// Figure 9(b): elapsed time vs |pos| (100k..500k) at a fixed 10k-row
// change set, for UPDATE-GENERATING changes.
//
// Expected shape (paper §6): propagate time is virtually independent of
// |pos|; rematerialization grows linearly with |pos|; refresh gets
// slightly cheaper as |pos| grows (fewer group deletions).
#include <benchmark/benchmark.h>

#include "bench_fig9.h"

int main(int argc, char** argv) {
  sdelta::bench::RegisterFig9("b", /*sweep_changes=*/false,
                              sdelta::bench::ChangeClass::kUpdate);
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  sdelta::bench::WriteFig9Json();
  benchmark::Shutdown();
  return 0;
}
