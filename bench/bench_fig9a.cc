// Figure 9(a): elapsed time vs change-set size (1k..10k) at |pos| =
// 500k, for UPDATE-GENERATING changes (equal insertions and deletions
// over existing store/item/date values).
//
// Expected shape (paper §6): summary-delta maintenance beats
// rematerialization by roughly an order of magnitude; lattice-based
// propagate beats direct propagate, with the gap widening as the change
// set grows.
#include <benchmark/benchmark.h>

#include "bench_fig9.h"

int main(int argc, char** argv) {
  sdelta::bench::RegisterFig9("a", /*sweep_changes=*/true,
                              sdelta::bench::ChangeClass::kUpdate);
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  sdelta::bench::WriteFig9Json();
  benchmark::Shutdown();
  return 0;
}
