// Parallel-engine scaling: propagate and batch-refresh times at
// num_threads = 1, 2, 4, 8 on the paper's retail configuration, with
// speedups relative to the serial engine. Results merge into
// BENCH_parallel.json.
//
// Each entry records host_cpus (std::thread::hardware_concurrency) —
// speedups are only meaningful up to that bound; on a single-core
// container every thread count measures the same core plus scheduling
// overhead, and the recorded speedup will honestly hover around 1×.
#include <cstdint>
#include <cstdio>
#include <string>
#include <thread>
#include <vector>

#include "bench_common.h"
#include "core/maintenance.h"
#include "obs/export_json.h"

namespace sdelta::bench {
namespace {

constexpr size_t kPosRows = 200000;
constexpr size_t kChangeRows = 10000;
constexpr int kReps = 3;

struct Measurement {
  size_t threads = 1;
  double propagate_seconds = 0;  // mean over kReps
  double refresh_seconds = 0;    // mean over kReps RunBatch windows
  size_t delta_rows = 0;
};

Measurement MeasureAt(size_t threads, ChangeClass cls) {
  Measurement m;
  m.threads = threads;
  warehouse::Warehouse::Options options;
  options.num_threads = threads;
  const std::string tag =
      (cls == ChangeClass::kUpdate ? "scale_u/t" : "scale_i/t") +
      std::to_string(threads);
  warehouse::Warehouse& wh =
      WarehouseCache::Instance().Get(kPosRows, options, tag);

  // Propagate-only: same change set every rep (read-only, comparable
  // across thread counts).
  const core::ChangeSet changes =
      MakeChanges(wh.catalog(), cls, kChangeRows, 7);
  core::PropagateStats stats;
  wh.PropagateOnly(changes, &stats);  // warm-up
  for (int rep = 0; rep < kReps; ++rep) {
    m.propagate_seconds += wh.PropagateOnly(changes, &stats) / kReps;
  }
  m.delta_rows = stats.delta_groups;

  // Full batches mutate the warehouse; fresh seeds per rep, identical
  // across thread counts because the warehouses evolve in lockstep.
  for (int rep = 0; rep < kReps; ++rep) {
    const core::ChangeSet batch = MakeChanges(
        wh.catalog(), cls, kChangeRows, 100 + static_cast<uint64_t>(rep));
    m.refresh_seconds += wh.RunBatch(batch).refresh_seconds / kReps;
  }
  return m;
}

void Run(ChangeClass cls, const char* workload, std::vector<obs::Json>* out) {
  const std::vector<size_t> thread_counts = {1, 2, 4, 8};
  std::vector<Measurement> results;
  for (size_t t : thread_counts) {
    results.push_back(MeasureAt(t, cls));
    const Measurement& m = results.back();
    std::printf("%-10s t=%zu  propagate %8.2f ms  refresh %8.2f ms\n",
                workload, m.threads, 1e3 * m.propagate_seconds,
                1e3 * m.refresh_seconds);
  }
  const double base_propagate = results.front().propagate_seconds;
  const double base_refresh = results.front().refresh_seconds;
  const int64_t host_cpus =
      static_cast<int64_t>(std::thread::hardware_concurrency());
  for (const Measurement& m : results) {
    obs::Json e = obs::Json::Object();
    e.Set("workload", obs::Json::Str(workload));
    e.Set("threads", obs::Json::Int(static_cast<int64_t>(m.threads)));
    e.Set("pos_rows", obs::Json::Int(static_cast<int64_t>(kPosRows)));
    e.Set("change_rows", obs::Json::Int(static_cast<int64_t>(kChangeRows)));
    e.Set("propagate_ms", obs::Json::Double(1e3 * m.propagate_seconds));
    e.Set("refresh_ms", obs::Json::Double(1e3 * m.refresh_seconds));
    e.Set("propagate_speedup",
          obs::Json::Double(m.propagate_seconds > 0
                                ? base_propagate / m.propagate_seconds
                                : 0));
    e.Set("refresh_speedup",
          obs::Json::Double(m.refresh_seconds > 0
                                ? base_refresh / m.refresh_seconds
                                : 0));
    e.Set("delta_rows", obs::Json::Int(static_cast<int64_t>(m.delta_rows)));
    e.Set("host_cpus", obs::Json::Int(host_cpus));
    // Speedup gating flag: on a single-core host every thread count
    // shares one core and the recorded speedups hover around 1x, so
    // bench_compare only checks them when both runs had real cores.
    e.Set("scaling_meaningful", obs::Json::Bool(host_cpus > 1));
    out->push_back(std::move(e));
  }
}

}  // namespace
}  // namespace sdelta::bench

int main() {
  using namespace sdelta::bench;
  std::vector<sdelta::obs::Json> entries;
  Run(ChangeClass::kUpdate, "update", &entries);
  Run(ChangeClass::kInsertion, "insertion", &entries);
  sdelta::obs::MergeBenchJson("BENCH_parallel.json", "parallel_scaling",
                              {"workload", "threads", "pos_rows",
                               "change_rows"},
                              entries);
  std::printf("wrote BENCH_parallel.json (host_cpus=%u)\n",
              std::thread::hardware_concurrency());
  return 0;
}
