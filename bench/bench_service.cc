// Service-runtime availability bench (EXPERIMENTS.md): how much reader
// throughput does background maintenance cost, and how long is the
// batch window during which it could cost anything?
//
// Cases (keyed by {case, readers}):
//   readers_idle              - N reader threads hammer snapshot
//       queries against a quiescent service; each runs a fixed query
//       count, so the workload is deterministic and QPS is the only
//       timing output.
//   readers_with_maintenance  - the same readers run concurrently with
//       a producer appending a fixed trajectory of insertion change
//       sets through the WAL + auto-batching maintenance loop. The
//       service's refresh-window histogram (the epoch-install swap,
//       i.e. the paper's batch window as experienced by readers) is
//       reported alongside.
//   readers_with_scraping     - readers_with_maintenance plus a scraper
//       thread hammering the embedded HTTP endpoint's /metrics route
//       over a real socket for the whole run: the observability tax.
//       Gated by the same reader-p99 tolerance as the maintenance case.
//   readers_profiler_on       - readers_with_maintenance with the whole
//       historical layer enabled (span profiler, per-batch time-series
//       snapshots, anomaly checks). Emits p99_overhead_ratio (reader
//       p99 vs the plain maintenance run), gated at baseline 1.0 with
//       5% tolerance: the committed proof the diagnostics stay off the
//       read path.
//   readers_on_replica        - the writer runs the same maintenance
//       trajectory while shipping epochs; the reader threads query N
//       caught-up read replicas (keyed by {case, replicas} for N = 1
//       and 2) instead of the writer. Aggregate reader QPS across the
//       fleet is the scale-out payoff; appended counts stay exact and
//       every replica must converge to the writer's final epoch or the
//       bench aborts.
//
// Writes BENCH_service.json entries for the CI bench gate:
// appended_changesets / appended_rows are exact (the trajectory is
// deterministic; a mismatch means the ingest path dropped or split
// work), refresh_window_ms_mean / refresh_window_ms_p99 are
// tolerance-gated timings, qps and the batching-dependent counts are
// recorded but ignored by the gate (QPS is higher-is-better, so a
// one-sided upper gate would point the wrong way).
#include <atomic>
#include <cstdint>
#include <cstdio>
#include <filesystem>
#include <string>
#include <thread>
#include <vector>

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include "bench_common.h"
#include "core/maintenance.h"
#include "obs/export_json.h"
#include "obs/metrics.h"
#include "replica/replica.h"
#include "replica/transport.h"
#include "service/service.h"
#include "warehouse/workload.h"

namespace sdelta::bench {
namespace {

namespace fs = std::filesystem;

constexpr size_t kPosRows = 50000;
constexpr size_t kReaderThreads = 4;
constexpr size_t kQueriesPerIdleReader = 400;
constexpr size_t kChangeSets = 120;
constexpr size_t kRowsPerChangeSet = 64;

constexpr char kRegionQuery[] =
    "SELECT region, SUM(qty) AS q FROM pos, stores "
    "WHERE pos.storeID = stores.storeID GROUP BY region";
constexpr char kCategoryQuery[] =
    "SELECT category, SUM(qty) AS q FROM pos, items "
    "WHERE pos.itemID = items.itemID GROUP BY category";

std::vector<obs::Json>& ServiceEntries() {
  static auto* entries = new std::vector<obs::Json>();
  return *entries;
}

struct RunResult {
  double seconds = 0;
  uint64_t queries = 0;
  uint64_t appended_changesets = 0;
  uint64_t appended_rows = 0;
  obs::Histogram query_latency;
  obs::Histogram refresh_window;
  uint64_t batches = 0;
  uint64_t epochs = 0;
  uint64_t scrapes = 0;
};

std::unique_ptr<service::WarehouseService> OpenService(
    const fs::path& dir, bool with_http = false, bool with_profiler = false) {
  service::WarehouseService::Options options;
  options.auto_batching = true;
  options.queue.max_batch_rows = 512;
  options.queue.max_batch_delay_seconds = 0.005;
  if (with_http) options.http_port = 0;  // ephemeral loopback port
  if (with_profiler) {
    // The whole historical layer (DESIGN.md §13): per-batch time-series
    // snapshots, maintenance-path profiling, and anomaly checks with
    // default rules. Steady-state reader overhead is gated below.
    options.profile = true;
    options.anomaly.enabled = true;
  }
  return service::WarehouseService::Open(
      dir.string(), warehouse::MakeRetailCatalog(PaperConfig(kPosRows)),
      warehouse::RetailSummaryTables(), options);
}

/// One blocking HTTP/1.0 GET against the service's loopback endpoint;
/// returns true when the response is a 200 with a body.
bool ScrapeOnce(int port, const char* path) {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) return false;
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(static_cast<uint16_t>(port));
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof addr) != 0) {
    ::close(fd);
    return false;
  }
  const std::string request = std::string("GET ") + path + " HTTP/1.0\r\n\r\n";
  if (::send(fd, request.data(), request.size(), 0) !=
      static_cast<ssize_t>(request.size())) {
    ::close(fd);
    return false;
  }
  std::string response;
  char buf[4096];
  ssize_t n = 0;
  while ((n = ::recv(fd, buf, sizeof buf, 0)) > 0) {
    response.append(buf, static_cast<size_t>(n));
  }
  ::close(fd);
  return response.rfind("HTTP/1.0 200", 0) == 0 &&
         response.find("\r\n\r\n") != std::string::npos;
}

/// The scraper: alternates the exporter routes until `stop` flips, so
/// every reader latency sample in the scraping case was taken while
/// the exporter lock traffic was live.
void ScraperLoop(int port, const std::atomic<bool>* stop,
                 uint64_t* scrapes_out) {
  static const char* kRoutes[] = {"/metrics", "/healthz", "/epochs"};
  uint64_t done = 0;
  while (!stop->load(std::memory_order_acquire)) {
    if (!ScrapeOnce(port, kRoutes[done % 3])) {
      std::fprintf(stderr, "bench_service: scrape failed\n");
      std::abort();
    }
    ++done;
  }
  *scrapes_out = done;
}

/// One reader: alternates the two derivable aggregate queries against
/// freshly pinned snapshots until its quota (fixed count, or until
/// `stop` flips for the contention run).
void ReaderLoop(const service::WarehouseService& svc, size_t fixed_queries,
                const std::atomic<bool>* stop, uint64_t* queries_out,
                obs::Histogram* latency_out) {
  uint64_t done = 0;
  obs::Histogram latency;
  while (stop != nullptr ? !stop->load(std::memory_order_acquire)
                         : done < fixed_queries) {
    core::Stopwatch sw;
    const service::ReadSnapshot snap = svc.Snapshot();
    const lattice::AnswerResult a =
        snap.Query(done % 2 == 0 ? kRegionQuery : kCategoryQuery);
    latency.Observe(sw.ElapsedSeconds());
    if (a.rows.NumRows() == 0) {
      std::fprintf(stderr, "bench_service: empty query result\n");
      std::abort();
    }
    ++done;
  }
  *queries_out = done;
  *latency_out = latency;
}

RunResult RunIdle(const fs::path& dir) {
  auto svc = OpenService(dir);
  RunResult r;
  std::vector<uint64_t> counts(kReaderThreads, 0);
  std::vector<obs::Histogram> latencies(kReaderThreads);
  std::vector<std::thread> readers;
  core::Stopwatch sw;
  for (size_t i = 0; i < kReaderThreads; ++i) {
    readers.emplace_back(ReaderLoop, std::cref(*svc), kQueriesPerIdleReader,
                         nullptr, &counts[i], &latencies[i]);
  }
  for (std::thread& t : readers) t.join();
  r.seconds = sw.ElapsedSeconds();
  for (uint64_t c : counts) r.queries += c;
  for (const obs::Histogram& h : latencies) r.query_latency.MergeFrom(h);
  r.epochs = svc->GetStats().epoch;
  svc->Stop();
  return r;
}

RunResult RunWithMaintenance(const fs::path& dir, bool with_scraper = false,
                             bool with_profiler = false) {
  auto svc = OpenService(dir, with_scraper, with_profiler);
  RunResult r;
  std::atomic<bool> stop{false};
  std::vector<uint64_t> counts(kReaderThreads, 0);
  std::vector<obs::Histogram> latencies(kReaderThreads);
  std::vector<std::thread> readers;
  std::thread scraper;
  if (with_scraper) {
    scraper = std::thread(ScraperLoop, svc->http_port(), &stop, &r.scrapes);
  }

  // The producer's mirror catalog evolves in lockstep with the
  // service's warehouse so the workload generator sees current keys.
  rel::Catalog mirror = warehouse::MakeRetailCatalog(PaperConfig(kPosRows));

  core::Stopwatch sw;
  for (size_t i = 0; i < kReaderThreads; ++i) {
    readers.emplace_back(ReaderLoop, std::cref(*svc), size_t{0}, &stop,
                         &counts[i], &latencies[i]);
  }
  for (size_t i = 0; i < kChangeSets; ++i) {
    core::ChangeSet changes = warehouse::MakeInsertionGeneratingChanges(
        mirror, kRowsPerChangeSet, /*seed=*/9000 + i);
    core::ApplyChangeSet(mirror, changes);
    r.appended_rows += changes.fact.insertions.NumRows();
    svc->Append(std::move(changes));
  }
  svc->Flush();
  stop.store(true, std::memory_order_release);
  for (std::thread& t : readers) t.join();
  if (scraper.joinable()) scraper.join();
  r.seconds = sw.ElapsedSeconds();

  for (uint64_t c : counts) r.queries += c;
  for (const obs::Histogram& h : latencies) r.query_latency.MergeFrom(h);
  r.appended_changesets = kChangeSets;
  r.refresh_window = svc->metrics().histogram("service.refresh_window");
  const service::WarehouseService::Stats stats = svc->GetStats();
  r.batches = stats.batches;
  r.epochs = stats.epoch;
  if (stats.applied_seq != kChangeSets) {
    std::fprintf(stderr, "bench_service: applied %llu of %zu change sets\n",
                 static_cast<unsigned long long>(stats.applied_seq),
                 kChangeSets);
    std::abort();
  }
  svc->Stop();
  return r;
}

/// One replica reader: same query mix as ReaderLoop, against the
/// replica's pinned snapshots.
void ReplicaReaderLoop(const replica::ReadReplica& rep,
                       const std::atomic<bool>* stop, uint64_t* queries_out,
                       obs::Histogram* latency_out) {
  uint64_t done = 0;
  obs::Histogram latency;
  while (!stop->load(std::memory_order_acquire)) {
    core::Stopwatch sw;
    const service::ReadSnapshot snap = rep.Snapshot();
    const lattice::AnswerResult a =
        snap.Query(done % 2 == 0 ? kRegionQuery : kCategoryQuery);
    latency.Observe(sw.ElapsedSeconds());
    if (a.rows.NumRows() == 0) {
      std::fprintf(stderr, "bench_service: empty replica query result\n");
      std::abort();
    }
    ++done;
  }
  *queries_out = done;
  *latency_out = latency;
}

/// readers_on_replica: the writer appends the standard trajectory while
/// shipping every installed epoch over a loopback transport; the reader
/// threads are spread round-robin over `num_replicas` replicas, each
/// with a dedicated catch-up thread tailing the stream. Ends with a
/// convergence check: every replica's applied epoch must reach the
/// writer's final epoch.
RunResult RunOnReplicas(const fs::path& dir, size_t num_replicas) {
  replica::LoopbackShipTransport ship;
  service::WarehouseService::Options options;
  options.auto_batching = true;
  options.queue.max_batch_rows = 512;
  options.queue.max_batch_delay_seconds = 0.005;
  options.ship = &ship;
  auto svc = service::WarehouseService::Open(
      (dir / "writer").string(),
      warehouse::MakeRetailCatalog(PaperConfig(kPosRows)),
      warehouse::RetailSummaryTables(), options);

  std::vector<std::unique_ptr<replica::ReadReplica>> replicas;
  for (size_t i = 0; i < num_replicas; ++i) {
    replicas.push_back(replica::ReadReplica::Open(
        (dir / ("replica" + std::to_string(i))).string(),
        warehouse::MakeRetailCatalog(PaperConfig(kPosRows)),
        warehouse::RetailSummaryTables(), &ship));
  }

  RunResult r;
  std::atomic<bool> stop{false};
  std::vector<uint64_t> counts(kReaderThreads, 0);
  std::vector<obs::Histogram> latencies(kReaderThreads);
  std::vector<std::thread> readers;
  std::vector<std::thread> catchups;

  rel::Catalog mirror = warehouse::MakeRetailCatalog(PaperConfig(kPosRows));
  core::Stopwatch sw;
  for (size_t i = 0; i < num_replicas; ++i) {
    catchups.emplace_back([&, i] {
      while (!stop.load(std::memory_order_acquire)) {
        replicas[i]->Catchup();
      }
    });
  }
  for (size_t i = 0; i < kReaderThreads; ++i) {
    readers.emplace_back(ReplicaReaderLoop,
                         std::cref(*replicas[i % num_replicas]), &stop,
                         &counts[i], &latencies[i]);
  }
  for (size_t i = 0; i < kChangeSets; ++i) {
    core::ChangeSet changes = warehouse::MakeInsertionGeneratingChanges(
        mirror, kRowsPerChangeSet, /*seed=*/9000 + i);
    core::ApplyChangeSet(mirror, changes);
    r.appended_rows += changes.fact.insertions.NumRows();
    svc->Append(std::move(changes));
  }
  svc->Flush();
  stop.store(true, std::memory_order_release);
  for (std::thread& t : readers) t.join();
  for (std::thread& t : catchups) t.join();
  r.seconds = sw.ElapsedSeconds();

  for (uint64_t c : counts) r.queries += c;
  for (const obs::Histogram& h : latencies) r.query_latency.MergeFrom(h);
  r.appended_changesets = kChangeSets;
  const service::WarehouseService::Stats stats = svc->GetStats();
  r.batches = stats.batches;
  r.epochs = stats.epoch;
  if (stats.applied_seq != kChangeSets) {
    std::fprintf(stderr, "bench_service: applied %llu of %zu change sets\n",
                 static_cast<unsigned long long>(stats.applied_seq),
                 kChangeSets);
    std::abort();
  }
  svc->Stop();
  // Convergence: one final catch-up pass must land every replica on the
  // writer's last installed epoch.
  for (size_t i = 0; i < num_replicas; ++i) {
    replicas[i]->Catchup();
    if (replicas[i]->applied_epoch() != stats.epoch) {
      std::fprintf(stderr,
                   "bench_service: replica %zu stuck at epoch %llu "
                   "(writer %llu)\n",
                   i,
                   static_cast<unsigned long long>(replicas[i]->applied_epoch()),
                   static_cast<unsigned long long>(stats.epoch));
      std::abort();
    }
  }
  return r;
}

void AddEntry(const std::string& kase, const RunResult& r,
              bool with_windows) {
  obs::Json e = obs::Json::Object();
  e.Set("case", obs::Json::Str(kase));
  e.Set("readers", obs::Json::Int(static_cast<int64_t>(kReaderThreads)));
  e.Set("queries", obs::Json::Int(static_cast<int64_t>(r.queries)));
  e.Set("qps", obs::Json::Double(r.seconds > 0
                                     ? static_cast<double>(r.queries) / r.seconds
                                     : 0));
  e.Set("query_ms_p99", obs::Json::Double(r.query_latency.P99() * 1e3));
  e.Set("appended_changesets",
        obs::Json::Int(static_cast<int64_t>(r.appended_changesets)));
  e.Set("appended_rows", obs::Json::Int(static_cast<int64_t>(r.appended_rows)));
  e.Set("batches", obs::Json::Int(static_cast<int64_t>(r.batches)));
  e.Set("epochs", obs::Json::Int(static_cast<int64_t>(r.epochs)));
  if (with_windows) {
    e.Set("refresh_windows", obs::Json::Int(
                                 static_cast<int64_t>(r.refresh_window.count)));
    e.Set("refresh_window_ms_mean",
          obs::Json::Double(r.refresh_window.Mean() * 1e3));
    e.Set("refresh_window_ms_p99",
          obs::Json::Double(r.refresh_window.P99() * 1e3));
  }
  if (r.scrapes > 0) {
    e.Set("scrapes", obs::Json::Int(static_cast<int64_t>(r.scrapes)));
  }
  ServiceEntries().push_back(std::move(e));
}

int Run() {
  const fs::path root =
      fs::temp_directory_path() /
      ("sdelta_bench_service_" + std::to_string(::getpid()));
  fs::remove_all(root);

  std::printf("bench_service: %zu pos rows, %zu readers\n", kPosRows,
              kReaderThreads);

  const RunResult idle = RunIdle(root / "idle");
  std::printf(
      "  readers_idle:             %8.0f qps, p99 %.3f ms "
      "(%llu queries in %.3fs)\n",
      static_cast<double>(idle.queries) / idle.seconds,
      idle.query_latency.P99() * 1e3,
      static_cast<unsigned long long>(idle.queries), idle.seconds);
  AddEntry("readers_idle", idle, /*with_windows=*/false);

  const RunResult busy = RunWithMaintenance(root / "busy");
  std::printf(
      "  readers_with_maintenance: %8.0f qps, p99 %.3f ms "
      "(%llu queries in %.3fs)\n"
      "    %llu change sets / %llu rows in %llu batches, %llu epochs\n"
      "    refresh window: %llu installs, mean %.2f us, p99 %.2f us\n",
      static_cast<double>(busy.queries) / busy.seconds,
      busy.query_latency.P99() * 1e3,
      static_cast<unsigned long long>(busy.queries), busy.seconds,
      static_cast<unsigned long long>(busy.appended_changesets),
      static_cast<unsigned long long>(busy.appended_rows),
      static_cast<unsigned long long>(busy.batches),
      static_cast<unsigned long long>(busy.epochs),
      static_cast<unsigned long long>(busy.refresh_window.count),
      busy.refresh_window.Mean() * 1e6, busy.refresh_window.P99() * 1e6);
  AddEntry("readers_with_maintenance", busy, /*with_windows=*/true);

  const RunResult scraped =
      RunWithMaintenance(root / "scraped", /*with_scraper=*/true);
  std::printf(
      "  readers_with_scraping:    %8.0f qps, p99 %.3f ms "
      "(%llu queries, %llu scrapes in %.3fs)\n",
      static_cast<double>(scraped.queries) / scraped.seconds,
      scraped.query_latency.P99() * 1e3,
      static_cast<unsigned long long>(scraped.queries),
      static_cast<unsigned long long>(scraped.scrapes), scraped.seconds);
  AddEntry("readers_with_scraping", scraped, /*with_windows=*/true);

  // The historical layer's steady-state tax: same workload as
  // readers_with_maintenance with profiling + time-series + anomaly
  // checks on. All of that work happens on the maintenance thread after
  // the epoch install, so readers should not feel it — the gated
  // p99_overhead_ratio (reader p99 vs the plain maintenance run,
  // baseline 1.0) is the <5% proof the diagnostics stay off the read
  // path.
  const RunResult profiled = RunWithMaintenance(
      root / "profiled", /*with_scraper=*/false, /*with_profiler=*/true);
  const double overhead_ratio =
      busy.query_latency.P99() > 0
          ? profiled.query_latency.P99() / busy.query_latency.P99()
          : 0;
  std::printf(
      "  readers_profiler_on:      %8.0f qps, p99 %.3f ms "
      "(p99 overhead ratio %.3f)\n",
      static_cast<double>(profiled.queries) / profiled.seconds,
      profiled.query_latency.P99() * 1e3, overhead_ratio);
  AddEntry("readers_profiler_on", profiled, /*with_windows=*/true);
  ServiceEntries().back().Set("p99_overhead_ratio",
                              obs::Json::Double(overhead_ratio));

  // Scale-out: the same maintenance trajectory with readers moved off
  // the writer onto 1 and then 2 epoch-shipping replicas.
  for (size_t n : {1u, 2u}) {
    const RunResult on_replica =
        RunOnReplicas(root / ("replicas" + std::to_string(n)), n);
    std::printf(
        "  readers_on_replica (%zu):  %8.0f qps, p99 %.3f ms "
        "(%llu queries in %.3fs)\n",
        n, static_cast<double>(on_replica.queries) / on_replica.seconds,
        on_replica.query_latency.P99() * 1e3,
        static_cast<unsigned long long>(on_replica.queries),
        on_replica.seconds);
    AddEntry("readers_on_replica", on_replica, /*with_windows=*/false);
    ServiceEntries().back().Set("replicas",
                                obs::Json::Int(static_cast<int64_t>(n)));
  }

  fs::remove_all(root);
  obs::MergeBenchJson("BENCH_service.json", "service",
                      {"case", "readers", "replicas"}, ServiceEntries());
  std::printf("wrote BENCH_service.json\n");
  return 0;
}

}  // namespace
}  // namespace sdelta::bench

int main() { return sdelta::bench::Run(); }
