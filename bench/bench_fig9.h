#ifndef SDELTA_BENCH_BENCH_FIG9_H_
#define SDELTA_BENCH_BENCH_FIG9_H_

#include <benchmark/benchmark.h>

#include <string>
#include <thread>
#include <vector>

#include "bench_common.h"
#include "core/maintenance.h"
#include "lattice/plan.h"
#include "obs/export_json.h"

namespace sdelta::bench {

/// Accumulates one BENCH_fig9.json entry per (panel, series, pos-size,
/// change-size) cell as the benchmarks run; WriteFig9Json merges them
/// into the perf-trajectory file (entries from other panels/binaries are
/// preserved, same-cell entries are replaced).
inline std::vector<obs::Json>& Fig9Entries() {
  static auto* entries = new std::vector<obs::Json>();
  return *entries;
}

inline void AddFig9Entry(const std::string& panel, const std::string& series,
                         size_t pos_rows, size_t change_rows,
                         double mean_seconds, size_t delta_rows,
                         size_t threads = 1) {
  obs::Json e = obs::Json::Object();
  e.Set("panel", obs::Json::Str(panel));
  e.Set("series", obs::Json::Str(series));
  e.Set("pos_rows", obs::Json::Int(static_cast<int64_t>(pos_rows)));
  e.Set("change_rows", obs::Json::Int(static_cast<int64_t>(change_rows)));
  e.Set("threads", obs::Json::Int(static_cast<int64_t>(threads)));
  e.Set("host_cpus", obs::Json::Int(static_cast<int64_t>(
                         std::thread::hardware_concurrency())));
  e.Set("ms", obs::Json::Double(mean_seconds * 1e3));
  e.Set("delta_rows", obs::Json::Int(static_cast<int64_t>(delta_rows)));
  Fig9Entries().push_back(std::move(e));
}

inline void WriteFig9Json(const std::string& path = "BENCH_fig9.json") {
  obs::MergeBenchJson(path, "fig9",
                      {"panel", "series", "pos_rows", "change_rows", "threads"},
                      Fig9Entries());
}

/// Registers the four series of one panel of the paper's Figure 9:
///   * Propagate            — summary-delta computation using the
///                            D-lattice (the lower solid line);
///   * PropagateNoLattice   — every summary-delta from the base changes
///                            (the dotted line);
///   * SummaryDeltaMaint    — propagate + refresh (the upper solid
///                            line; the paper's "maintenance time");
///   * Rematerialize        — recompute all four summary tables from
///                            scratch, exploiting the lattice.
///
/// `sweep_changes` selects the x-axis: change-set size 1k..10k at fixed
/// |pos| (panels a/c) or |pos| 100k..500k at fixed 10k changes (panels
/// b/d). `cls` selects update-generating (a/b) vs insertion-generating
/// (c/d) changes. `panel` tags this binary's rows in BENCH_fig9.json.
///
/// The engine-bearing series (Propagate, SummaryDeltaMaint) are
/// registered once per entry of `thread_counts` (benchmark names get a
/// "/tN" suffix beyond 1; JSON rows carry a `threads` field). The
/// baselines (PropagateNoLattice, Rematerialize) stay serial — they
/// exist to reproduce the paper's serial comparison lines.
inline void RegisterFig9(const std::string& panel, bool sweep_changes,
                         ChangeClass cls,
                         const std::vector<size_t>& thread_counts = {1, 4}) {
  constexpr size_t kFixedPos = 500000;
  constexpr size_t kFixedChanges = 10000;

  auto pos_of = [=](int64_t arg) {
    return sweep_changes ? kFixedPos : static_cast<size_t>(arg);
  };
  auto changes_of = [=](int64_t arg) {
    return sweep_changes ? static_cast<size_t>(arg) : kFixedChanges;
  };
  auto configure = [=](benchmark::internal::Benchmark* b) {
    if (sweep_changes) {
      for (int64_t n = 1000; n <= 10000; n += 1000) b->Arg(n);
    } else {
      for (int64_t n = 100000; n <= 500000; n += 100000) b->Arg(n);
    }
    b->UseManualTime()->Unit(benchmark::kMillisecond)->Iterations(2);
  };

  // The serial baselines share the "ro"/"mut" cache entries with the
  // t=1 engine series, so both must request the same options.
  warehouse::Warehouse::Options serial_options;
  serial_options.num_threads = 1;

  for (size_t threads : thread_counts) {
    warehouse::Warehouse::Options wh_options;
    wh_options.num_threads = threads;
    const std::string suffix = threads == 1 ? "" : "/t" + std::to_string(threads);
    const std::string ro_tag = "ro" + suffix;
    const std::string mut_tag = "mut" + suffix;

    configure(benchmark::RegisterBenchmark(
        ("Propagate" + suffix).c_str(), [=](benchmark::State& state) {
          warehouse::Warehouse& wh = WarehouseCache::Instance().Get(
              pos_of(state.range(0)), wh_options, ro_tag);
          const core::ChangeSet changes = MakeChanges(
              wh.catalog(), cls, changes_of(state.range(0)), 1);
          core::PropagateStats stats;
          double total = 0;
          size_t runs = 0;
          for (auto _ : state) {
            const double s = wh.PropagateOnly(changes, &stats);
            state.SetIterationTime(s);
            total += s;
            ++runs;
          }
          state.counters["delta_rows"] =
              static_cast<double>(stats.delta_groups);
          AddFig9Entry(panel, "Propagate", pos_of(state.range(0)),
                       changes_of(state.range(0)), total / runs,
                       stats.delta_groups, threads);
        }));

    configure(benchmark::RegisterBenchmark(
        ("SummaryDeltaMaint" + suffix).c_str(), [=](benchmark::State& state) {
          warehouse::Warehouse& wh = WarehouseCache::Instance().Get(
              pos_of(state.range(0)), wh_options, mut_tag);
          uint64_t seed = 1000;
          double total = 0;
          double refresh_total = 0;
          size_t runs = 0;
          size_t delta_rows = 0;
          for (auto _ : state) {
            const core::ChangeSet changes = MakeChanges(
                wh.catalog(), cls, changes_of(state.range(0)), ++seed);
            warehouse::BatchReport report = wh.RunBatch(changes);
            state.SetIterationTime(report.maintenance_seconds());
            total += report.maintenance_seconds();
            refresh_total += report.refresh_seconds;
            delta_rows = report.propagate.delta_groups;
            ++runs;
          }
          state.counters["refresh_ms"] = 1e3 * refresh_total /
                                         static_cast<double>(runs);
          AddFig9Entry(panel, "SummaryDeltaMaint", pos_of(state.range(0)),
                       changes_of(state.range(0)), total / runs, delta_rows,
                       threads);
        }));
  }

  configure(benchmark::RegisterBenchmark(
      "PropagateNoLattice", [=](benchmark::State& state) {
        warehouse::Warehouse& wh = WarehouseCache::Instance().Get(
            pos_of(state.range(0)), serial_options, "ro");
        const lattice::MaintenancePlan no_lattice = lattice::ChoosePlan(
            wh.catalog(), wh.vlattice(), lattice::PlanOptions{false});
        const core::ChangeSet changes = MakeChanges(
            wh.catalog(), cls, changes_of(state.range(0)), 1);
        double total = 0;
        size_t runs = 0;
        size_t delta_rows = 0;
        for (auto _ : state) {
          core::Stopwatch sw;
          lattice::LatticePropagateResult result = lattice::PropagateAll(
              wh.catalog(), wh.vlattice(), no_lattice, changes);
          const double s = sw.ElapsedSeconds();
          state.SetIterationTime(s);
          total += s;
          ++runs;
          delta_rows = result.totals.delta_groups;
          benchmark::DoNotOptimize(result.deltas.data());
        }
        AddFig9Entry(panel, "PropagateNoLattice", pos_of(state.range(0)),
                     changes_of(state.range(0)), total / runs, delta_rows);
      }));

  configure(benchmark::RegisterBenchmark(
      "Rematerialize", [=](benchmark::State& state) {
        warehouse::Warehouse& wh = WarehouseCache::Instance().Get(
            pos_of(state.range(0)), serial_options, "mut");
        uint64_t seed = 5000;
        double total = 0;
        size_t runs = 0;
        for (auto _ : state) {
          const core::ChangeSet changes = MakeChanges(
              wh.catalog(), cls, changes_of(state.range(0)), ++seed);
          const double s = wh.RematerializeAll(changes);
          state.SetIterationTime(s);
          total += s;
          ++runs;
        }
        AddFig9Entry(panel, "Rematerialize", pos_of(state.range(0)),
                     changes_of(state.range(0)), total / runs, 0);
      }));
}

}  // namespace sdelta::bench

#endif  // SDELTA_BENCH_BENCH_FIG9_H_
