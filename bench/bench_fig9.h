#ifndef SDELTA_BENCH_BENCH_FIG9_H_
#define SDELTA_BENCH_BENCH_FIG9_H_

#include <benchmark/benchmark.h>

#include "bench_common.h"
#include "core/maintenance.h"
#include "lattice/plan.h"

namespace sdelta::bench {

/// Registers the four series of one panel of the paper's Figure 9:
///   * Propagate            — summary-delta computation using the
///                            D-lattice (the lower solid line);
///   * PropagateNoLattice   — every summary-delta from the base changes
///                            (the dotted line);
///   * SummaryDeltaMaint    — propagate + refresh (the upper solid
///                            line; the paper's "maintenance time");
///   * Rematerialize        — recompute all four summary tables from
///                            scratch, exploiting the lattice.
///
/// `sweep_changes` selects the x-axis: change-set size 1k..10k at fixed
/// |pos| (panels a/c) or |pos| 100k..500k at fixed 10k changes (panels
/// b/d). `cls` selects update-generating (a/b) vs insertion-generating
/// (c/d) changes.
inline void RegisterFig9(bool sweep_changes, ChangeClass cls) {
  constexpr size_t kFixedPos = 500000;
  constexpr size_t kFixedChanges = 10000;

  auto pos_of = [=](int64_t arg) {
    return sweep_changes ? kFixedPos : static_cast<size_t>(arg);
  };
  auto changes_of = [=](int64_t arg) {
    return sweep_changes ? static_cast<size_t>(arg) : kFixedChanges;
  };
  auto configure = [=](benchmark::internal::Benchmark* b) {
    if (sweep_changes) {
      for (int64_t n = 1000; n <= 10000; n += 1000) b->Arg(n);
    } else {
      for (int64_t n = 100000; n <= 500000; n += 100000) b->Arg(n);
    }
    b->UseManualTime()->Unit(benchmark::kMillisecond)->Iterations(2);
  };

  configure(benchmark::RegisterBenchmark(
      "Propagate", [=](benchmark::State& state) {
        warehouse::Warehouse& wh = WarehouseCache::Instance().Get(
            pos_of(state.range(0)), {}, "ro");
        const core::ChangeSet changes = MakeChanges(
            wh.catalog(), cls, changes_of(state.range(0)), 1);
        core::PropagateStats stats;
        for (auto _ : state) {
          state.SetIterationTime(wh.PropagateOnly(changes, &stats));
        }
        state.counters["delta_rows"] =
            static_cast<double>(stats.delta_groups);
      }));

  configure(benchmark::RegisterBenchmark(
      "PropagateNoLattice", [=](benchmark::State& state) {
        warehouse::Warehouse& wh = WarehouseCache::Instance().Get(
            pos_of(state.range(0)), {}, "ro");
        const lattice::MaintenancePlan no_lattice = lattice::ChoosePlan(
            wh.catalog(), wh.vlattice(), lattice::PlanOptions{false});
        const core::ChangeSet changes = MakeChanges(
            wh.catalog(), cls, changes_of(state.range(0)), 1);
        for (auto _ : state) {
          core::Stopwatch sw;
          lattice::LatticePropagateResult result = lattice::PropagateAll(
              wh.catalog(), wh.vlattice(), no_lattice, changes);
          state.SetIterationTime(sw.ElapsedSeconds());
          benchmark::DoNotOptimize(result.deltas.data());
        }
      }));

  configure(benchmark::RegisterBenchmark(
      "SummaryDeltaMaint", [=](benchmark::State& state) {
        warehouse::Warehouse& wh = WarehouseCache::Instance().Get(
            pos_of(state.range(0)), {}, "mut");
        uint64_t seed = 1000;
        double refresh_total = 0;
        size_t runs = 0;
        for (auto _ : state) {
          const core::ChangeSet changes = MakeChanges(
              wh.catalog(), cls, changes_of(state.range(0)), ++seed);
          warehouse::BatchReport report = wh.RunBatch(changes);
          state.SetIterationTime(report.maintenance_seconds());
          refresh_total += report.refresh_seconds;
          ++runs;
        }
        state.counters["refresh_ms"] = 1e3 * refresh_total /
                                       static_cast<double>(runs);
      }));

  configure(benchmark::RegisterBenchmark(
      "Rematerialize", [=](benchmark::State& state) {
        warehouse::Warehouse& wh = WarehouseCache::Instance().Get(
            pos_of(state.range(0)), {}, "mut");
        uint64_t seed = 5000;
        for (auto _ : state) {
          const core::ChangeSet changes = MakeChanges(
              wh.catalog(), cls, changes_of(state.range(0)), ++seed);
          state.SetIterationTime(wh.RematerializeAll(changes));
        }
      }));
}

}  // namespace sdelta::bench

#endif  // SDELTA_BENCH_BENCH_FIG9_H_
