// Multi-query optimization across the batch's maintenance plans
// (lattice/mqo.h): propagate time with sharing extracted once per batch
// vs. re-running the common join subtrees per plan.
//
// Two configurations bound the design space:
//   high_sharing — vCity and vRegion both re-join stores over the
//     sd_SID_sales summary-delta, so MQO materializes the shared join
//     once, and because the shared key space ({storeID}, 100 values)
//     is tiny next to the ~20k-row delta, the push-agg rewrite
//     collapses the delta below the join — the consumers aggregate a
//     ~100-row table instead of each re-joining and re-aggregating the
//     full delta;
//   zero_sharing — the stock paper views, whose plans share nothing.
//     MQO on vs. off here measures the pure overhead of fingerprinting
//     and rule evaluation, which the bench gate holds to the committed
//     propagate-time tolerance.
#include <benchmark/benchmark.h>

#include <string>
#include <thread>
#include <vector>

#include "bench_common.h"
#include "core/maintenance.h"
#include "lattice/plan.h"
#include "lattice/vlattice.h"
#include "obs/export_json.h"

namespace sdelta::bench {
namespace {

std::vector<obs::Json>& MqoEntries() {
  static auto* entries = new std::vector<obs::Json>();
  return *entries;
}

constexpr size_t kPosRows = 200000;
constexpr size_t kChangeSize = 10000;

std::vector<core::ViewDef> HighSharingViews() {
  using rel::Expression;
  auto view = [](const std::string& name,
                 std::vector<core::DimensionJoin> joins,
                 std::vector<std::string> group_by) {
    core::ViewDef v;
    v.name = name;
    v.fact_table = "pos";
    v.joins = std::move(joins);
    v.group_by = std::move(group_by);
    v.aggregates = {rel::CountStar("TotalCount"),
                    rel::Sum(Expression::Column("qty"), "TotalQuantity")};
    return v;
  };
  // vCity and vRegion are incomparable (region is not derivable from
  // {city} without an FD walk the planner does not do), so both derive
  // from SID_sales via the same stores join — one shared subplan,
  // preaggregated on storeID before the join.
  const core::DimensionJoin stores{"stores", "storeID", "storeID"};
  return {view("SID_sales", {}, {"storeID", "itemID", "date"}),
          view("vCity", {stores}, {"city"}),
          view("vRegion", {stores}, {"region"})};
}

std::vector<core::ViewDef> ZeroSharingViews() {
  return warehouse::RetailSummaryTables();
}

struct Prepared {
  rel::Catalog* catalog;
  lattice::VLattice vlattice;
  lattice::MaintenancePlan plan;
};

Prepared Prepare(const std::string& config) {
  static auto* catalogs = new std::map<std::string, rel::Catalog>();
  auto it = catalogs->find(config);
  if (it == catalogs->end()) {
    it = catalogs
             ->emplace(config,
                       warehouse::MakeRetailCatalog(PaperConfig(kPosRows)))
             .first;
  }
  Prepared p;
  p.catalog = &it->second;
  // The high-sharing family is hand-built: no FD extension, so the
  // sharing structure is exactly the three stores re-joins.
  std::vector<core::ViewDef> views = config == "high_sharing"
                                         ? HighSharingViews()
                                         : lattice::MakeLatticeFriendly(
                                               *p.catalog,
                                               ZeroSharingViews());
  std::vector<core::AugmentedView> augmented;
  for (const core::ViewDef& v : views) {
    augmented.push_back(core::AugmentForSelfMaintenance(*p.catalog, v));
  }
  p.vlattice = lattice::BuildVLattice(*p.catalog, std::move(augmented));
  p.plan = lattice::ChoosePlan(*p.catalog, p.vlattice);
  return p;
}

void RunConfig(benchmark::State& state, const std::string& config,
               bool mqo_enabled) {
  Prepared p = Prepare(config);
  const core::ChangeSet changes =
      MakeChanges(*p.catalog, ChangeClass::kUpdate, kChangeSize, 9);
  core::PropagateOptions popts;
  popts.mqo_enabled = mqo_enabled;

  lattice::MqoStats mqo;
  double total = 0;
  size_t runs = 0;
  for (auto _ : state) {
    core::Stopwatch sw;
    lattice::LatticePropagateResult result =
        lattice::PropagateAll(*p.catalog, p.vlattice, p.plan, changes, popts);
    const double s = sw.ElapsedSeconds();
    state.SetIterationTime(s);
    total += s;
    ++runs;
    mqo = result.mqo;
    benchmark::DoNotOptimize(result.deltas.data());
  }
  state.counters["subplans_materialized"] =
      static_cast<double>(mqo.subplans_materialized);
  state.counters["rows_reused"] = static_cast<double>(mqo.rows_reused);

  obs::Json e = obs::Json::Object();
  e.Set("config", obs::Json::Str(config));
  e.Set("mqo", obs::Json::Str(mqo_enabled ? "on" : "off"));
  e.Set("threads", obs::Json::Int(1));  // serial: the sharing ablation
  e.Set("host_cpus", obs::Json::Int(static_cast<int64_t>(
                         std::thread::hardware_concurrency())));
  e.Set("ms", obs::Json::Double(total / static_cast<double>(runs) * 1e3));
  e.Set("subplans_detected",
        obs::Json::Int(static_cast<int64_t>(mqo.subplans_detected)));
  e.Set("subplans_materialized",
        obs::Json::Int(static_cast<int64_t>(mqo.subplans_materialized)));
  e.Set("rows_reused", obs::Json::Int(static_cast<int64_t>(mqo.rows_reused)));
  e.Set("rule_fires", obs::Json::Int(static_cast<int64_t>(mqo.rules.Total())));
  MqoEntries().push_back(std::move(e));
}

void BM_HighSharingMqoOn(benchmark::State& state) {
  RunConfig(state, "high_sharing", true);
}
void BM_HighSharingMqoOff(benchmark::State& state) {
  RunConfig(state, "high_sharing", false);
}
void BM_ZeroSharingMqoOn(benchmark::State& state) {
  RunConfig(state, "zero_sharing", true);
}
void BM_ZeroSharingMqoOff(benchmark::State& state) {
  RunConfig(state, "zero_sharing", false);
}

BENCHMARK(BM_HighSharingMqoOn)
    ->UseManualTime()
    ->Unit(benchmark::kMillisecond)
    ->Iterations(5);
BENCHMARK(BM_HighSharingMqoOff)
    ->UseManualTime()
    ->Unit(benchmark::kMillisecond)
    ->Iterations(5);
BENCHMARK(BM_ZeroSharingMqoOn)
    ->UseManualTime()
    ->Unit(benchmark::kMillisecond)
    ->Iterations(5);
BENCHMARK(BM_ZeroSharingMqoOff)
    ->UseManualTime()
    ->Unit(benchmark::kMillisecond)
    ->Iterations(5);

}  // namespace
}  // namespace sdelta::bench

int main(int argc, char** argv) {
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  sdelta::obs::MergeBenchJson("BENCH_mqo.json", "mqo", {"config", "mqo"},
                              sdelta::bench::MqoEntries());
  benchmark::Shutdown();
  return 0;
}
