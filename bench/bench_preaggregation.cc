// Ablation (paper §4.1.3): pre-aggregating the changes before joining
// dimension tables.
//
// Direct propagate joins every changed tuple with the dimension tables
// before aggregating; pre-aggregation first collapses the changes to
// fact-level groups, joining only the (far fewer) partial groups. The
// benefit grows with the ratio |changes| / |fact-level groups|.
#include <benchmark/benchmark.h>

#include "bench_common.h"
#include "core/maintenance.h"
#include "core/propagate.h"
#include "core/self_maintenance.h"
#include "obs/metrics.h"

namespace sdelta::bench {
namespace {

constexpr size_t kPosRows = 200000;

/// Propagate all dimension-joining retail views with/without §4.1.3.
void RunPropagate(benchmark::State& state, bool preaggregate) {
  static rel::Catalog* catalog = new rel::Catalog(
      warehouse::MakeRetailCatalog(PaperConfig(kPosRows)));
  static std::vector<core::AugmentedView>* views = [] {
    auto* vs = new std::vector<core::AugmentedView>();
    for (const core::ViewDef& v : warehouse::RetailSummaryTables()) {
      if (!v.joins.empty()) {
        vs->push_back(core::AugmentForSelfMaintenance(*catalog, v));
      }
    }
    return vs;
  }();

  const core::ChangeSet changes =
      MakeChanges(*catalog, ChangeClass::kUpdate,
                  static_cast<size_t>(state.range(0)), 7);
  static auto* registry = new obs::MetricsRegistry();
  core::PropagateOptions popts;
  popts.preaggregate = preaggregate;
  popts.metrics = registry;
  size_t prepared = 0;
  size_t runs = 0;
  const uint64_t scanned0 = registry->counter("propagate.rows_scanned");
  for (auto _ : state) {
    core::Stopwatch sw;
    for (const core::AugmentedView& av : *views) {
      core::PropagateStats stats;
      rel::Table sd =
          core::ComputeSummaryDelta(*catalog, av, changes, popts, &stats);
      benchmark::DoNotOptimize(sd.NumRows());
      prepared = stats.prepared_tuples;
    }
    state.SetIterationTime(sw.ElapsedSeconds());
    ++runs;
  }
  state.counters["prepared_rows"] = static_cast<double>(prepared);
  state.counters["rows_scanned"] = static_cast<double>(
      registry->counter("propagate.rows_scanned") - scanned0) /
      static_cast<double>(runs);
}

void BM_PropagateDirect(benchmark::State& state) {
  RunPropagate(state, false);
}
void BM_PropagatePreaggregated(benchmark::State& state) {
  RunPropagate(state, true);
}

BENCHMARK(BM_PropagateDirect)
    ->RangeMultiplier(4)
    ->Range(1000, 64000)
    ->UseManualTime()
    ->Unit(benchmark::kMillisecond)
    ->Iterations(3);
BENCHMARK(BM_PropagatePreaggregated)
    ->RangeMultiplier(4)
    ->Range(1000, 64000)
    ->UseManualTime()
    ->Unit(benchmark::kMillisecond)
    ->Iterations(3);

}  // namespace
}  // namespace sdelta::bench

BENCHMARK_MAIN();
