// Ablation (paper §4.2 / §7): refresh strategy.
//
// The paper implemented refresh as an embedded-SQL cursor loop and found
// it slower than expected, arguing vendors should build a "summary-delta
// join" — an outer-join-style refresh. This bench compares:
//   * Cursor — keyed lookup per summary-delta tuple (Figure 2/7);
//   * Merge  — sort-merge outer join rewriting the summary table.
// Cursor touches O(|sd|) tuples; Merge rewrites the whole table but has
// no per-tuple probe. The crossover depends on |sd| / |summary|.
#include <benchmark/benchmark.h>

#include "bench_common.h"
#include "core/maintenance.h"
#include "lattice/plan.h"
#include "obs/metrics.h"

namespace sdelta::bench {
namespace {

constexpr size_t kPosRows = 200000;

/// Shared metrics sink (leaked so it outlives the warehouse cache);
/// refresh.* counter deltas become bench counters.
obs::MetricsRegistry& Registry() {
  static auto* registry = new obs::MetricsRegistry();
  return *registry;
}

void RunRefreshBench(benchmark::State& state, core::RefreshStrategy strategy) {
  warehouse::Warehouse::Options options;
  options.refresh.strategy = strategy;
  options.metrics = &Registry();
  warehouse::Warehouse& wh = WarehouseCache::Instance().Get(
      kPosRows, options,
      strategy == core::RefreshStrategy::kCursor ? "cursor" : "merge");
  uint64_t seed = 100;
  size_t runs = 0;
  const uint64_t updates0 = Registry().counter("refresh.updates");
  const uint64_t inserts0 = Registry().counter("refresh.inserts");
  const uint64_t deletes0 = Registry().counter("refresh.deletes");
  for (auto _ : state) {
    const core::ChangeSet changes = MakeChanges(
        wh.catalog(), ChangeClass::kUpdate,
        static_cast<size_t>(state.range(0)), ++seed);
    warehouse::BatchReport report = wh.RunBatch(changes);
    state.SetIterationTime(report.refresh_seconds);
    ++runs;
  }
  const double n = static_cast<double>(runs);
  state.counters["updates"] = static_cast<double>(
      Registry().counter("refresh.updates") - updates0) / n;
  state.counters["inserts"] = static_cast<double>(
      Registry().counter("refresh.inserts") - inserts0) / n;
  state.counters["deletes"] = static_cast<double>(
      Registry().counter("refresh.deletes") - deletes0) / n;
}

void BM_RefreshCursor(benchmark::State& state) {
  RunRefreshBench(state, core::RefreshStrategy::kCursor);
}
void BM_RefreshMerge(benchmark::State& state) {
  RunRefreshBench(state, core::RefreshStrategy::kMerge);
}

BENCHMARK(BM_RefreshCursor)
    ->RangeMultiplier(4)
    ->Range(1000, 64000)
    ->UseManualTime()
    ->Unit(benchmark::kMillisecond)
    ->Iterations(2);
BENCHMARK(BM_RefreshMerge)
    ->RangeMultiplier(4)
    ->Range(1000, 64000)
    ->UseManualTime()
    ->Unit(benchmark::kMillisecond)
    ->Iterations(2);

}  // namespace
}  // namespace sdelta::bench

BENCHMARK_MAIN();
