// Ablation (paper §4.2 / §7): refresh strategy.
//
// The paper implemented refresh as an embedded-SQL cursor loop and found
// it slower than expected, arguing vendors should build a "summary-delta
// join" — an outer-join-style refresh. This bench compares:
//   * Cursor — keyed lookup per summary-delta tuple (Figure 2/7);
//   * Merge  — sort-merge outer join rewriting the summary table.
// Cursor touches O(|sd|) tuples; Merge rewrites the whole table but has
// no per-tuple probe. The crossover depends on |sd| / |summary|.
#include <benchmark/benchmark.h>

#include "bench_common.h"
#include "core/maintenance.h"
#include "lattice/plan.h"

namespace sdelta::bench {
namespace {

constexpr size_t kPosRows = 200000;

void RunRefreshBench(benchmark::State& state, core::RefreshStrategy strategy) {
  warehouse::Warehouse::Options options;
  options.refresh.strategy = strategy;
  warehouse::Warehouse& wh = WarehouseCache::Instance().Get(
      kPosRows, options,
      strategy == core::RefreshStrategy::kCursor ? "cursor" : "merge");
  uint64_t seed = 100;
  for (auto _ : state) {
    const core::ChangeSet changes = MakeChanges(
        wh.catalog(), ChangeClass::kUpdate,
        static_cast<size_t>(state.range(0)), ++seed);
    warehouse::BatchReport report = wh.RunBatch(changes);
    state.SetIterationTime(report.refresh_seconds);
  }
}

void BM_RefreshCursor(benchmark::State& state) {
  RunRefreshBench(state, core::RefreshStrategy::kCursor);
}
void BM_RefreshMerge(benchmark::State& state) {
  RunRefreshBench(state, core::RefreshStrategy::kMerge);
}

BENCHMARK(BM_RefreshCursor)
    ->RangeMultiplier(4)
    ->Range(1000, 64000)
    ->UseManualTime()
    ->Unit(benchmark::kMillisecond)
    ->Iterations(2);
BENCHMARK(BM_RefreshMerge)
    ->RangeMultiplier(4)
    ->Range(1000, 64000)
    ->UseManualTime()
    ->Unit(benchmark::kMillisecond)
    ->Iterations(2);

}  // namespace
}  // namespace sdelta::bench

BENCHMARK_MAIN();
