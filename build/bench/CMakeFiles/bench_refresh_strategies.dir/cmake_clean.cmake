file(REMOVE_RECURSE
  "CMakeFiles/bench_refresh_strategies.dir/bench_refresh_strategies.cc.o"
  "CMakeFiles/bench_refresh_strategies.dir/bench_refresh_strategies.cc.o.d"
  "bench_refresh_strategies"
  "bench_refresh_strategies.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_refresh_strategies.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
