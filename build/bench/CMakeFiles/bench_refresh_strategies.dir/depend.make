# Empty dependencies file for bench_refresh_strategies.
# This may be replaced when dependencies are built.
