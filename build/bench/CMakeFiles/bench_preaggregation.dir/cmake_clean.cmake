file(REMOVE_RECURSE
  "CMakeFiles/bench_preaggregation.dir/bench_preaggregation.cc.o"
  "CMakeFiles/bench_preaggregation.dir/bench_preaggregation.cc.o.d"
  "bench_preaggregation"
  "bench_preaggregation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_preaggregation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
