# Empty compiler generated dependencies file for bench_preaggregation.
# This may be replaced when dependencies are built.
