# Empty dependencies file for bench_minmax.
# This may be replaced when dependencies are built.
