
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/bench_minmax.cc" "bench/CMakeFiles/bench_minmax.dir/bench_minmax.cc.o" "gcc" "bench/CMakeFiles/bench_minmax.dir/bench_minmax.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/warehouse/CMakeFiles/sdelta_warehouse.dir/DependInfo.cmake"
  "/root/repo/build/src/lattice/CMakeFiles/sdelta_lattice.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/sdelta_core.dir/DependInfo.cmake"
  "/root/repo/build/src/relational/CMakeFiles/sdelta_relational.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
