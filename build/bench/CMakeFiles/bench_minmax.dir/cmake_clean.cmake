file(REMOVE_RECURSE
  "CMakeFiles/bench_minmax.dir/bench_minmax.cc.o"
  "CMakeFiles/bench_minmax.dir/bench_minmax.cc.o.d"
  "bench_minmax"
  "bench_minmax.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_minmax.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
