# Empty dependencies file for bench_lattice_plans.
# This may be replaced when dependencies are built.
