file(REMOVE_RECURSE
  "CMakeFiles/bench_lattice_plans.dir/bench_lattice_plans.cc.o"
  "CMakeFiles/bench_lattice_plans.dir/bench_lattice_plans.cc.o.d"
  "bench_lattice_plans"
  "bench_lattice_plans.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_lattice_plans.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
