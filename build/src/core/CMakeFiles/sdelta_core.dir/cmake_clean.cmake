file(REMOVE_RECURSE
  "CMakeFiles/sdelta_core.dir/maintenance.cc.o"
  "CMakeFiles/sdelta_core.dir/maintenance.cc.o.d"
  "CMakeFiles/sdelta_core.dir/prepare_changes.cc.o"
  "CMakeFiles/sdelta_core.dir/prepare_changes.cc.o.d"
  "CMakeFiles/sdelta_core.dir/propagate.cc.o"
  "CMakeFiles/sdelta_core.dir/propagate.cc.o.d"
  "CMakeFiles/sdelta_core.dir/refresh.cc.o"
  "CMakeFiles/sdelta_core.dir/refresh.cc.o.d"
  "CMakeFiles/sdelta_core.dir/rematerialize.cc.o"
  "CMakeFiles/sdelta_core.dir/rematerialize.cc.o.d"
  "CMakeFiles/sdelta_core.dir/self_maintenance.cc.o"
  "CMakeFiles/sdelta_core.dir/self_maintenance.cc.o.d"
  "CMakeFiles/sdelta_core.dir/sql_parser.cc.o"
  "CMakeFiles/sdelta_core.dir/sql_parser.cc.o.d"
  "CMakeFiles/sdelta_core.dir/summary_table.cc.o"
  "CMakeFiles/sdelta_core.dir/summary_table.cc.o.d"
  "CMakeFiles/sdelta_core.dir/view_def.cc.o"
  "CMakeFiles/sdelta_core.dir/view_def.cc.o.d"
  "libsdelta_core.a"
  "libsdelta_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sdelta_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
