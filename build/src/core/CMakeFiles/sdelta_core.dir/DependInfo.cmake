
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/core/maintenance.cc" "src/core/CMakeFiles/sdelta_core.dir/maintenance.cc.o" "gcc" "src/core/CMakeFiles/sdelta_core.dir/maintenance.cc.o.d"
  "/root/repo/src/core/prepare_changes.cc" "src/core/CMakeFiles/sdelta_core.dir/prepare_changes.cc.o" "gcc" "src/core/CMakeFiles/sdelta_core.dir/prepare_changes.cc.o.d"
  "/root/repo/src/core/propagate.cc" "src/core/CMakeFiles/sdelta_core.dir/propagate.cc.o" "gcc" "src/core/CMakeFiles/sdelta_core.dir/propagate.cc.o.d"
  "/root/repo/src/core/refresh.cc" "src/core/CMakeFiles/sdelta_core.dir/refresh.cc.o" "gcc" "src/core/CMakeFiles/sdelta_core.dir/refresh.cc.o.d"
  "/root/repo/src/core/rematerialize.cc" "src/core/CMakeFiles/sdelta_core.dir/rematerialize.cc.o" "gcc" "src/core/CMakeFiles/sdelta_core.dir/rematerialize.cc.o.d"
  "/root/repo/src/core/self_maintenance.cc" "src/core/CMakeFiles/sdelta_core.dir/self_maintenance.cc.o" "gcc" "src/core/CMakeFiles/sdelta_core.dir/self_maintenance.cc.o.d"
  "/root/repo/src/core/sql_parser.cc" "src/core/CMakeFiles/sdelta_core.dir/sql_parser.cc.o" "gcc" "src/core/CMakeFiles/sdelta_core.dir/sql_parser.cc.o.d"
  "/root/repo/src/core/summary_table.cc" "src/core/CMakeFiles/sdelta_core.dir/summary_table.cc.o" "gcc" "src/core/CMakeFiles/sdelta_core.dir/summary_table.cc.o.d"
  "/root/repo/src/core/view_def.cc" "src/core/CMakeFiles/sdelta_core.dir/view_def.cc.o" "gcc" "src/core/CMakeFiles/sdelta_core.dir/view_def.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/relational/CMakeFiles/sdelta_relational.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
