file(REMOVE_RECURSE
  "libsdelta_core.a"
)
