# Empty compiler generated dependencies file for sdelta_core.
# This may be replaced when dependencies are built.
