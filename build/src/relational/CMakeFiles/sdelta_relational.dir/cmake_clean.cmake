file(REMOVE_RECURSE
  "CMakeFiles/sdelta_relational.dir/aggregate.cc.o"
  "CMakeFiles/sdelta_relational.dir/aggregate.cc.o.d"
  "CMakeFiles/sdelta_relational.dir/catalog.cc.o"
  "CMakeFiles/sdelta_relational.dir/catalog.cc.o.d"
  "CMakeFiles/sdelta_relational.dir/csv.cc.o"
  "CMakeFiles/sdelta_relational.dir/csv.cc.o.d"
  "CMakeFiles/sdelta_relational.dir/expression.cc.o"
  "CMakeFiles/sdelta_relational.dir/expression.cc.o.d"
  "CMakeFiles/sdelta_relational.dir/operators.cc.o"
  "CMakeFiles/sdelta_relational.dir/operators.cc.o.d"
  "CMakeFiles/sdelta_relational.dir/schema.cc.o"
  "CMakeFiles/sdelta_relational.dir/schema.cc.o.d"
  "CMakeFiles/sdelta_relational.dir/table.cc.o"
  "CMakeFiles/sdelta_relational.dir/table.cc.o.d"
  "CMakeFiles/sdelta_relational.dir/value.cc.o"
  "CMakeFiles/sdelta_relational.dir/value.cc.o.d"
  "libsdelta_relational.a"
  "libsdelta_relational.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sdelta_relational.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
