# Empty compiler generated dependencies file for sdelta_relational.
# This may be replaced when dependencies are built.
