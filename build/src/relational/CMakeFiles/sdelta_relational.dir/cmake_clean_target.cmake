file(REMOVE_RECURSE
  "libsdelta_relational.a"
)
