file(REMOVE_RECURSE
  "libsdelta_warehouse.a"
)
