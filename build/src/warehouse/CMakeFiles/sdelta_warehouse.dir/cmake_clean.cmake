file(REMOVE_RECURSE
  "CMakeFiles/sdelta_warehouse.dir/persistence.cc.o"
  "CMakeFiles/sdelta_warehouse.dir/persistence.cc.o.d"
  "CMakeFiles/sdelta_warehouse.dir/retail_schema.cc.o"
  "CMakeFiles/sdelta_warehouse.dir/retail_schema.cc.o.d"
  "CMakeFiles/sdelta_warehouse.dir/warehouse.cc.o"
  "CMakeFiles/sdelta_warehouse.dir/warehouse.cc.o.d"
  "CMakeFiles/sdelta_warehouse.dir/workload.cc.o"
  "CMakeFiles/sdelta_warehouse.dir/workload.cc.o.d"
  "libsdelta_warehouse.a"
  "libsdelta_warehouse.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sdelta_warehouse.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
