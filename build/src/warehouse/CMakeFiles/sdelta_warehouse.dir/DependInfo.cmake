
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/warehouse/persistence.cc" "src/warehouse/CMakeFiles/sdelta_warehouse.dir/persistence.cc.o" "gcc" "src/warehouse/CMakeFiles/sdelta_warehouse.dir/persistence.cc.o.d"
  "/root/repo/src/warehouse/retail_schema.cc" "src/warehouse/CMakeFiles/sdelta_warehouse.dir/retail_schema.cc.o" "gcc" "src/warehouse/CMakeFiles/sdelta_warehouse.dir/retail_schema.cc.o.d"
  "/root/repo/src/warehouse/warehouse.cc" "src/warehouse/CMakeFiles/sdelta_warehouse.dir/warehouse.cc.o" "gcc" "src/warehouse/CMakeFiles/sdelta_warehouse.dir/warehouse.cc.o.d"
  "/root/repo/src/warehouse/workload.cc" "src/warehouse/CMakeFiles/sdelta_warehouse.dir/workload.cc.o" "gcc" "src/warehouse/CMakeFiles/sdelta_warehouse.dir/workload.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/lattice/CMakeFiles/sdelta_lattice.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/sdelta_core.dir/DependInfo.cmake"
  "/root/repo/build/src/relational/CMakeFiles/sdelta_relational.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
