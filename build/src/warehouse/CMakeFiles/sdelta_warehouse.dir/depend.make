# Empty dependencies file for sdelta_warehouse.
# This may be replaced when dependencies are built.
