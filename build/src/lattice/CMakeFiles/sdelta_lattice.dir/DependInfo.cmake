
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/lattice/answer.cc" "src/lattice/CMakeFiles/sdelta_lattice.dir/answer.cc.o" "gcc" "src/lattice/CMakeFiles/sdelta_lattice.dir/answer.cc.o.d"
  "/root/repo/src/lattice/cube_lattice.cc" "src/lattice/CMakeFiles/sdelta_lattice.dir/cube_lattice.cc.o" "gcc" "src/lattice/CMakeFiles/sdelta_lattice.dir/cube_lattice.cc.o.d"
  "/root/repo/src/lattice/derives.cc" "src/lattice/CMakeFiles/sdelta_lattice.dir/derives.cc.o" "gcc" "src/lattice/CMakeFiles/sdelta_lattice.dir/derives.cc.o.d"
  "/root/repo/src/lattice/hierarchy.cc" "src/lattice/CMakeFiles/sdelta_lattice.dir/hierarchy.cc.o" "gcc" "src/lattice/CMakeFiles/sdelta_lattice.dir/hierarchy.cc.o.d"
  "/root/repo/src/lattice/plan.cc" "src/lattice/CMakeFiles/sdelta_lattice.dir/plan.cc.o" "gcc" "src/lattice/CMakeFiles/sdelta_lattice.dir/plan.cc.o.d"
  "/root/repo/src/lattice/vlattice.cc" "src/lattice/CMakeFiles/sdelta_lattice.dir/vlattice.cc.o" "gcc" "src/lattice/CMakeFiles/sdelta_lattice.dir/vlattice.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/sdelta_core.dir/DependInfo.cmake"
  "/root/repo/build/src/relational/CMakeFiles/sdelta_relational.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
