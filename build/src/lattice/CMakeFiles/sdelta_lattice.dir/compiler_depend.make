# Empty compiler generated dependencies file for sdelta_lattice.
# This may be replaced when dependencies are built.
