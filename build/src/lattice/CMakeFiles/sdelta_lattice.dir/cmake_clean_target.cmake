file(REMOVE_RECURSE
  "libsdelta_lattice.a"
)
