file(REMOVE_RECURSE
  "CMakeFiles/sdelta_lattice.dir/answer.cc.o"
  "CMakeFiles/sdelta_lattice.dir/answer.cc.o.d"
  "CMakeFiles/sdelta_lattice.dir/cube_lattice.cc.o"
  "CMakeFiles/sdelta_lattice.dir/cube_lattice.cc.o.d"
  "CMakeFiles/sdelta_lattice.dir/derives.cc.o"
  "CMakeFiles/sdelta_lattice.dir/derives.cc.o.d"
  "CMakeFiles/sdelta_lattice.dir/hierarchy.cc.o"
  "CMakeFiles/sdelta_lattice.dir/hierarchy.cc.o.d"
  "CMakeFiles/sdelta_lattice.dir/plan.cc.o"
  "CMakeFiles/sdelta_lattice.dir/plan.cc.o.d"
  "CMakeFiles/sdelta_lattice.dir/vlattice.cc.o"
  "CMakeFiles/sdelta_lattice.dir/vlattice.cc.o.d"
  "libsdelta_lattice.a"
  "libsdelta_lattice.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sdelta_lattice.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
