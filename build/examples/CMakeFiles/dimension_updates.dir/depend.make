# Empty dependencies file for dimension_updates.
# This may be replaced when dependencies are built.
