file(REMOVE_RECURSE
  "CMakeFiles/dimension_updates.dir/dimension_updates.cpp.o"
  "CMakeFiles/dimension_updates.dir/dimension_updates.cpp.o.d"
  "dimension_updates"
  "dimension_updates.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dimension_updates.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
