# Empty dependencies file for warehouse_shell.
# This may be replaced when dependencies are built.
