file(REMOVE_RECURSE
  "CMakeFiles/warehouse_shell.dir/warehouse_shell.cpp.o"
  "CMakeFiles/warehouse_shell.dir/warehouse_shell.cpp.o.d"
  "warehouse_shell"
  "warehouse_shell.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/warehouse_shell.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
