# Empty dependencies file for retail_warehouse.
# This may be replaced when dependencies are built.
