file(REMOVE_RECURSE
  "CMakeFiles/retail_warehouse.dir/retail_warehouse.cpp.o"
  "CMakeFiles/retail_warehouse.dir/retail_warehouse.cpp.o.d"
  "retail_warehouse"
  "retail_warehouse.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/retail_warehouse.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
