# Empty dependencies file for sql_workbench.
# This may be replaced when dependencies are built.
