# Empty compiler generated dependencies file for cube_explorer.
# This may be replaced when dependencies are built.
