file(REMOVE_RECURSE
  "CMakeFiles/cube_lattice_test.dir/lattice/cube_lattice_test.cc.o"
  "CMakeFiles/cube_lattice_test.dir/lattice/cube_lattice_test.cc.o.d"
  "cube_lattice_test"
  "cube_lattice_test.pdb"
  "cube_lattice_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cube_lattice_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
