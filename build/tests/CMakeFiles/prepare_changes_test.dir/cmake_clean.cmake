file(REMOVE_RECURSE
  "CMakeFiles/prepare_changes_test.dir/core/prepare_changes_test.cc.o"
  "CMakeFiles/prepare_changes_test.dir/core/prepare_changes_test.cc.o.d"
  "prepare_changes_test"
  "prepare_changes_test.pdb"
  "prepare_changes_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/prepare_changes_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
