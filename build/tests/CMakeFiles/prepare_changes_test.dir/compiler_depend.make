# Empty compiler generated dependencies file for prepare_changes_test.
# This may be replaced when dependencies are built.
