# Empty compiler generated dependencies file for evolve_test.
# This may be replaced when dependencies are built.
