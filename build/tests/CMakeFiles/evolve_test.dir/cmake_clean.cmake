file(REMOVE_RECURSE
  "CMakeFiles/evolve_test.dir/warehouse/evolve_test.cc.o"
  "CMakeFiles/evolve_test.dir/warehouse/evolve_test.cc.o.d"
  "evolve_test"
  "evolve_test.pdb"
  "evolve_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/evolve_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
