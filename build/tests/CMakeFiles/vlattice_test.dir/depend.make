# Empty dependencies file for vlattice_test.
# This may be replaced when dependencies are built.
