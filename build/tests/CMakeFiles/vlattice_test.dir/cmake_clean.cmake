file(REMOVE_RECURSE
  "CMakeFiles/vlattice_test.dir/lattice/vlattice_test.cc.o"
  "CMakeFiles/vlattice_test.dir/lattice/vlattice_test.cc.o.d"
  "vlattice_test"
  "vlattice_test.pdb"
  "vlattice_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/vlattice_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
