file(REMOVE_RECURSE
  "CMakeFiles/derives_test.dir/lattice/derives_test.cc.o"
  "CMakeFiles/derives_test.dir/lattice/derives_test.cc.o.d"
  "derives_test"
  "derives_test.pdb"
  "derives_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/derives_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
