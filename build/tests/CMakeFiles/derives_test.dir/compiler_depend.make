# Empty compiler generated dependencies file for derives_test.
# This may be replaced when dependencies are built.
