file(REMOVE_RECURSE
  "CMakeFiles/null_handling_test.dir/core/null_handling_test.cc.o"
  "CMakeFiles/null_handling_test.dir/core/null_handling_test.cc.o.d"
  "null_handling_test"
  "null_handling_test.pdb"
  "null_handling_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/null_handling_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
