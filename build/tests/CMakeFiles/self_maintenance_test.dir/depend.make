# Empty dependencies file for self_maintenance_test.
# This may be replaced when dependencies are built.
