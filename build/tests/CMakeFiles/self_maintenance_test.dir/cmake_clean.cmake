file(REMOVE_RECURSE
  "CMakeFiles/self_maintenance_test.dir/core/self_maintenance_test.cc.o"
  "CMakeFiles/self_maintenance_test.dir/core/self_maintenance_test.cc.o.d"
  "self_maintenance_test"
  "self_maintenance_test.pdb"
  "self_maintenance_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/self_maintenance_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
