# Empty compiler generated dependencies file for dlattice_equivalence_test.
# This may be replaced when dependencies are built.
