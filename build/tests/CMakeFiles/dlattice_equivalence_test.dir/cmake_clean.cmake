file(REMOVE_RECURSE
  "CMakeFiles/dlattice_equivalence_test.dir/lattice/dlattice_equivalence_test.cc.o"
  "CMakeFiles/dlattice_equivalence_test.dir/lattice/dlattice_equivalence_test.cc.o.d"
  "dlattice_equivalence_test"
  "dlattice_equivalence_test.pdb"
  "dlattice_equivalence_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dlattice_equivalence_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
