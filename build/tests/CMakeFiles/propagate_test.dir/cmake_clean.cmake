file(REMOVE_RECURSE
  "CMakeFiles/propagate_test.dir/core/propagate_test.cc.o"
  "CMakeFiles/propagate_test.dir/core/propagate_test.cc.o.d"
  "propagate_test"
  "propagate_test.pdb"
  "propagate_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/propagate_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
