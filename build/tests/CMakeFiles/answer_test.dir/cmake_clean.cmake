file(REMOVE_RECURSE
  "CMakeFiles/answer_test.dir/lattice/answer_test.cc.o"
  "CMakeFiles/answer_test.dir/lattice/answer_test.cc.o.d"
  "answer_test"
  "answer_test.pdb"
  "answer_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/answer_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
