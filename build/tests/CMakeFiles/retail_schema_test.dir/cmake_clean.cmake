file(REMOVE_RECURSE
  "CMakeFiles/retail_schema_test.dir/warehouse/retail_schema_test.cc.o"
  "CMakeFiles/retail_schema_test.dir/warehouse/retail_schema_test.cc.o.d"
  "retail_schema_test"
  "retail_schema_test.pdb"
  "retail_schema_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/retail_schema_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
