file(REMOVE_RECURSE
  "CMakeFiles/dimension_changes_test.dir/core/dimension_changes_test.cc.o"
  "CMakeFiles/dimension_changes_test.dir/core/dimension_changes_test.cc.o.d"
  "dimension_changes_test"
  "dimension_changes_test.pdb"
  "dimension_changes_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dimension_changes_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
