# Empty dependencies file for dimension_changes_test.
# This may be replaced when dependencies are built.
