file(REMOVE_RECURSE
  "CMakeFiles/clickstream_test.dir/warehouse/clickstream_test.cc.o"
  "CMakeFiles/clickstream_test.dir/warehouse/clickstream_test.cc.o.d"
  "clickstream_test"
  "clickstream_test.pdb"
  "clickstream_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/clickstream_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
