# Empty dependencies file for extended_views_test.
# This may be replaced when dependencies are built.
