file(REMOVE_RECURSE
  "CMakeFiles/extended_views_test.dir/warehouse/extended_views_test.cc.o"
  "CMakeFiles/extended_views_test.dir/warehouse/extended_views_test.cc.o.d"
  "extended_views_test"
  "extended_views_test.pdb"
  "extended_views_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/extended_views_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
